//! Baseline symbolic-reasoning tools the paper compares BoolE against:
//!
//! * [`atree`] — ABC's `&atree`-style adder-tree extraction via
//!   K-feasible cut enumeration, NPN classification of cut functions,
//!   and XOR3/MAJ pairing into full-adder blocks.
//! * [`gamora`] — a deterministic stand-in for the Gamora GNN
//!   (DAC 2023): a structural shape-hash classifier whose pattern
//!   library is harvested from pre-mapping multiplier templates (the
//!   same data Gamora is trained on). Like the GNN, it is exhaustive on
//!   in-distribution (pre-mapping) structures and degrades on
//!   technology-mapped netlists.
//!
//! Both report [`BlockReport`]s of detected half/full adder blocks with
//! exact-vs-NPN classification, which downstream verification
//! ([`sca`](https://docs.rs/boole-sca)) and the benchmark harness
//! consume.

#![warn(missing_docs)]

pub mod atree;
pub mod blocks;
pub mod gamora;

pub use atree::detect_blocks_atree;
pub use blocks::{BlockReport, FaBlock, HaBlock};
pub use gamora::{detect_blocks_gamora, GamoraModel};
