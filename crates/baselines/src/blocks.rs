//! Detected adder-block descriptions shared by all reasoning tools.

use aig::Var;

/// A detected full-adder block: an XOR3 signal and a MAJ signal over
/// the same three leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaBlock {
    /// The three input leaves (sorted).
    pub leaves: [Var; 3],
    /// The node whose (possibly complemented) signal is the sum.
    pub sum: Var,
    /// `true` if the sum node computes `!XOR3` (the complemented edge
    /// carries the exact sum).
    pub sum_neg: bool,
    /// The node whose (possibly complemented) signal is the carry.
    pub carry: Var,
    /// `true` if the carry node computes `!MAJ`.
    pub carry_neg: bool,
    /// `true` if the block is an *exact* FA: both signals are logically
    /// equal to XOR3/MAJ of the leaves (up to edge polarity, which is
    /// free in an AIG). `false` means NPN-equivalent only (e.g. the
    /// carry is a majority of negated leaves).
    pub exact: bool,
}

/// A detected half-adder block: an XOR2 signal and an AND2 signal over
/// the same two leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaBlock {
    /// The two input leaves (sorted).
    pub leaves: [Var; 2],
    /// The sum node.
    pub sum: Var,
    /// `true` if the sum node computes XNOR.
    pub sum_neg: bool,
    /// The carry node.
    pub carry: Var,
    /// `true` if the carry node computes NAND.
    pub carry_neg: bool,
    /// Exactness (same convention as [`FaBlock::exact`]).
    pub exact: bool,
}

/// The blocks a reasoning tool detected in a netlist.
#[derive(Debug, Clone, Default)]
pub struct BlockReport {
    /// Detected full adders.
    pub fas: Vec<FaBlock>,
    /// Detected half adders.
    pub has: Vec<HaBlock>,
}

impl BlockReport {
    /// Number of detected FA blocks (NPN or exact).
    pub fn npn_fa_count(&self) -> usize {
        self.fas.len()
    }

    /// Number of detected *exact* FA blocks.
    pub fn exact_fa_count(&self) -> usize {
        self.fas.iter().filter(|b| b.exact).count()
    }

    /// Number of detected HA blocks.
    pub fn npn_ha_count(&self) -> usize {
        self.has.len()
    }

    /// Number of detected exact HA blocks.
    pub fn exact_ha_count(&self) -> usize {
        self.has.iter().filter(|b| b.exact).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts() {
        let fa = FaBlock {
            leaves: [Var(1), Var(2), Var(3)],
            sum: Var(9),
            sum_neg: false,
            carry: Var(10),
            carry_neg: true,
            exact: true,
        };
        let mut inexact = fa.clone();
        inexact.exact = false;
        let report = BlockReport {
            fas: vec![fa, inexact],
            has: vec![],
        };
        assert_eq!(report.npn_fa_count(), 2);
        assert_eq!(report.exact_fa_count(), 1);
        assert_eq!(report.npn_ha_count(), 0);
    }
}
