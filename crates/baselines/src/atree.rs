//! ABC `&atree`-style adder-tree extraction: cut enumeration + NPN
//! classification + XOR/MAJ pairing.

use std::collections::HashMap;

use aig::cut::{enumerate_cuts, CutParams};
use aig::npn::npn_canon;
use aig::tt::Tt;
use aig::{Aig, Var};

use crate::blocks::{BlockReport, FaBlock, HaBlock};

/// Classification of a (node, cut) candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Exact XOR3 (`tt ∈ {xor3, !xor3}`; the polarity is recorded).
    SumExact { neg: bool },
    /// NPN-equivalent to XOR3 but not exact — cannot happen for XOR3
    /// (its NPN orbit is `{xor3, !xor3}`), kept for uniformity.
    SumNpn,
    /// Exact MAJ (`tt ∈ {maj3, !maj3}`).
    CarryExact { neg: bool },
    /// NPN-equivalent to MAJ only (e.g. majority of negated inputs).
    CarryNpn,
}

/// Detects half- and full-adder blocks with 3-feasible cut enumeration,
/// exactly in the spirit of ABC's `&atree` (structural hashing +
/// functional matching of cuts).
///
/// A full adder is reported for a leaf triple whenever an XOR3-class
/// signal and a MAJ-class signal exist over the same leaves; the block
/// is *exact* when both signals equal XOR3/MAJ up to edge polarity.
pub fn detect_blocks_atree(aig: &Aig) -> BlockReport {
    let cuts = enumerate_cuts(aig, &CutParams { k: 3, max_cuts: 48 });

    let xor3_class = npn_canon(Tt::xor3()).tt;
    let maj3_class = npn_canon(Tt::maj3()).tt;
    let xor2 = Tt::xor2();
    let and2 = Tt::and2();
    let and2_class = npn_canon(and2).tt;

    // triple -> (sum candidates, carry candidates)
    #[allow(clippy::type_complexity)]
    let mut fa_cand: HashMap<[Var; 3], (Vec<(Var, Role)>, Vec<(Var, Role)>)> = HashMap::new();
    // pair -> (sum candidates, carry candidates) for half adders
    #[allow(clippy::type_complexity)]
    let mut ha_cand: HashMap<[Var; 2], (Vec<(Var, bool, bool)>, Vec<(Var, bool, bool)>)> =
        HashMap::new();

    for var in aig.and_vars() {
        for cut in &cuts[var.index()] {
            match cut.size() {
                3 => {
                    if cut.leaves.contains(&var) {
                        continue;
                    }
                    let leaves = [cut.leaves[0], cut.leaves[1], cut.leaves[2]];
                    let tt = cut.tt;
                    let role = if tt == Tt::xor3() {
                        Some(Role::SumExact { neg: false })
                    } else if tt == !Tt::xor3() {
                        Some(Role::SumExact { neg: true })
                    } else if tt == Tt::maj3() {
                        Some(Role::CarryExact { neg: false })
                    } else if tt == !Tt::maj3() {
                        Some(Role::CarryExact { neg: true })
                    } else {
                        let canon = npn_canon(tt).tt;
                        if canon == xor3_class {
                            Some(Role::SumNpn)
                        } else if canon == maj3_class {
                            Some(Role::CarryNpn)
                        } else {
                            None
                        }
                    };
                    match role {
                        Some(r @ (Role::SumExact { .. } | Role::SumNpn)) => {
                            fa_cand.entry(leaves).or_default().0.push((var, r));
                        }
                        Some(r @ (Role::CarryExact { .. } | Role::CarryNpn)) => {
                            fa_cand.entry(leaves).or_default().1.push((var, r));
                        }
                        None => {}
                    }
                }
                2 => {
                    if cut.leaves.contains(&var) {
                        continue;
                    }
                    let leaves = [cut.leaves[0], cut.leaves[1]];
                    let tt = cut.tt;
                    if tt == xor2 {
                        ha_cand
                            .entry(leaves)
                            .or_default()
                            .0
                            .push((var, false, true));
                    } else if tt == !xor2 {
                        ha_cand.entry(leaves).or_default().0.push((var, true, true));
                    } else if tt == and2 {
                        ha_cand
                            .entry(leaves)
                            .or_default()
                            .1
                            .push((var, false, true));
                    } else if tt == !and2 {
                        ha_cand.entry(leaves).or_default().1.push((var, true, true));
                    } else if npn_canon(tt).tt == and2_class {
                        // e.g. a & !b — NPN carry candidate only.
                        ha_cand
                            .entry(leaves)
                            .or_default()
                            .1
                            .push((var, false, false));
                    }
                }
                _ => {}
            }
        }
    }

    let mut report = BlockReport::default();
    for (leaves, (mut sums, mut carries)) in fa_cand {
        sums.sort_by_key(|(v, _)| *v);
        sums.dedup_by_key(|(v, _)| *v);
        carries.sort_by_key(|(v, _)| *v);
        carries.dedup_by_key(|(v, _)| *v);
        // Pair exact with exact first to maximize the exact count.
        let exact_first = |cands: &mut Vec<(Var, Role)>| {
            cands.sort_by_key(|(v, r)| {
                (
                    match r {
                        Role::SumExact { .. } | Role::CarryExact { .. } => 0u8,
                        _ => 1,
                    },
                    *v,
                )
            });
        };
        exact_first(&mut sums);
        exact_first(&mut carries);
        for ((sum, s_role), (carry, c_role)) in sums.iter().zip(carries.iter()) {
            let (sum_neg, s_exact) = match s_role {
                Role::SumExact { neg } => (*neg, true),
                _ => (false, false),
            };
            let (carry_neg, c_exact) = match c_role {
                Role::CarryExact { neg } => (*neg, true),
                _ => (false, false),
            };
            report.fas.push(FaBlock {
                leaves,
                sum: *sum,
                sum_neg,
                carry: *carry,
                carry_neg,
                exact: s_exact && c_exact,
            });
        }
    }
    for (leaves, (mut sums, mut carries)) in ha_cand {
        sums.sort_by_key(|(v, ..)| *v);
        sums.dedup_by_key(|(v, ..)| *v);
        carries.sort_by_key(|(v, ..)| *v);
        carries.dedup_by_key(|(v, ..)| *v);
        carries.sort_by_key(|(v, _, exact)| (!exact, *v));
        for ((sum, sum_neg, s_exact), (carry, carry_neg, c_exact)) in sums.iter().zip(&carries) {
            report.has.push(HaBlock {
                leaves,
                sum: *sum,
                sum_neg: *sum_neg,
                carry: *carry,
                carry_neg: *carry_neg,
                exact: *s_exact && *c_exact,
            });
        }
    }
    // Deterministic order for downstream consumers.
    report.fas.sort_by_key(|b| (b.leaves, b.sum, b.carry));
    report.has.sort_by_key(|b| (b.leaves, b.sum, b.carry));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::gen::{csa_fa_upper_bound, csa_multiplier, full_adder};

    #[test]
    fn finds_single_full_adder() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let (s, co) = full_adder(&mut aig, a, b, c);
        aig.add_output("s", s);
        aig.add_output("c", co);
        let report = detect_blocks_atree(&aig);
        assert_eq!(report.npn_fa_count(), 1);
        assert_eq!(report.exact_fa_count(), 1);
        let block = &report.fas[0];
        assert_eq!(block.leaves, [a.var(), b.var(), c.var()]);
    }

    #[test]
    fn pre_mapping_csa_hits_npn_upper_bound() {
        // RQ1: on pre-mapping netlists cut enumeration finds all NPN
        // FAs (the paper's Fig. 4 upper bound is about NPN FAs).
        for n in [3usize, 4, 6, 8] {
            let aig = csa_multiplier(n);
            let report = detect_blocks_atree(&aig);
            assert_eq!(
                report.npn_fa_count(),
                csa_fa_upper_bound(n),
                "NPN FAs for n={n}"
            );
            // Strict-polarity exact matching finds fewer blocks than
            // NPN (carry-in literals arrive complemented) — the same
            // exact < NPN gap ABC exhibits in the paper.
            assert!(report.exact_fa_count() >= 1);
            assert!(report.exact_fa_count() < report.npn_fa_count());
            assert!(report.exact_ha_count() >= n, "exact HAs for n={n}");
        }
    }

    #[test]
    fn detects_npn_but_not_exact_for_negated_carry_inputs() {
        // sum = xor3(a,b,c) (exact), carry = maj(!a,!b,c) (NPN only).
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let s = aig.xor3(a, b, c);
        let co = aig.maj(!a, !b, c);
        aig.add_output("s", s);
        aig.add_output("c", co);
        let report = detect_blocks_atree(&aig);
        assert_eq!(report.npn_fa_count(), 1);
        assert_eq!(report.exact_fa_count(), 0);
    }

    #[test]
    fn no_false_positives_on_plain_logic() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(4);
        let y1 = aig.and(ins[0], ins[1]);
        let y2 = aig.or(y1, ins[2]);
        let y3 = aig.and(y2, ins[3]);
        aig.add_output("y", y3);
        let report = detect_blocks_atree(&aig);
        assert_eq!(report.npn_fa_count(), 0);
    }
}
