//! A deterministic stand-in for Gamora (Wu et al., DAC 2023).
//!
//! Gamora trains a GNN on pre-mapping netlists labelled by ABC's cut
//! enumeration and infers XOR3/MAJ roles by message passing over local
//! structure. We emulate the *behavioural envelope* of that model
//! without the stochastic training: a library of canonical structural
//! fingerprints is harvested from pre-mapping multiplier templates, and
//! inference classifies each (node, cut) pair by fingerprint lookup.
//! Like the GNN, the classifier is essentially perfect on
//! in-distribution (pre-mapping) structures and loses recall on
//! technology-mapped netlists whose local shapes were never seen.
//!
//! See `DESIGN.md` ("substitution ledger") for the justification.

use std::collections::{HashMap, HashSet};

use aig::cut::{enumerate_cuts, CutParams};
use aig::tt::Tt;
use aig::{Aig, Lit, Node, Var};

use crate::blocks::{BlockReport, FaBlock};

/// The trained shape library.
#[derive(Debug, Clone, Default)]
pub struct GamoraModel {
    sum_shapes: HashSet<String>,
    carry_shapes: HashSet<String>,
}

impl GamoraModel {
    /// "Trains" the model: harvests the structural fingerprints of all
    /// XOR3/MAJ cones found (by exact cut functions) in the template
    /// netlists — mirroring Gamora's training on ABC-labelled
    /// pre-mapping multipliers.
    pub fn train(templates: &[Aig]) -> GamoraModel {
        let xor3_class = aig::npn::npn_canon(Tt::xor3()).tt;
        let maj3_class = aig::npn::npn_canon(Tt::maj3()).tt;
        let mut model = GamoraModel::default();
        for aig in templates {
            let cuts = enumerate_cuts(aig, &CutParams { k: 3, max_cuts: 48 });
            for var in aig.and_vars() {
                for cut in &cuts[var.index()] {
                    if cut.size() != 3 || cut.leaves.contains(&var) {
                        continue;
                    }
                    // Labels come from NPN classification, the same way
                    // Gamora's training labels come from ABC's NPN cuts.
                    let class = aig::npn::npn_canon(cut.tt).tt;
                    let is_sum = class == xor3_class;
                    let is_carry = class == maj3_class;
                    if !is_sum && !is_carry {
                        continue;
                    }
                    let fp = fingerprint(aig, var, &cut.leaves);
                    if is_sum {
                        model.sum_shapes.insert(fp);
                    } else {
                        model.carry_shapes.insert(fp);
                    }
                }
            }
        }
        model
    }

    /// Trains on the default template set: small CSA and Booth
    /// multipliers, both pre-mapping and technology-mapped — the same
    /// benchmark families (and labels from cut enumeration) Gamora's
    /// published model is trained on. Small mapped templates give the
    /// classifier partial recall on mapped netlists, mirroring the
    /// GNN's limited generalization there.
    pub fn default_trained() -> GamoraModel {
        let csa4 = aig::gen::csa_multiplier(4);
        let csa5 = aig::gen::csa_multiplier(5);
        let booth4 = aig::gen::booth_multiplier(4);
        let booth6 = aig::gen::booth_multiplier(6);
        let templates = vec![
            aig::map::map_round_trip(&csa4),
            aig::map::map_round_trip(&csa5),
            aig::map::map_round_trip(&booth4),
            aig::map::map_round_trip(&booth6),
            csa4,
            aig::gen::csa_multiplier(8),
            booth6,
            aig::gen::booth_multiplier(8),
        ];
        Self::train(&templates)
    }

    /// Number of distinct sum shapes learned.
    pub fn num_sum_shapes(&self) -> usize {
        self.sum_shapes.len()
    }

    /// Number of distinct carry shapes learned.
    pub fn num_carry_shapes(&self) -> usize {
        self.carry_shapes.len()
    }
}

/// Canonical structural fingerprint of the cone of `root` down to
/// `leaves`: an AND/complement tree with leaves replaced by their index
/// in the (sorted) leaf list. Child order is canonicalized, so the
/// fingerprint is invariant to fanin ordering but *not* to genuine
/// restructuring — exactly the sensitivity structural methods have.
fn fingerprint(aig: &Aig, root: Var, leaves: &[Var]) -> String {
    fn go(aig: &Aig, lit: Lit, leaves: &[Var], out: &mut String) {
        if lit.is_complemented() {
            out.push('!');
        }
        let var = lit.var();
        if let Some(pos) = leaves.iter().position(|&l| l == var) {
            out.push((b'a' + pos as u8) as char);
            return;
        }
        match aig.node(var) {
            Node::Const => out.push('0'),
            Node::Input(_) => out.push('?'), // cone escapes the leaves
            Node::And(x, y) => {
                let mut sx = String::new();
                go(aig, x, leaves, &mut sx);
                let mut sy = String::new();
                go(aig, y, leaves, &mut sy);
                if sy < sx {
                    std::mem::swap(&mut sx, &mut sy);
                }
                out.push('(');
                out.push_str(&sx);
                out.push('&');
                out.push_str(&sy);
                out.push(')');
            }
        }
    }
    let mut s = String::new();
    go(aig, root.lit(), leaves, &mut s);
    s
}

/// Runs Gamora-style inference: classifies each 3-cut by fingerprint
/// lookup and pairs sum/carry candidates into FA blocks.
///
/// Exactness is decided the same way as for the ABC baseline (the
/// model's predictions are then checked functionally, which mirrors
/// how Gamora's outputs are consumed).
pub fn detect_blocks_gamora(aig: &Aig, model: &GamoraModel) -> BlockReport {
    let cuts = enumerate_cuts(aig, &CutParams { k: 3, max_cuts: 48 });
    #[allow(clippy::type_complexity)]
    let mut cand: HashMap<[Var; 3], (Vec<(Var, bool, bool)>, Vec<(Var, bool, bool)>)> =
        HashMap::new();
    for var in aig.and_vars() {
        for cut in &cuts[var.index()] {
            if cut.size() != 3 || cut.leaves.contains(&var) {
                continue;
            }
            let fp = fingerprint(aig, var, &cut.leaves);
            let leaves = [cut.leaves[0], cut.leaves[1], cut.leaves[2]];
            if model.sum_shapes.contains(&fp) {
                let neg = cut.tt == !Tt::xor3();
                let exact = cut.tt == Tt::xor3() || neg;
                cand.entry(leaves).or_default().0.push((var, neg, exact));
            } else if model.carry_shapes.contains(&fp) {
                let neg = cut.tt == !Tt::maj3();
                let exact = cut.tt == Tt::maj3() || neg;
                cand.entry(leaves).or_default().1.push((var, neg, exact));
            }
        }
    }
    let mut report = BlockReport::default();
    for (leaves, (mut sums, mut carries)) in cand {
        sums.sort_by_key(|(v, ..)| *v);
        sums.dedup_by_key(|(v, ..)| *v);
        carries.sort_by_key(|(v, ..)| *v);
        carries.dedup_by_key(|(v, ..)| *v);
        for ((sum, sum_neg, se), (carry, carry_neg, ce)) in sums.iter().zip(&carries) {
            report.fas.push(FaBlock {
                leaves,
                sum: *sum,
                sum_neg: *sum_neg,
                carry: *carry,
                carry_neg: *carry_neg,
                exact: *se && *ce,
            });
        }
    }
    report.fas.sort_by_key(|b| (b.leaves, b.sum, b.carry));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::gen::{csa_fa_upper_bound, csa_multiplier};

    #[test]
    fn training_learns_shapes() {
        let model = GamoraModel::default_trained();
        assert!(model.num_sum_shapes() >= 1);
        assert!(model.num_carry_shapes() >= 1);
    }

    #[test]
    fn perfect_on_in_distribution_netlists() {
        let model = GamoraModel::default_trained();
        for n in [4usize, 6, 12] {
            let aig = csa_multiplier(n);
            let report = detect_blocks_gamora(&aig, &model);
            assert_eq!(
                report.npn_fa_count(),
                csa_fa_upper_bound(n),
                "pre-mapping recall for n={n}"
            );
        }
    }

    #[test]
    fn degrades_on_restructured_netlists() {
        let model = GamoraModel::default_trained();
        let aig = csa_multiplier(8);
        let mapped = aig::map::map_round_trip(&aig);
        let pre = detect_blocks_gamora(&aig, &model).npn_fa_count();
        let post = detect_blocks_gamora(&mapped, &model).npn_fa_count();
        assert!(post < pre, "expected degradation: pre={pre} post={post}");
    }

    #[test]
    fn fingerprint_is_fanin_order_invariant() {
        let mut a1 = Aig::new();
        let x = a1.add_input();
        let y = a1.add_input();
        let z = a1.add_input();
        let and_xy = a1.and(x, y);
        let root1 = a1.and(and_xy, z);

        let mut a2 = Aig::new();
        let p = a2.add_input();
        let q = a2.add_input();
        let r = a2.add_input();
        let and_qp = a2.and(q, p);
        let root2 = a2.and(r, and_qp);

        let leaves1 = [x.var(), y.var(), z.var()];
        let leaves2 = [p.var(), q.var(), r.var()];
        assert_eq!(
            fingerprint(&a1, root1.var(), &leaves1),
            fingerprint(&a2, root2.var(), &leaves2)
        );
    }
}
