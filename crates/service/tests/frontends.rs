//! Format-agnostic service behavior: the same circuit delivered as
//! `.aag`, `.blif`, or `.v` must land on one structural fingerprint —
//! and therefore one result-cache entry, one saturation run.

use std::path::PathBuf;

use boole::BooleParams;
use boole_service::{fingerprint_aig, JobSpec, Service, ServiceConfig};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("boole-frontends-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The acceptance check from the frontend issue: an isomorphic netlist
/// submitted once as `.aag` and once as `.blif` (and `.v`) yields a
/// cache hit — the pipeline runs exactly once.
#[test]
fn cross_format_submissions_share_one_cache_entry() {
    let dir = temp_dir("cache");
    let circuit = aig::gen::csa_multiplier(3);
    let aag = dir.join("mult.aag");
    let blif = dir.join("mult.blif");
    let verilog = dir.join("mult.v");
    aig::write_netlist(&aag, &circuit).unwrap();
    aig::write_netlist(&blif, &circuit).unwrap();
    aig::write_netlist(&verilog, &circuit).unwrap();

    let service = Service::new(ServiceConfig {
        num_workers: 1,
        queue_capacity: 8,
        cache_capacity: 8,
        cache_dir: None,
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    });
    let spec = |path: &PathBuf| JobSpec::file(path).with_params(BooleParams::small());

    let first = service.submit(spec(&aag)).wait();
    assert!(first.summary().is_some(), "aag job failed");
    assert!(!first.from_cache);

    let second = service.submit(spec(&blif)).wait();
    assert!(second.summary().is_some(), "blif job failed");
    assert!(
        second.from_cache,
        "blif submission of an isomorphic netlist must hit the aag's cache entry"
    );

    let third = service.submit(spec(&verilog)).wait();
    assert!(
        third.from_cache,
        "verilog submission of an isomorphic netlist must hit too"
    );

    // Identical canonical payloads, and exactly one saturation run.
    use boole::json::ToJson;
    assert_eq!(
        first.summary().unwrap().to_json().to_string(),
        second.summary().unwrap().to_json().to_string()
    );
    let stats = service.shutdown();
    assert_eq!(stats.pipelines_run, 1, "one pipeline for three formats");
    assert_eq!(stats.cache.hits, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corpus_mirrors_fingerprint_equal_to_writer_output() {
    // A BLIF written by us and re-parsed must fingerprint-equal the
    // original in-memory AIG (the cache key is the fingerprint).
    for circuit in [
        aig::gen::csa_multiplier(3),
        aig::gen::booth_multiplier(4),
        aig::gen::wallace_multiplier(3),
    ] {
        let reference = fingerprint_aig(&circuit);
        let via_blif = aig::blif::parse_blif(&aig::blif::write_blif(&circuit)).unwrap();
        let via_v = aig::verilog::parse_verilog(&aig::verilog::write_verilog(&circuit)).unwrap();
        let via_aag = aig::aiger::from_aag(&aig::aiger::to_aag(&circuit)).unwrap();
        assert_eq!(fingerprint_aig(&via_blif), reference);
        assert_eq!(fingerprint_aig(&via_v), reference);
        assert_eq!(fingerprint_aig(&via_aag), reference);
    }
}

use aig::test_util::random_aig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The issue's round-trip property, stated on the cache key
    /// itself: Aig → write_blif → parse_blif is fingerprint-equal.
    #[test]
    fn prop_blif_roundtrip_is_fingerprint_equal(aig in random_aig(5, 24)) {
        let rebuilt = aig::blif::parse_blif(&aig::blif::write_blif(&aig)).expect("parses");
        prop_assert_eq!(fingerprint_aig(&rebuilt), fingerprint_aig(&aig));
    }

    /// Same property through the Verilog writer.
    #[test]
    fn prop_verilog_roundtrip_is_fingerprint_equal(aig in random_aig(5, 24)) {
        let rebuilt = aig::verilog::parse_verilog(&aig::verilog::write_verilog(&aig)).expect("parses");
        prop_assert_eq!(fingerprint_aig(&rebuilt), fingerprint_aig(&aig));
    }
}
