//! Integration tests for the batch-reasoning service: concurrent ==
//! serial determinism, cache behavior, and cooperative cancellation.

use std::time::{Duration, Instant};

use boole::json::ToJson;
use boole::BooleParams;
use boole_service::{
    run_spec_serial, GenSpec, JobSpec, JobStatus, JobVerdict, Service, ServiceConfig,
};

/// Eight distinct jobs mixing families, widths, and preparations.
fn mixed_specs() -> Vec<JobSpec> {
    [
        "csa:2",
        "csa:3",
        "csa:4",
        "booth:4",
        "wallace:3",
        "wallace:4",
        "csa:3:mapped",
        "csa:3:dch",
    ]
    .iter()
    .map(|text| {
        // No wall-clock stop: under CPU contention a time-bound phase
        // stops at a load-dependent point, which would break the
        // byte-identical contract this file asserts.
        JobSpec::generated(GenSpec::parse(text).unwrap())
            .with_params(BooleParams::small().without_time_limit())
    })
    .collect()
}

#[test]
fn four_worker_batch_matches_serial_byte_for_byte() {
    let service = Service::new(ServiceConfig {
        num_workers: 4,
        queue_capacity: 16,
        cache_capacity: 64,
        cache_dir: None,
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    });
    let concurrent = service.run_batch(mixed_specs());
    let stats = service.shutdown();
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.completed, 8);

    let serial: Vec<_> = mixed_specs().into_iter().map(run_spec_serial).collect();
    assert_eq!(concurrent.len(), serial.len());
    for (c, s) in concurrent.iter().zip(&serial) {
        assert_eq!(c.label, s.label);
        // The canonical JSON excludes wall-clock timing by contract;
        // everything else must agree byte-for-byte.
        assert_eq!(
            c.to_json().to_string(),
            s.to_json().to_string(),
            "job {} diverged between 4-worker and serial execution",
            c.label
        );
        assert!(c.summary().unwrap().exact_fa_count >= 1 || c.label == "csa:2");
    }
}

#[test]
fn duplicate_netlists_serialize_identically_across_modes() {
    // Two identical jobs: concurrently the second may be served from
    // cache, serially it never is. The canonical JSON must not leak
    // that difference.
    let specs = || {
        (0..2)
            .map(|_| {
                JobSpec::generated(GenSpec::parse("csa:3").unwrap())
                    .with_params(BooleParams::small().without_time_limit())
            })
            .collect::<Vec<_>>()
    };
    let service = Service::new(ServiceConfig {
        num_workers: 2,
        queue_capacity: 4,
        cache_capacity: 4,
        cache_dir: None,
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    });
    let concurrent = service.run_batch(specs());
    service.shutdown();
    let serial: Vec<_> = specs().into_iter().map(run_spec_serial).collect();
    for (c, s) in concurrent.iter().zip(&serial) {
        assert_eq!(c.to_json().to_string(), s.to_json().to_string());
    }
}

#[test]
fn search_threads_never_change_the_canonical_result_json() {
    // The parallel in-saturation rule search must be invisible in the
    // result document: whatever thread count the operator configures,
    // the canonical JSON stays byte-identical to the serial oracle's.
    let spec = |threads: Option<usize>| {
        let mut params = BooleParams::small().without_time_limit();
        if let Some(threads) = threads {
            params = params.with_search_threads(threads);
        }
        JobSpec::generated(GenSpec::parse("wallace:4").unwrap()).with_params(params)
    };
    let oracle = run_spec_serial(spec(None));
    let oracle_json = oracle.to_json().to_string();
    assert!(oracle.summary().is_some(), "oracle job failed");

    // Via the per-spec knob on the serial path.
    for threads in [2, 5] {
        let parallel = run_spec_serial(spec(Some(threads)));
        assert_eq!(
            parallel.to_json().to_string(),
            oracle_json,
            "per-spec search_threads={threads} changed the result JSON"
        );
    }

    // Via the service-wide operator override.
    let service = Service::new(ServiceConfig {
        num_workers: 1,
        queue_capacity: 4,
        cache_capacity: 4,
        cache_dir: None,
        telemetry: None,
        search_threads: Some(3),
        ..ServiceConfig::default()
    });
    let outcome = service.submit(spec(None)).wait();
    service.shutdown();
    assert!(!outcome.from_cache);
    assert_eq!(
        outcome.to_json().to_string(),
        oracle_json,
        "ServiceConfig::search_threads changed the result JSON"
    );
}

#[test]
fn serial_path_honors_deadline() {
    let spec = JobSpec::generated(GenSpec::parse("csa:8").unwrap())
        .with_deadline(Duration::from_millis(1));
    let outcome = run_spec_serial(spec);
    assert!(
        matches!(outcome.verdict, JobVerdict::Cancelled { .. }),
        "serial deadline must cancel, got {:?}",
        outcome.status()
    );
}

#[test]
fn resubmitted_netlist_is_answered_from_cache_without_saturation() {
    let service = Service::new(ServiceConfig {
        num_workers: 2,
        queue_capacity: 8,
        cache_capacity: 8,
        cache_dir: None,
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    });
    let spec =
        || JobSpec::generated(GenSpec::parse("csa:3").unwrap()).with_params(BooleParams::small());

    let first = service.submit(spec()).wait();
    assert!(!first.from_cache);
    let after_first = service.stats();
    assert_eq!(after_first.pipelines_run, 1);
    assert_eq!(after_first.cache.misses, 1);
    assert_eq!(after_first.cache.insertions, 1);

    let second = service.submit(spec()).wait();
    assert!(second.from_cache, "resubmission must hit the cache");
    let after_second = service.stats();
    // The key check: no second saturation run happened.
    assert_eq!(after_second.pipelines_run, 1);
    assert_eq!(after_second.cache.hits, 1);

    // Identical payloads, not merely equal counters.
    assert_eq!(
        first.summary().unwrap().to_json().to_string(),
        second.summary().unwrap().to_json().to_string()
    );

    // An *isomorphic* netlist (same structure, fresh object) also hits.
    let iso =
        JobSpec::netlist("iso", aig::gen::csa_multiplier(3)).with_params(BooleParams::small());
    assert!(service.submit(iso).wait().from_cache);

    // A different width misses.
    let other =
        JobSpec::netlist("other", aig::gen::csa_multiplier(4)).with_params(BooleParams::small());
    assert!(!service.submit(other).wait().from_cache);

    // Different params on the same netlist miss too.
    let heavier = JobSpec::generated(GenSpec::parse("csa:3").unwrap())
        .with_params(BooleParams::lightweight());
    assert!(!service.submit(heavier).wait().from_cache);

    service.shutdown();
}

#[test]
fn cold_cache_stampede_runs_saturation_exactly_once() {
    // Six identical jobs hit a cold cache on four workers: the
    // single-flight table must coalesce them onto one pipeline run.
    // Pre-dedup, each worker that dequeued before the first finished
    // ran its own saturation (pipelines_run == min(N, workers)).
    let service = Service::new(ServiceConfig {
        num_workers: 4,
        queue_capacity: 16,
        cache_capacity: 16,
        cache_dir: None,
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    });
    let specs: Vec<JobSpec> = (0..6)
        .map(|_| {
            JobSpec::generated(GenSpec::parse("csa:4").unwrap())
                .with_params(BooleParams::small().without_time_limit())
        })
        .collect();
    let outcomes = service.run_batch(specs);
    let stats = service.shutdown();
    assert_eq!(stats.completed, 6);
    assert_eq!(
        stats.pipelines_run, 1,
        "identical concurrent submissions must run saturation once: {stats:?}"
    );
    // Every non-leader was answered either by the in-flight pipeline
    // (coalesced) or, if it started after the leader finished, by the
    // cache it filled.
    assert_eq!(stats.coalesced + stats.cache.hits, 5, "{stats:?}");
    // And all six payloads are the same bytes.
    let first = outcomes[0].summary().unwrap().to_json().to_string();
    for outcome in &outcomes {
        assert_eq!(outcome.summary().unwrap().to_json().to_string(), first);
    }
}

#[test]
fn cancelled_leader_does_not_strand_coalesced_followers() {
    // The leader gets a deadline short enough to cancel mid-saturation;
    // the followers (no deadline) must elect a new leader and finish,
    // not wait forever or inherit the cancellation.
    let service = Service::new(ServiceConfig {
        num_workers: 3,
        queue_capacity: 16,
        cache_capacity: 16,
        cache_dir: None,
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    });
    let spec = || {
        JobSpec::generated(GenSpec::parse("csa:5").unwrap())
            .with_params(BooleParams::small().without_time_limit())
    };
    let doomed = service.submit(spec().with_deadline(Duration::from_millis(30)));
    let followers: Vec<_> = (0..2).map(|_| service.submit(spec())).collect();
    // Whatever happens to the doomed leader (it may even complete if
    // the machine is fast), every follower must reach a completed
    // result.
    doomed.wait();
    for follower in &followers {
        let outcome = follower.wait();
        assert!(
            outcome.summary().is_some(),
            "follower must complete after leader cancellation, got {:?}",
            outcome.status()
        );
    }
    service.shutdown();
}

#[test]
fn one_ms_deadline_cancels_cooperatively_without_poisoning_the_pool() {
    let service = Service::new(ServiceConfig {
        num_workers: 2,
        queue_capacity: 8,
        cache_capacity: 8,
        cache_dir: None,
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    });
    // csa:8 saturates for many seconds under default params; a 1 ms
    // deadline must kill it long before that.
    let doomed = service.submit(
        JobSpec::generated(GenSpec::parse("csa:8").unwrap())
            .with_deadline(Duration::from_millis(1)),
    );
    let outcome = doomed.wait();
    assert!(
        matches!(outcome.verdict, JobVerdict::Cancelled { .. }),
        "expected cancellation, got {:?}",
        outcome.status()
    );
    assert_eq!(doomed.status(), JobStatus::Cancelled);

    // The worker pool must remain fully functional afterwards.
    let healthy = service.submit(
        JobSpec::generated(GenSpec::parse("csa:3").unwrap()).with_params(BooleParams::small()),
    );
    let outcome = healthy.wait();
    assert!(outcome.summary().is_some(), "pool poisoned by cancellation");

    let stats = service.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn explicit_cancel_stops_a_large_job_mid_saturation() {
    let service = Service::new(ServiceConfig {
        num_workers: 1,
        queue_capacity: 4,
        cache_capacity: 4,
        cache_dir: None,
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    });
    // Give the job a huge budget so only cancellation can stop it soon.
    let params = BooleParams {
        saturate: boole::SaturateParams {
            node_limit: 10_000_000,
            time_limit: Duration::from_secs(600),
            ..boole::SaturateParams::default()
        },
    };
    let job =
        service.submit(JobSpec::generated(GenSpec::parse("csa:8").unwrap()).with_params(params));

    // Wait until the pipeline is actually running, then cancel.
    let start = Instant::now();
    while !matches!(job.status(), JobStatus::Running(_)) {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "job never started"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(200)); // let saturation get going
    job.cancel();
    let cancel_issued = Instant::now();
    let outcome = job.wait();
    let latency = cancel_issued.elapsed();
    match &outcome.verdict {
        JobVerdict::Cancelled { phase } => {
            assert!(phase.is_some(), "cancellation should name the phase");
        }
        other => panic!("expected cancellation, got {other:?}"),
    }
    // Cooperative latency is bounded by one rule search/apply step.
    assert!(
        latency < Duration::from_secs(30),
        "cancellation took {latency:?}"
    );
    service.shutdown();
}

#[test]
fn queued_jobs_cancel_before_running() {
    // One worker + a long job in front: the queued job is cancelled
    // while it waits and must resolve with no pipeline phase.
    let service = Service::new(ServiceConfig {
        num_workers: 1,
        queue_capacity: 8,
        cache_capacity: 8,
        cache_dir: None,
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    });
    let blocker = service.submit(
        JobSpec::generated(GenSpec::parse("csa:6").unwrap()).with_params(BooleParams::default()),
    );
    let queued = service.submit(
        JobSpec::generated(GenSpec::parse("csa:3").unwrap()).with_params(BooleParams::small()),
    );
    queued.cancel();
    let outcome = queued.wait();
    assert!(matches!(
        outcome.verdict,
        JobVerdict::Cancelled { phase: None }
    ));
    blocker.cancel();
    blocker.wait();
    service.shutdown();
}

#[test]
fn failed_sources_are_reported_not_panicked() {
    let service = Service::new(ServiceConfig {
        num_workers: 1,
        queue_capacity: 4,
        cache_capacity: 4,
        cache_dir: None,
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    });
    let missing = service.submit(JobSpec::aag_file("/nonexistent/never.aag"));
    let outcome = missing.wait();
    assert!(matches!(outcome.verdict, JobVerdict::Failed(_)));
    let garbled = service.submit(JobSpec {
        label: "garbled".to_owned(),
        source: boole_service::JobSource::AagText("not an aiger file".to_owned()),
        params: BooleParams::small(),
        deadline: None,
        use_cache: true,
    });
    assert!(matches!(garbled.wait().verdict, JobVerdict::Failed(_)));
    let stats = service.shutdown();
    assert_eq!(stats.failed, 2);
}
