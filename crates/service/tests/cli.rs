//! End-to-end tests of the `boole` CLI binary.

use std::process::Command;

fn boole() -> Command {
    Command::new(env!("CARGO_BIN_EXE_boole"))
}

#[test]
fn gen_batch_json_is_identical_across_serial_and_four_workers() {
    let specs = [
        "csa:2",
        "csa:3",
        "csa:4",
        "booth:4",
        "wallace:3",
        "wallace:4",
        "csa:3:mapped",
        "csa:3:dch",
    ];
    let run = |extra: &[&str]| {
        let output = boole()
            .arg("gen")
            .args(specs)
            .args(["--params", "small", "--no-timing", "--compact"])
            .args(extra)
            .output()
            .expect("spawn boole");
        assert!(
            output.status.success(),
            "boole failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).expect("utf8 json")
    };
    let serial = run(&["--serial"]);
    let concurrent = run(&["--workers", "4"]);
    assert_eq!(
        serial, concurrent,
        "batch JSON must be byte-identical between serial and 4-worker runs"
    );
    assert!(serial.contains("\"status\":\"completed\""));
}

#[test]
fn event_stream_is_strict_ndjson_and_leaves_results_byte_identical() {
    let specs = ["csa:2", "csa:3", "wallace:3"];
    let base = ["--params", "small", "--no-timing", "--compact"];
    let run = |extra: &[&str]| {
        let output = boole()
            .arg("gen")
            .args(specs)
            .args(base)
            .args(extra)
            .output()
            .expect("spawn boole");
        assert!(
            output.status.success(),
            "boole failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).expect("utf8 json")
    };

    let plain = run(&[]);
    let streamed = run(&["--events", "-", "--metrics", "-"]);

    // Every stdout line — events, metrics snapshot, result document —
    // must survive the strict parser on its own.
    let lines: Vec<&str> = streamed.lines().collect();
    for line in &lines {
        boole::json::Json::parse(line)
            .unwrap_or_else(|e| panic!("stdout line is not strict JSON: {e:?}\n{line}"));
    }
    // Telemetry rides above the result channel: the final document is
    // byte-identical to a run with no telemetry at all.
    assert_eq!(lines.last(), plain.lines().last().as_ref());
    assert!(
        lines.len() > 2,
        "expected event lines before the result document, got {} lines",
        lines.len()
    );
    assert!(lines[0].contains("\"event\":\"job_submitted\""));
    assert!(streamed.contains("\"event\":\"job_done\""));
    assert!(streamed.contains("\"counters\""));

    // A --serial run streams the same event vocabulary.
    let serial = run(&["--serial", "--events", "-"]);
    assert!(serial.contains("\"event\":\"phase_finished\""));
    assert_eq!(serial.lines().last(), plain.lines().last());
}

#[test]
fn event_and_metrics_files_hold_the_stream_and_snapshot() {
    let dir = std::env::temp_dir().join(format!("boole-ev-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let events_path = dir.join("events.ndjson");
    let metrics_path = dir.join("metrics.json");
    let output = boole()
        .args(["gen", "csa:2", "--params", "small"])
        .arg("--events")
        .arg(&events_path)
        .arg("--metrics")
        .arg(&metrics_path)
        .output()
        .expect("spawn boole");
    assert!(output.status.success());
    // File sinks leave stdout to the (pretty, multi-line) result alone.
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(!stdout.contains("\"event\""));

    let events = std::fs::read_to_string(&events_path).unwrap();
    let mut kinds = Vec::new();
    for line in events.lines() {
        let doc = boole::json::Json::parse(line).expect("strict NDJSON line");
        if let boole::json::Json::Obj(pairs) = &doc {
            if let Some((_, boole::json::Json::Str(kind))) =
                pairs.iter().find(|(k, _)| k == "event")
            {
                kinds.push(kind.clone());
            }
        }
    }
    assert_eq!(kinds.first().map(String::as_str), Some("job_submitted"));
    assert_eq!(kinds.last().map(String::as_str), Some("job_done"));

    let metrics = boole::json::Json::parse(&std::fs::read_to_string(&metrics_path).unwrap());
    assert!(metrics.is_ok(), "metrics snapshot must be strict JSON");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_command_reads_an_aag_file() {
    let dir = std::env::temp_dir().join(format!("boole-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fa.aag");
    let mut netlist = aig::Aig::new();
    let ins = netlist.add_inputs(3);
    let (s, c) = aig::gen::full_adder(&mut netlist, ins[0], ins[1], ins[2]);
    netlist.add_output("s", s);
    netlist.add_output("c", c);
    std::fs::write(&path, aig::aiger::to_aag(&netlist)).unwrap();

    let output = boole()
        .arg("run")
        .arg(&path)
        .args(["--params", "small", "--compact"])
        .output()
        .expect("spawn boole");
    assert!(
        output.status.success(),
        "boole run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"status\":\"completed\""), "got: {stdout}");
    assert!(stdout.contains("\"exact_fa_count\":"), "got: {stdout}");
    assert!(!stdout.contains("\"exact_fa_count\":0"), "got: {stdout}");

    // batch over the same directory finds the file.
    let output = boole()
        .arg("batch")
        .arg(&dir)
        .args(["--params", "small", "--compact"])
        .output()
        .expect("spawn boole");
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("fa.aag"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_command_reads_blif_and_verilog_files() {
    let dir = std::env::temp_dir().join(format!("boole-cli-fmt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut netlist = aig::Aig::new();
    let ins = netlist.add_inputs(3);
    let (s, c) = aig::gen::full_adder(&mut netlist, ins[0], ins[1], ins[2]);
    netlist.add_output("s", s);
    netlist.add_output("c", c);
    for file in ["fa.blif", "fa.v"] {
        let path = dir.join(file);
        aig::write_netlist(&path, &netlist).unwrap();
        let output = boole()
            .arg("run")
            .arg(&path)
            .args(["--params", "small", "--compact"])
            .output()
            .expect("spawn boole");
        assert!(
            output.status.success(),
            "boole run {file} failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("\"status\":\"completed\""),
            "{file}: {stdout}"
        );
        assert!(!stdout.contains("\"exact_fa_count\":0"), "{file}: {stdout}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_mixes_formats_in_one_directory() {
    let dir = std::env::temp_dir().join(format!("boole-cli-mixed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let circuit = aig::gen::csa_multiplier(3);
    // The same circuit under three formats — one nested a level down,
    // as benchmark suites do — plus one unrelated file the collector
    // must skip.
    std::fs::create_dir_all(dir.join("sub")).unwrap();
    aig::write_netlist(dir.join("m1.aag"), &circuit).unwrap();
    aig::write_netlist(dir.join("m2.blif"), &circuit).unwrap();
    aig::write_netlist(dir.join("sub/m3.v"), &circuit).unwrap();
    std::fs::write(dir.join("notes.txt"), "not a netlist").unwrap();

    // One worker serializes the batch, so the two resubmissions of the
    // isomorphic circuit deterministically hit the first job's entry.
    let output = boole()
        .arg("batch")
        .arg(&dir)
        .args(["--params", "small", "--compact", "--workers", "1"])
        .output()
        .expect("spawn boole");
    assert!(
        output.status.success(),
        "mixed batch failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    for name in ["m1.aag", "m2.blif", "m3.v"] {
        assert!(stdout.contains(name), "missing {name} in: {stdout}");
    }
    assert!(!stdout.contains("notes.txt"));
    assert_eq!(stdout.matches("\"status\":\"completed\"").count(), 3);
    // Isomorphic circuits across formats: one miss, two hits.
    assert!(stdout.contains("\"hits\":2"), "cache stats in: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn batch_terminates_on_symlink_cycles_and_counts_each_circuit_once() {
    let dir = std::env::temp_dir().join(format!("boole-cli-cycle-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(dir.join("sub")).unwrap();
    let circuit = aig::gen::csa_multiplier(3);
    aig::write_netlist(dir.join("top.aag"), &circuit).unwrap();
    aig::write_netlist(dir.join("sub/nested.aag"), &circuit).unwrap();
    // Pre-fix, the cycle made `boole batch` walk forever and the alias
    // double-counted nested.aag.
    std::os::unix::fs::symlink("..", dir.join("sub/loop")).unwrap();
    std::os::unix::fs::symlink(dir.join("sub"), dir.join("alias")).unwrap();

    let output = boole()
        .arg("batch")
        .arg(&dir)
        .args(["--params", "small", "--compact"])
        .output()
        .expect("spawn boole");
    assert!(
        output.status.success(),
        "cyclic batch failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        stdout.matches("\"status\":\"completed\"").count(),
        2,
        "each netlist exactly once: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_accepts_specs_interleaved_with_options() {
    // Regression: `boole gen csa:3 --workers 2 wallace:3` used to
    // reject `wallace:3` as an unknown option.
    let output = boole()
        .args(["gen", "csa:3", "--workers", "2", "wallace:3"])
        .args(["--params", "small", "--compact"])
        .output()
        .expect("spawn boole");
    assert!(
        output.status.success(),
        "interleaved gen failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(stdout.matches("\"status\":\"completed\"").count(), 2);
    assert!(stdout.contains("csa:3") && stdout.contains("wallace:3"));
}

#[test]
fn unparseable_netlists_exit_nonzero_with_json_error() {
    let dir = std::env::temp_dir().join(format!("boole-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // Fixture names are deliberately neutral (bad1, bad2, …) so the
    // expected kind can only match inside the error message, never via
    // the file path echoed in the job label.
    let cases = [
        (
            "bad1.blif",
            ".model t\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n",
            "(latch)",
        ),
        (
            "bad2.v",
            "module m (a, y);\n input a;\n output y;\n and g (y, a, ghost);\nendmodule\n",
            "(undeclared)",
        ),
        ("bad3.blif", ".model t\n.inputs a\n", "(truncated)"),
    ];
    for (file, contents, kind) in cases {
        let path = dir.join(file);
        std::fs::write(&path, contents).unwrap();
        let output = boole()
            .args(["run"])
            .arg(&path)
            .args(["--compact"])
            .output()
            .expect("spawn boole");
        assert!(
            !output.status.success(),
            "{file}: failed parse must exit non-zero"
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains("\"status\":\"failed\""),
            "{file}: JSON must record the failure: {stdout}"
        );
        assert!(
            stdout.contains("\"error\":") && stdout.contains(kind),
            "{file}: JSON error must carry the typed kind {kind:?}: {stdout}"
        );
    }
    // Unknown extension: also a failed job, not a crash.
    let path = dir.join("x.vhdl");
    std::fs::write(&path, "whatever").unwrap();
    let output = boole()
        .args(["run"])
        .arg(&path)
        .args(["--compact"])
        .output()
        .expect("spawn boole");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("unknown-format"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deadline_flag_cancels_without_crashing() {
    let output = boole()
        .args(["gen", "csa:8", "--deadline-ms", "1", "--compact"])
        .output()
        .expect("spawn boole");
    assert!(
        output.status.success(),
        "boole gen failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"status\":\"cancelled\""), "got: {stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    for args in [
        &["frobnicate"][..],
        &["gen"][..],
        &["gen", "karatsuba:8"][..],
        &["run"][..],
    ] {
        let output = boole().args(args).output().expect("spawn boole");
        assert!(!output.status.success(), "args {args:?} should fail");
    }
}
