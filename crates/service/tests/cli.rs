//! End-to-end tests of the `boole` CLI binary.

use std::process::Command;

fn boole() -> Command {
    Command::new(env!("CARGO_BIN_EXE_boole"))
}

#[test]
fn gen_batch_json_is_identical_across_serial_and_four_workers() {
    let specs = [
        "csa:2",
        "csa:3",
        "csa:4",
        "booth:4",
        "wallace:3",
        "wallace:4",
        "csa:3:mapped",
        "csa:3:dch",
    ];
    let run = |extra: &[&str]| {
        let output = boole()
            .arg("gen")
            .args(specs)
            .args(["--params", "small", "--no-timing", "--compact"])
            .args(extra)
            .output()
            .expect("spawn boole");
        assert!(
            output.status.success(),
            "boole failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).expect("utf8 json")
    };
    let serial = run(&["--serial"]);
    let concurrent = run(&["--workers", "4"]);
    assert_eq!(
        serial, concurrent,
        "batch JSON must be byte-identical between serial and 4-worker runs"
    );
    assert!(serial.contains("\"status\":\"completed\""));
}

#[test]
fn run_command_reads_an_aag_file() {
    let dir = std::env::temp_dir().join(format!("boole-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fa.aag");
    let mut netlist = aig::Aig::new();
    let ins = netlist.add_inputs(3);
    let (s, c) = aig::gen::full_adder(&mut netlist, ins[0], ins[1], ins[2]);
    netlist.add_output("s", s);
    netlist.add_output("c", c);
    std::fs::write(&path, aig::aiger::to_aag(&netlist)).unwrap();

    let output = boole()
        .arg("run")
        .arg(&path)
        .args(["--params", "small", "--compact"])
        .output()
        .expect("spawn boole");
    assert!(
        output.status.success(),
        "boole run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"status\":\"completed\""), "got: {stdout}");
    assert!(stdout.contains("\"exact_fa_count\":"), "got: {stdout}");
    assert!(!stdout.contains("\"exact_fa_count\":0"), "got: {stdout}");

    // batch over the same directory finds the file.
    let output = boole()
        .arg("batch")
        .arg(&dir)
        .args(["--params", "small", "--compact"])
        .output()
        .expect("spawn boole");
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("fa.aag"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deadline_flag_cancels_without_crashing() {
    let output = boole()
        .args(["gen", "csa:8", "--deadline-ms", "1", "--compact"])
        .output()
        .expect("spawn boole");
    assert!(
        output.status.success(),
        "boole gen failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"status\":\"cancelled\""), "got: {stdout}");
}

#[test]
fn bad_usage_exits_nonzero() {
    for args in [
        &["frobnicate"][..],
        &["gen"][..],
        &["gen", "karatsuba:8"][..],
        &["run"][..],
    ] {
        let output = boole().args(args).output().expect("spawn boole");
        assert!(!output.status.success(), "args {args:?} should fail");
    }
}
