//! Integration tests for the persistent (disk) cache tier: results
//! must survive service restarts and whole process lifetimes, corrupt
//! store files must degrade to misses, and a reloaded result must
//! serialize byte-identically to the run that produced it.

use std::path::PathBuf;
use std::process::Command;

use boole::json::ToJson;
use boole::BooleParams;
use boole_service::{GenSpec, JobSpec, Service, ServiceConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("boole-persist-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config(cache_dir: &std::path::Path) -> ServiceConfig {
    ServiceConfig {
        num_workers: 2,
        queue_capacity: 8,
        cache_capacity: 8,
        cache_dir: Some(cache_dir.to_path_buf()),
        telemetry: None,
        search_threads: None,
        ..ServiceConfig::default()
    }
}

fn spec() -> JobSpec {
    JobSpec::generated(GenSpec::parse("csa:3").unwrap())
        .with_params(BooleParams::small().without_time_limit())
}

#[test]
fn results_survive_a_service_restart() {
    let cache_dir = tmp_dir("restart");

    // First service: cold everywhere, runs the pipeline, writes disk.
    let service = Service::new(config(&cache_dir));
    let first = service.submit(spec()).wait();
    assert!(!first.from_cache);
    let stats = service.shutdown();
    assert_eq!(stats.pipelines_run, 1);
    let disk = stats.disk.expect("disk tier configured");
    assert_eq!(disk.writes, 1);
    assert_eq!(disk.hits, 0);

    // Second service over the same directory: memory tier is cold, the
    // disk tier answers, and no pipeline runs.
    let service = Service::new(config(&cache_dir));
    let second = service.submit(spec()).wait();
    assert!(second.from_cache, "disk tier must answer after restart");
    // A resubmission in the same service hits the promoted memory
    // entry, not the disk again.
    let third = service.submit(spec()).wait();
    assert!(third.from_cache);
    let stats = service.shutdown();
    assert_eq!(
        stats.pipelines_run, 0,
        "no saturation may run on a warm disk cache: {stats:?}"
    );
    let disk = stats.disk.expect("disk tier configured");
    assert_eq!((disk.hits, disk.writes), (1, 0), "{stats:?}");
    assert_eq!(stats.cache.hits, 1, "third job hits the promoted entry");

    // The payload served from disk is byte-identical to the original.
    assert_eq!(
        first.summary().unwrap().to_json().to_string(),
        second.summary().unwrap().to_json().to_string()
    );

    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn corrupt_and_truncated_records_degrade_to_reruns() {
    let cache_dir = tmp_dir("corrupt");
    let service = Service::new(config(&cache_dir));
    service.submit(spec()).wait();
    service.shutdown();

    let record = std::fs::read_dir(&cache_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "json"))
        .expect("one record written");
    let pristine = std::fs::read(&record).unwrap();

    for (name, bytes) in [
        ("empty", Vec::new()),
        ("garbage", b"\x00\xff not json \x7f".to_vec()),
        ("truncated", pristine[..pristine.len() / 3].to_vec()),
    ] {
        std::fs::write(&record, &bytes).unwrap();
        let service = Service::new(config(&cache_dir));
        let outcome = service.submit(spec()).wait();
        assert!(
            outcome.summary().is_some(),
            "{name}: job must succeed despite store corruption"
        );
        assert!(
            !outcome.from_cache,
            "{name}: corruption must read as a miss"
        );
        let stats = service.shutdown();
        assert_eq!(stats.pipelines_run, 1, "{name}: pipeline must re-run");
        // The rerun healed the record: it must hit again now.
        let service = Service::new(config(&cache_dir));
        assert!(service.submit(spec()).wait().from_cache, "{name}: healed");
        service.shutdown();
    }

    std::fs::remove_dir_all(&cache_dir).ok();
}

#[test]
fn different_params_do_not_share_disk_records() {
    let cache_dir = tmp_dir("params");
    let service = Service::new(config(&cache_dir));
    service.submit(spec()).wait();
    service.shutdown();

    let service = Service::new(config(&cache_dir));
    let other = service
        .submit(
            JobSpec::generated(GenSpec::parse("csa:3").unwrap())
                .with_params(BooleParams::lightweight().without_time_limit()),
        )
        .wait();
    assert!(!other.from_cache, "params are part of the disk key");
    let stats = service.shutdown();
    assert_eq!(stats.pipelines_run, 1);

    std::fs::remove_dir_all(&cache_dir).ok();
}

/// The acceptance check from the issue, end to end over the real
/// binary: a second `boole batch` over the same corpus and cache
/// directory must run zero pipelines and print byte-identical
/// canonical job JSON.
#[test]
fn second_cli_batch_over_same_cache_dir_runs_nothing() {
    let corpus = tmp_dir("cli-corpus");
    let cache_dir = tmp_dir("cli-cache");
    std::fs::create_dir_all(&corpus).unwrap();
    aig::write_netlist(corpus.join("m3.aag"), &aig::gen::csa_multiplier(3)).unwrap();
    aig::write_netlist(corpus.join("b4.blif"), &aig::gen::booth_multiplier(4)).unwrap();
    aig::write_netlist(corpus.join("w3.v"), &aig::gen::wallace_multiplier(3)).unwrap();

    let run = |timing: bool| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_boole"));
        cmd.arg("batch")
            .arg(&corpus)
            .args(["--params", "small", "--compact", "--cache-dir"])
            .arg(&cache_dir);
        if !timing {
            cmd.arg("--no-timing");
        }
        let output = cmd.output().expect("spawn boole");
        assert!(
            output.status.success(),
            "boole batch failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).expect("utf8 json")
    };

    // Run 1 (cold) and run 2 (warm) with canonical output only: the
    // job JSON must match byte for byte across the two processes.
    let cold = run(false);
    let warm = run(false);
    assert_eq!(
        cold, warm,
        "canonical batch JSON must be byte-identical across processes"
    );
    assert_eq!(cold.matches("\"status\":\"completed\"").count(), 3);

    // Run 3 with stats: everything is served from disk, zero pipelines.
    let stats_run = run(true);
    assert!(
        stats_run.contains("\"pipelines_run\":0"),
        "warm cross-process batch must run no pipelines: {stats_run}"
    );
    assert!(
        stats_run.contains("\"disk_hits\":3"),
        "all three jobs must be disk hits: {stats_run}"
    );

    std::fs::remove_dir_all(&corpus).ok();
    std::fs::remove_dir_all(&cache_dir).ok();
}
