//! Event-stream invariants: phase bracketing per job, gapless sequence
//! numbers (modulo explicit `dropped` markers), terminal events under
//! cancellation, and serial/pooled stream parity.

use std::sync::Arc;
use std::time::Duration;

use boole::telemetry::{EventKind, Telemetry, TelemetryEvent, TelemetrySink};
use boole::BooleParams;
use boole_service::{run_spec_serial_observed, GenSpec, JobSpec, Service, ServiceConfig};

fn sink() -> TelemetrySink {
    Arc::new(Telemetry::new())
}

fn config(workers: usize, telemetry: &TelemetrySink) -> ServiceConfig {
    ServiceConfig::default()
        .with_workers(workers)
        .with_telemetry(Arc::clone(telemetry))
}

fn spec(text: &str) -> JobSpec {
    JobSpec::generated(GenSpec::parse(text).unwrap())
        .with_params(BooleParams::small().without_time_limit())
}

fn job_of(kind: &EventKind) -> Option<u64> {
    match kind {
        EventKind::JobSubmitted { job, .. }
        | EventKind::JobStarted { job }
        | EventKind::PhaseStarted { job, .. }
        | EventKind::PhaseFinished { job, .. }
        | EventKind::Iteration { job, .. }
        | EventKind::CacheHit { job, .. }
        | EventKind::CacheMiss { job, .. }
        | EventKind::JobRetry { job, .. }
        | EventKind::JobDone { job, .. } => Some(*job),
        EventKind::CacheEvicted { .. }
        | EventKind::DiskWriteError { .. }
        | EventKind::Dropped { .. } => None,
    }
}

/// Asserts the cross-job invariants on a full drained stream: sequence
/// numbers are gapless except where a `dropped` marker accounts for
/// exactly the burned range, and every job's events are well-bracketed
/// (submitted, then started, phases open/close strictly nested with
/// iterations only inside `saturate`, and a single terminal
/// `job_done` after which the job goes silent).
fn assert_stream_invariants(events: &[TelemetryEvent]) {
    let mut expected_seq = 0u64;
    for event in events {
        if let EventKind::Dropped { count } = event.kind {
            assert!(count > 0, "empty dropped marker at seq {}", event.seq);
            expected_seq += count;
        }
        assert_eq!(
            event.seq, expected_seq,
            "sequence gap not accounted by a dropped marker"
        );
        expected_seq += 1;
    }

    let jobs: std::collections::BTreeSet<u64> =
        events.iter().filter_map(|e| job_of(&e.kind)).collect();
    for job in jobs {
        let stream: Vec<&EventKind> = events
            .iter()
            .filter(|e| job_of(&e.kind) == Some(job))
            .map(|e| &e.kind)
            .collect();
        assert!(
            matches!(stream[0], EventKind::JobSubmitted { .. }),
            "job {job} must open with job_submitted, got {:?}",
            stream[0]
        );
        let mut open_phase: Option<&str> = None;
        let mut done = false;
        let mut started = false;
        for kind in &stream[1..] {
            assert!(!done, "job {job} emitted {kind:?} after its job_done");
            match kind {
                EventKind::JobSubmitted { .. } => panic!("job {job} submitted twice"),
                EventKind::JobStarted { .. } => {
                    assert!(!started, "job {job} started twice");
                    started = true;
                }
                EventKind::PhaseStarted { phase, .. } => {
                    assert!(started, "job {job}: phase before job_started");
                    assert_eq!(
                        open_phase, None,
                        "job {job}: phase {phase} opened inside another phase"
                    );
                    open_phase = Some(phase);
                }
                EventKind::PhaseFinished { phase, .. } => {
                    assert_eq!(
                        open_phase,
                        Some(*phase),
                        "job {job}: phase_finished({phase}) without matching start"
                    );
                    open_phase = None;
                }
                EventKind::Iteration { .. } => {
                    assert_eq!(
                        open_phase,
                        Some("saturate"),
                        "job {job}: iteration outside the saturate phase"
                    );
                }
                EventKind::CacheHit { .. } | EventKind::CacheMiss { .. } => {
                    assert!(started, "job {job}: cache lookup before job_started");
                }
                EventKind::JobRetry { .. } => {
                    assert_eq!(
                        open_phase, None,
                        "job {job}: retry announced inside an open phase"
                    );
                }
                EventKind::JobDone { .. } => {
                    assert_eq!(open_phase, None, "job {job} finished inside an open phase");
                    done = true;
                }
                EventKind::CacheEvicted { .. }
                | EventKind::DiskWriteError { .. }
                | EventKind::Dropped { .. } => unreachable!("not job-scoped"),
            }
        }
        assert!(done, "job {job} never reached a terminal job_done event");
    }
}

#[test]
fn pooled_batch_stream_is_bracketed_and_gapless() {
    let telemetry = sink();
    let service = Service::new(config(3, &telemetry));
    // Distinct specs: no single-flight coalescing, every job runs its
    // own pipeline, so each one must show the full phase bracket.
    service.run_batch(vec![spec("csa:2"), spec("csa:3"), spec("wallace:3")]);
    service.shutdown();
    telemetry.events.close();
    let events = telemetry.events.drain();
    assert_stream_invariants(&events);
    assert_eq!(telemetry.events.dropped_total(), 0);
    let done = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::JobDone { .. }))
        .count();
    assert_eq!(done, 3, "one terminal event per job");
}

#[test]
fn serial_stream_is_bracketed_and_matches_pooled_per_job() {
    let specs = ["csa:2", "csa:3", "wallace:3"];

    let serial = sink();
    for (i, text) in specs.iter().enumerate() {
        run_spec_serial_observed(spec(text), i as u64 + 1, Some(&serial));
    }
    serial.events.close();
    let serial_events = serial.events.drain();
    assert_stream_invariants(&serial_events);

    let pooled = sink();
    let service = Service::new(config(1, &pooled));
    service.run_batch(specs.iter().map(|t| spec(t)));
    service.shutdown();
    pooled.events.close();
    let pooled_events = pooled.events.drain();
    assert_stream_invariants(&pooled_events);

    // Per job, the serial stream is the pooled stream minus the cache
    // probes the serial path (cache-less by construction) never makes.
    let shape = |events: &[TelemetryEvent], job: u64| -> Vec<String> {
        events
            .iter()
            .filter(|e| job_of(&e.kind) == Some(job))
            .filter_map(|e| match &e.kind {
                EventKind::CacheHit { .. } | EventKind::CacheMiss { .. } => None,
                EventKind::PhaseStarted { phase, .. } => Some(format!("phase_started:{phase}")),
                EventKind::PhaseFinished { phase, .. } => Some(format!("phase_finished:{phase}")),
                EventKind::Iteration { ruleset, index, .. } => {
                    Some(format!("iteration:{ruleset}:{index}"))
                }
                kind => Some(kind.name().to_owned()),
            })
            .collect()
    };
    for job in 1..=specs.len() as u64 {
        assert_eq!(
            shape(&serial_events, job),
            shape(&pooled_events, job),
            "job {job}: serial and pooled streams diverged"
        );
    }
}

#[test]
fn deadline_doomed_job_still_emits_terminal_event() {
    // Pooled: a job whose deadline expires mid-saturation must still
    // close its stream with job_done { status: "cancelled" }.
    let telemetry = sink();
    let service = Service::new(config(1, &telemetry));
    let doomed = JobSpec::generated(GenSpec::parse("csa:8").unwrap())
        .with_deadline(Duration::from_millis(1));
    service.run_batch(vec![doomed]);
    service.shutdown();
    telemetry.events.close();
    let events = telemetry.events.drain();
    let terminal = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::JobDone { status, .. } => Some(status.clone()),
            _ => None,
        })
        .collect::<Vec<_>>();
    assert_eq!(terminal, ["cancelled"], "events: {events:?}");

    // Serial path: same guarantee.
    let serial = sink();
    let doomed = JobSpec::generated(GenSpec::parse("csa:8").unwrap())
        .with_deadline(Duration::from_millis(1));
    run_spec_serial_observed(doomed, 1, Some(&serial));
    serial.events.close();
    let events = serial.events.drain();
    assert!(
        events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::JobDone { status, .. } if status == "cancelled")),
        "events: {events:?}"
    );
}

#[test]
fn tiny_bus_drops_under_backpressure_but_accounts_for_every_seq() {
    // Nobody drains while the batch runs, so a 16-slot ring must drop;
    // the final drain still yields a gapless stream via its marker, and
    // the drop counter matches the markers' sum.
    let telemetry: TelemetrySink = Arc::new(Telemetry::with_event_capacity(16));
    let service = Service::new(config(2, &telemetry));
    service.run_batch(vec![spec("csa:3"), spec("csa:4"), spec("wallace:4")]);
    service.shutdown();
    telemetry.events.close();
    let events = telemetry.events.drain();

    let mut expected_seq = 0u64;
    let mut marked = 0u64;
    for event in &events {
        if let EventKind::Dropped { count } = event.kind {
            expected_seq += count;
            marked += count;
        }
        assert_eq!(event.seq, expected_seq, "unaccounted sequence gap");
        expected_seq += 1;
    }
    assert!(marked > 0, "a 16-slot ring must have dropped something");
    assert_eq!(
        marked,
        telemetry.events.dropped_total(),
        "markers must account for exactly the dropped events"
    );
}
