//! Chaos suite: deterministic fault injection against the service's
//! liveness and accounting invariants.
//!
//! The invariants under test, from the fault model:
//! * every submitted job reaches **exactly one** terminal status — no
//!   handle ever hangs, no worker thread dies permanently;
//! * `ServiceStats` accounting balances: `submitted` equals the sum of
//!   terminal outcomes (`completed + cancelled + failed + panicked +
//!   shed`);
//! * the disk cache heals after injected corruption;
//! * with every failpoint disabled the service is byte-identical to an
//!   unconfigured one.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use boole::json::ToJson;
use boole::BooleParams;
use boole_service::faults::site;
use boole_service::{
    FaultAction, FaultPolicy, FaultRegistry, GenSpec, JobHandle, JobSpec, JobStatus, JobVerdict,
    RejectReason, Service, ServiceConfig, ShedPolicy, SubmitError, Trigger,
};
use proptest::prelude::*;

fn spec(text: &str) -> JobSpec {
    JobSpec::generated(GenSpec::parse(text).unwrap())
        .with_params(BooleParams::lightweight().without_time_limit())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("boole-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// One policy, tersely.
fn policy(trigger: Trigger, action: FaultAction) -> FaultPolicy {
    FaultPolicy { trigger, action }
}

/// The accounting invariant: every submitted job is counted in exactly
/// one terminal bucket.
fn assert_balanced(stats: &boole_service::ServiceStats) {
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled + stats.failed + stats.panicked + stats.shed,
        "terminal outcomes must balance submissions: {stats:?}"
    );
}

#[test]
fn a_panicking_pipeline_is_isolated_and_the_worker_survives() {
    let faults = Arc::new(FaultRegistry::new());
    faults.configure(
        site::WORKER_PIPELINE,
        policy(Trigger::Nth(1), FaultAction::Panic),
    );
    // One worker: if the panic killed it, the second job would hang.
    let service = Service::new(ServiceConfig::default().with_workers(1).with_faults(faults));
    let first = service.submit(spec("csa:3")).wait();
    assert_eq!(first.status(), JobStatus::Panicked);
    match &first.verdict {
        JobVerdict::Panicked { message } => {
            assert!(
                message.contains(site::WORKER_PIPELINE),
                "the payload must name the failpoint, got: {message}"
            );
        }
        other => panic!("expected a panicked verdict, got {other:?}"),
    }
    let second = service.submit(spec("wallace:3")).wait();
    assert!(
        second.summary().is_some(),
        "the worker that caught the panic must take and finish the next job"
    );
    let stats = service.shutdown();
    assert_eq!(stats.panicked, 1);
    assert_eq!(stats.completed, 1);
    assert_balanced(&stats);
}

#[test]
fn transient_pipeline_faults_are_retried_to_success() {
    let faults = Arc::new(FaultRegistry::new());
    faults.configure(
        site::WORKER_PIPELINE,
        policy(Trigger::Nth(1), FaultAction::Error),
    );
    let service = Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_max_retries(2)
            .with_retry_base(Duration::from_millis(1))
            .with_faults(Arc::clone(&faults)),
    );
    let outcome = service.submit(spec("csa:3")).wait();
    assert!(
        outcome.summary().is_some(),
        "one injected transient failure must be absorbed by a retry: {:?}",
        outcome.verdict
    );
    assert_eq!(outcome.retries, 1, "exactly one retry should be recorded");
    let stats = service.shutdown();
    assert_eq!(stats.retried, 1);
    assert_eq!(stats.completed, 1);
    assert_balanced(&stats);
    assert_eq!(faults.fired(site::WORKER_PIPELINE), 1);
}

#[test]
fn an_exhausted_retry_budget_fails_the_job_with_the_injected_error() {
    let faults = Arc::new(FaultRegistry::new());
    faults.configure(
        site::WORKER_PIPELINE,
        policy(Trigger::Always, FaultAction::Error),
    );
    let service = Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_max_retries(1)
            .with_retry_base(Duration::from_millis(1))
            .with_faults(faults),
    );
    let outcome = service.submit(spec("csa:3")).wait();
    match &outcome.verdict {
        JobVerdict::Failed(message) => {
            assert!(
                message.contains(site::WORKER_PIPELINE),
                "the failure must carry the injected error, got: {message}"
            );
        }
        other => panic!("expected a failed verdict, got {other:?}"),
    }
    assert_eq!(outcome.retries, 1, "the whole budget should be consumed");
    let stats = service.shutdown();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.retried, 1);
    assert_balanced(&stats);
}

#[test]
fn queue_full_races_under_shed_policy_resolve_every_job_terminally() {
    let service = Arc::new(Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_shed_policy(ShedPolicy::Shed)
            .with_queue_capacity(1),
    ));
    // Three submitters race a one-deep queue and a single worker:
    // acceptance is a genuine race, but termination must not be.
    let handles: Arc<Mutex<Vec<JobHandle>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let service = Arc::clone(&service);
            let handles = Arc::clone(&handles);
            scope.spawn(move || {
                for _ in 0..4 {
                    let handle = service.submit(spec("csa:3"));
                    handles.lock().unwrap().push(handle);
                }
            });
        }
    });
    let handles = Arc::try_unwrap(handles).ok().unwrap().into_inner().unwrap();
    assert_eq!(handles.len(), 12);
    for handle in &handles {
        let outcome = handle
            .wait_timeout(Duration::from_secs(60))
            .expect("every submitted job must reach a terminal status");
        if let JobVerdict::Rejected { reason } = &outcome.verdict {
            assert_eq!(*reason, RejectReason::QueueFull);
        }
    }
    let stats = Arc::try_unwrap(service).ok().unwrap().shutdown();
    assert_eq!(stats.submitted, 12);
    assert!(stats.shed > 0, "a one-deep queue must have shed something");
    assert!(stats.completed > 0, "accepted jobs must still complete");
    assert_balanced(&stats);
}

#[test]
fn submit_timeout_rejects_after_the_bounded_wait() {
    let service = Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_capacity(1),
    );
    // Fill the worker and the queue with jobs that outlive the wait.
    let running = service.submit(spec("csa:4"));
    let queued = service.submit(spec("wallace:4"));
    let rejected = service.submit_timeout(spec("booth:4"), Duration::from_millis(5));
    let outcome = rejected.wait();
    assert_eq!(outcome.status(), JobStatus::Rejected);
    assert!(matches!(
        outcome.verdict,
        JobVerdict::Rejected {
            reason: RejectReason::Timeout
        }
    ));
    running.cancel();
    queued.cancel();
    assert!(running.wait().status().is_terminal());
    assert!(queued.wait().status().is_terminal());
    let stats = service.shutdown();
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.shed, 1);
    assert_balanced(&stats);
}

#[test]
fn injected_admission_faults_reject_typed_on_both_submit_paths() {
    let faults = Arc::new(FaultRegistry::new());
    faults.configure(
        site::QUEUE_ACCEPT,
        policy(Trigger::Nth(1), FaultAction::Error),
    );
    let service = Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_faults(Arc::clone(&faults)),
    );
    // Blocking path: the handle comes back already terminal.
    let outcome = service.submit(spec("csa:3")).wait();
    assert!(matches!(
        outcome.verdict,
        JobVerdict::Rejected {
            reason: RejectReason::Injected
        }
    ));
    // Non-blocking path: a typed error carrying the spec back.
    faults.configure(
        site::QUEUE_ACCEPT,
        policy(Trigger::Nth(1), FaultAction::Error),
    );
    let Err(err) = service.try_submit(spec("csa:3")) else {
        panic!("the armed queue.accept failpoint must reject try_submit");
    };
    assert!(matches!(err, SubmitError::Injected(_)));
    assert!(err.is_retryable());
    // The recovered spec resubmits cleanly once the failpoint is spent.
    let retried = service.submit(err.into_spec()).wait();
    assert!(retried.summary().is_some());
    let stats = service.shutdown();
    assert_eq!(stats.submitted, 2, "try_submit rejection never counts");
    assert_eq!(stats.shed, 1);
    assert_balanced(&stats);
}

#[test]
fn injected_disk_corruption_heals_across_service_restarts() {
    let dir = temp_dir("heal");
    let faults = Arc::new(FaultRegistry::new());
    faults.configure(
        site::DISK_WRITE,
        policy(Trigger::Always, FaultAction::Corrupt),
    );
    // Round 1: the pipeline succeeds but every disk write is truncated.
    let service = Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_cache_dir(&dir)
            .with_faults(faults),
    );
    assert!(service.submit(spec("csa:3")).wait().summary().is_some());
    service.shutdown();

    // Round 2 (fresh process stands in as a fresh service): the corrupt
    // entry must read as a miss, rerun, and be rewritten intact.
    let service = Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_cache_dir(&dir),
    );
    let outcome = service.submit(spec("csa:3")).wait();
    assert!(outcome.summary().is_some());
    assert!(
        !outcome.from_cache,
        "a corrupt disk entry must degrade to a miss, not a hit"
    );
    let stats = service.shutdown();
    assert_eq!(stats.disk.unwrap().misses, 1);

    // Round 3: the heal is durable — a disk hit, no pipeline.
    let service = Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_cache_dir(&dir),
    );
    let outcome = service.submit(spec("csa:3")).wait();
    assert!(outcome.from_cache, "the healed entry must serve a hit");
    let stats = service.shutdown();
    assert_eq!(stats.pipelines_run, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_always_drains_the_queue() {
    let service = Service::new(ServiceConfig::default().with_workers(1));
    let handles: Vec<JobHandle> = (0..5).map(|_| service.submit(spec("csa:3"))).collect();
    // Shutdown closes the channel and joins workers; queued jobs must
    // all have been executed, not dropped.
    let stats = service.shutdown();
    for handle in &handles {
        assert!(
            handle.status().is_terminal(),
            "job {} was left non-terminal by shutdown",
            handle.id()
        );
    }
    assert_eq!(stats.submitted, 5);
    assert_balanced(&stats);
}

#[test]
fn a_disabled_fault_registry_is_byte_identical_to_none() {
    let batch = || vec![spec("csa:3"), spec("wallace:3")];
    let run = |faults: Option<Arc<FaultRegistry>>| {
        let mut config = ServiceConfig::default().with_workers(1);
        if let Some(faults) = faults {
            config = config.with_faults(faults);
        }
        let service = Service::new(config);
        let docs: Vec<String> = service
            .run_batch(batch())
            .iter()
            .map(|o| o.to_json().to_string())
            .collect();
        service.shutdown();
        docs
    };
    let without = run(None);
    // An attached-but-unconfigured registry: every failpoint present,
    // none armed. This is the production configuration.
    let unconfigured = run(Some(Arc::new(FaultRegistry::new())));
    assert_eq!(
        without, unconfigured,
        "unconfigured failpoints must not change a single output byte"
    );
}

/// One randomized chaos round: a seeded fault schedule over a small
/// batch, checked against the liveness + accounting invariants.
fn chaos_round(rng: &mut TestRng) {
    let faults = Arc::new(FaultRegistry::new());
    for &site_name in site::ALL {
        if rng.below(2) == 0 {
            continue;
        }
        let trigger = match rng.below(3) {
            0 => Trigger::Nth(1 + rng.below(3)),
            1 => Trigger::EveryKth(2 + rng.below(2)),
            _ => Trigger::Probability {
                numerator: 1 + rng.below(3),
                denominator: 4,
                seed: rng.next_u64(),
            },
        };
        // No Panic at queue.accept: that failpoint fires on the
        // *submitter's* thread (this test), not in a worker.
        let action = match rng.below(3) {
            0 if site_name != site::QUEUE_ACCEPT => FaultAction::Panic,
            1 => FaultAction::Corrupt,
            _ => FaultAction::Error,
        };
        faults.configure(site_name, FaultPolicy { trigger, action });
    }
    let shed_policy = match rng.below(3) {
        0 => ShedPolicy::Block,
        1 => ShedPolicy::Shed,
        _ => ShedPolicy::Timeout(Duration::from_millis(2)),
    };
    let cache_dir = (rng.below(2) == 0).then(|| temp_dir(&format!("prop-{}", rng.next_u64())));
    let mut config = ServiceConfig::default()
        .with_workers(1 + rng.below(3) as usize)
        .with_shed_policy(shed_policy)
        .with_max_retries(rng.below(3) as u32)
        .with_retry_base(Duration::from_millis(1))
        .with_faults(Arc::clone(&faults))
        .with_queue_capacity(1 + rng.below(4) as usize);
    if let Some(dir) = &cache_dir {
        config = config.with_cache_dir(dir);
    }
    let service = Service::new(config);
    let pool = ["csa:3", "wallace:3", "booth:4", "csa:3"];
    let jobs = 3 + rng.below(4) as usize;
    let handles: Vec<JobHandle> = (0..jobs)
        .map(|i| {
            let handle = service.submit(spec(pool[i % pool.len()]));
            if rng.below(4) == 0 {
                handle.cancel();
            }
            handle
        })
        .collect();
    for handle in &handles {
        let outcome = handle
            .wait_timeout(Duration::from_secs(120))
            .expect("liveness: every job must reach a terminal status under any schedule");
        assert!(outcome.status().is_terminal());
        // Terminal means settled: a second wait returns the same
        // outcome (exactly one terminal status, never a transition).
        assert_eq!(handle.wait().status(), outcome.status());
    }
    let stats = service.shutdown();
    assert_eq!(stats.submitted, jobs as u64);
    assert_balanced(&stats);
    if let Some(dir) = cache_dir {
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_fault_schedules_preserve_liveness_and_accounting(seed in any::<u64>()) {
        let mut rng = TestRng::seeded(seed);
        chaos_round(&mut rng);
    }
}
