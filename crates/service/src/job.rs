//! Job specifications, statuses, and outcomes.

use std::path::PathBuf;
use std::time::Duration;

use aig::Aig;
use boole::json::{expect_exact_fields, FromJson, Json, JsonError, ToJson};
use boole::{BooleParams, BooleResult, PairStats, Phase, RecoveredFa, SaturationStats};

/// Where a job's netlist comes from.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// An in-memory netlist.
    Netlist(Aig),
    /// A netlist file on disk in any registered format
    /// (`.aag`/`.aig`/`.blif`/`.v`); the frontend is chosen by
    /// extension via [`aig::read_netlist`]. Whatever the format, the
    /// parsed structure feeds the same structural fingerprint, so
    /// isomorphic netlists share a cache entry across formats.
    File(PathBuf),
    /// ASCII AIGER text.
    AagText(String),
    /// A generated arithmetic benchmark.
    Generate(GenSpec),
}

/// Which multiplier generator to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenFamily {
    /// Unsigned carry-save array multiplier.
    Csa,
    /// Signed radix-4 Booth multiplier.
    Booth,
    /// Unsigned Wallace-tree multiplier.
    Wallace,
}

/// How a generated netlist is prepared before reasoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GenPrep {
    /// Raw generator output.
    #[default]
    None,
    /// Technology-mapping round trip (structure destroyed).
    Mapped,
    /// `dch`-style logic optimization.
    Dch,
}

/// A generated-benchmark spec, parseable from `family:bits[:prep]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenSpec {
    /// Multiplier family.
    pub family: GenFamily,
    /// Operand bit-width.
    pub bits: usize,
    /// Netlist preparation.
    pub prep: GenPrep,
}

impl GenSpec {
    /// Parses `csa:16`, `booth:8:mapped`, `wallace:4:dch`, …
    pub fn parse(text: &str) -> Result<GenSpec, String> {
        let mut parts = text.split(':');
        let family = match parts.next().unwrap_or("") {
            "csa" => GenFamily::Csa,
            "booth" => GenFamily::Booth,
            "wallace" => GenFamily::Wallace,
            other => return Err(format!("unknown family {other:?} (csa|booth|wallace)")),
        };
        let bits: usize = parts
            .next()
            .ok_or_else(|| format!("missing bit-width in {text:?}"))?
            .parse()
            .map_err(|e| format!("bad bit-width in {text:?}: {e}"))?;
        if bits < 2 {
            return Err(format!("bit-width must be >= 2, got {bits}"));
        }
        let prep = match parts.next() {
            None => GenPrep::None,
            Some("mapped") => GenPrep::Mapped,
            Some("dch") => GenPrep::Dch,
            Some(other) => return Err(format!("unknown prep {other:?} (mapped|dch)")),
        };
        if let Some(extra) = parts.next() {
            return Err(format!("trailing component {extra:?} in {text:?}"));
        }
        Ok(GenSpec { family, bits, prep })
    }

    /// Generates the netlist.
    pub fn build(&self) -> Aig {
        let raw = match self.family {
            GenFamily::Csa => aig::gen::csa_multiplier(self.bits),
            GenFamily::Booth => aig::gen::booth_multiplier(self.bits),
            GenFamily::Wallace => aig::gen::wallace_multiplier(self.bits),
        };
        match self.prep {
            GenPrep::None => raw,
            GenPrep::Mapped => aig::map::map_round_trip(&raw),
            GenPrep::Dch => aig::opt::dch(&raw),
        }
    }

    /// The canonical `family:bits[:prep]` spelling.
    pub fn display_name(&self) -> String {
        let family = match self.family {
            GenFamily::Csa => "csa",
            GenFamily::Booth => "booth",
            GenFamily::Wallace => "wallace",
        };
        match self.prep {
            GenPrep::None => format!("{family}:{}", self.bits),
            GenPrep::Mapped => format!("{family}:{}:mapped", self.bits),
            GenPrep::Dch => format!("{family}:{}:dch", self.bits),
        }
    }
}

/// A unit of work for the service.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable label, echoed in results (defaults to the source
    /// description).
    pub label: String,
    /// The netlist source.
    pub source: JobSource,
    /// Pipeline parameters. The service installs a per-job cancel
    /// token; any token already present is replaced.
    pub params: BooleParams,
    /// Relative deadline, measured from submission. When it expires the
    /// job's token is cancelled cooperatively.
    pub deadline: Option<Duration>,
    /// Consult/populate the structural-hash result cache (default on).
    pub use_cache: bool,
}

impl JobSpec {
    /// A job over an in-memory netlist.
    pub fn netlist(label: impl Into<String>, aig: Aig) -> Self {
        JobSpec {
            label: label.into(),
            source: JobSource::Netlist(aig),
            params: BooleParams::default(),
            deadline: None,
            use_cache: true,
        }
    }

    /// A job over a netlist file in any registered format
    /// (`.aag`, `.aig`, `.blif`, `.v`), dispatched by extension.
    pub fn file(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        JobSpec {
            label: path.display().to_string(),
            source: JobSource::File(path),
            params: BooleParams::default(),
            deadline: None,
            use_cache: true,
        }
    }

    /// A job over an `.aag` file (alias of [`JobSpec::file`], kept for
    /// the original AIGER-only API).
    pub fn aag_file(path: impl Into<PathBuf>) -> Self {
        Self::file(path)
    }

    /// A job over a generated benchmark.
    pub fn generated(spec: GenSpec) -> Self {
        JobSpec {
            label: spec.display_name(),
            source: JobSource::Generate(spec),
            params: BooleParams::default(),
            deadline: None,
            use_cache: true,
        }
    }

    /// Replaces the pipeline parameters.
    pub fn with_params(mut self, params: BooleParams) -> Self {
        self.params = params;
        self
    }

    /// Sets a relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Disables the result cache for this job.
    pub fn without_cache(mut self) -> Self {
        self.use_cache = false;
        self
    }
}

/// Observable lifecycle state of a submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the bounded queue.
    Queued,
    /// Picked up by a worker; the inner phase is populated once the
    /// pipeline starts reporting progress.
    Running(Option<Phase>),
    /// Finished with a result (fresh or cached).
    Completed,
    /// Cancelled (explicitly or by deadline) before completing.
    Cancelled,
    /// Failed to load/parse/generate its netlist, or exhausted its
    /// retry budget on transient failures.
    Failed,
    /// The pipeline panicked; the panic was isolated to this job (the
    /// worker thread survived).
    Panicked,
    /// Shed at admission: the service refused to queue the job (full
    /// queue under a shedding policy, admission timeout, shutdown).
    Rejected,
}

impl JobStatus {
    /// Stable lowercase name for displays and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running(_) => "running",
            JobStatus::Completed => "completed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Failed => "failed",
            JobStatus::Panicked => "panicked",
            JobStatus::Rejected => "rejected",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running(_))
    }
}

/// A cacheable, JSON-serializable summary of a completed
/// [`BooleResult`] (no e-graph, no reconstructed netlist body).
#[derive(Debug, Clone)]
pub struct ResultSummary {
    /// Exact full adders recovered.
    pub exact_fa_count: usize,
    /// Inputs of the reconstructed netlist.
    pub inputs: usize,
    /// Outputs of the reconstructed netlist.
    pub outputs: usize,
    /// AND gates in the reconstructed netlist.
    pub ands: usize,
    /// Recovered FAs in reconstructed-netlist literals.
    pub fas: Vec<RecoveredFa>,
    /// Recovered FAs in original-netlist literals.
    pub original_fas: Vec<RecoveredFa>,
    /// Saturation statistics.
    pub saturation: SaturationStats,
    /// Pairing statistics.
    pub pairing: PairStats,
    /// Pipeline wall-clock time (not part of the canonical JSON).
    pub pipeline_runtime: Duration,
}

impl From<&BooleResult> for ResultSummary {
    fn from(result: &BooleResult) -> Self {
        ResultSummary {
            exact_fa_count: result.exact_fa_count(),
            inputs: result.reconstructed.num_inputs(),
            outputs: result.reconstructed.num_outputs(),
            ands: result.reconstructed.num_ands(),
            fas: result.fas.clone(),
            original_fas: result.original_fas.clone(),
            saturation: result.saturation.clone(),
            pairing: result.pairing,
            pipeline_runtime: result.runtime,
        }
    }
}

/// Canonical (deterministic) JSON: every field is a pure function of
/// the netlist and parameters, so concurrent and serial executions of
/// the same batch serialize byte-identically. Wall-clock timings are
/// exposed separately via [`JobOutcome::timing_json`].
impl ToJson for ResultSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("exact_fa_count", Json::from(self.exact_fa_count)),
            (
                "reconstructed",
                Json::obj([
                    ("inputs", Json::from(self.inputs)),
                    ("outputs", Json::from(self.outputs)),
                    ("ands", Json::from(self.ands)),
                ]),
            ),
            ("fas", Json::arr(self.fas.iter().map(ToJson::to_json))),
            (
                "original_fas",
                Json::arr(self.original_fas.iter().map(ToJson::to_json)),
            ),
            ("saturation", self.saturation.to_json()),
            ("pairing", self.pairing.to_json()),
        ])
    }
}

/// Rebuilds a summary from its canonical document (the exact shape
/// [`ToJson`] emits — strict, so corrupt or stale persistent-store
/// entries are rejected as a whole). `pipeline_runtime` is not part of
/// the canonical document and comes back zero; the disk store carries
/// it in the record envelope and restores it after this conversion.
impl FromJson for ResultSummary {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let [exact_fa_count, reconstructed, fas, original_fas, saturation, pairing] =
            expect_exact_fields(
                json,
                [
                    "exact_fa_count",
                    "reconstructed",
                    "fas",
                    "original_fas",
                    "saturation",
                    "pairing",
                ],
            )?;
        let [inputs, outputs, ands] =
            expect_exact_fields(reconstructed, ["inputs", "outputs", "ands"])?;
        let fa_list = |json: &Json, name: &str| -> Result<Vec<RecoveredFa>, JsonError> {
            json.as_array()
                .ok_or_else(|| JsonError::new(format!("field {name:?} is not an array")))?
                .iter()
                .map(RecoveredFa::from_json)
                .collect()
        };
        Ok(ResultSummary {
            exact_fa_count: exact_fa_count.expect_usize("exact_fa_count")?,
            inputs: inputs.expect_usize("inputs")?,
            outputs: outputs.expect_usize("outputs")?,
            ands: ands.expect_usize("ands")?,
            fas: fa_list(fas, "fas")?,
            original_fas: fa_list(original_fas, "original_fas")?,
            saturation: SaturationStats::from_json(saturation)?,
            pairing: PairStats::from_json(pairing)?,
            pipeline_runtime: Duration::ZERO,
        })
    }
}

/// Why the service refused to queue a job (see
/// [`JobVerdict::Rejected`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded queue was at capacity under a shedding policy.
    QueueFull,
    /// The queue stayed full for the whole admission timeout.
    Timeout,
    /// The worker pool is shutting down; the job can never run.
    ShuttingDown,
    /// The `queue.accept` failpoint fired (chaos testing).
    Injected,
}

impl RejectReason {
    /// Stable lowercase name for displays and JSON.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::Timeout => "timeout",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::Injected => "injected",
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone)]
pub enum JobVerdict {
    /// The pipeline produced a result (possibly served from cache).
    Completed(std::sync::Arc<ResultSummary>),
    /// The job's token fired first; `phase` is where the pipeline
    /// observed it (absent when cancelled while still queued).
    Cancelled {
        /// Pipeline phase at cancellation, if it had started.
        phase: Option<Phase>,
    },
    /// The netlist could not be loaded/parsed/generated, or transient
    /// failures outlived the retry budget.
    Failed(String),
    /// The pipeline panicked. The panic was contained: the stream
    /// closed, waiters woke, and the worker thread took the next job.
    Panicked {
        /// The panic payload, rendered.
        message: String,
    },
    /// Shed at admission instead of queued — the typed fail-fast
    /// outcome of [`ShedPolicy`](crate::ShedPolicy) admission control.
    Rejected {
        /// Why admission refused the job.
        reason: RejectReason,
    },
}

/// The terminal record of a job, retrievable via `JobHandle::wait`.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Service-assigned id (submission order, starting at 1).
    pub job_id: u64,
    /// The spec's label.
    pub label: String,
    /// How the job ended.
    pub verdict: JobVerdict,
    /// Whether the result was served from the structural-hash cache.
    pub from_cache: bool,
    /// Queue-to-terminal wall-clock time (not part of canonical JSON).
    pub service_time: Duration,
    /// Transient-failure retries this job consumed (not part of
    /// canonical JSON; reported in the timing block).
    pub retries: u32,
}

impl JobOutcome {
    /// The result summary, if the job completed.
    pub fn summary(&self) -> Option<&ResultSummary> {
        match &self.verdict {
            JobVerdict::Completed(summary) => Some(summary),
            _ => None,
        }
    }

    /// The terminal status corresponding to the verdict.
    pub fn status(&self) -> JobStatus {
        match &self.verdict {
            JobVerdict::Completed(_) => JobStatus::Completed,
            JobVerdict::Cancelled { .. } => JobStatus::Cancelled,
            JobVerdict::Failed(_) => JobStatus::Failed,
            JobVerdict::Panicked { .. } => JobStatus::Panicked,
            JobVerdict::Rejected { .. } => JobStatus::Rejected,
        }
    }

    /// Non-canonical execution metadata (varies run to run): wall
    /// clocks, and whether the cache answered. `from_cache` lives here
    /// rather than in the canonical JSON because it depends on what
    /// ran earlier — two jobs over isomorphic netlists race for the
    /// one cache miss, so including it canonically would break the
    /// byte-identical serial-vs-concurrent contract.
    pub fn timing_json(&self) -> Json {
        let mut pairs = vec![
            ("from_cache".to_owned(), Json::from(self.from_cache)),
            (
                "service_ms".to_owned(),
                Json::duration_ms(self.service_time),
            ),
            ("retries".to_owned(), Json::from(self.retries as usize)),
        ];
        if let Some(summary) = self.summary() {
            pairs.push((
                "pipeline_ms".to_owned(),
                Json::duration_ms(summary.pipeline_runtime),
            ));
            // Saturation phase breakdown (struct-only fields: they are
            // wall clocks, so they live here, not in the canonical
            // document). A cache-served summary reports zeros.
            let sat = &summary.saturation;
            pairs.push(("search_ms".to_owned(), Json::duration_ms(sat.search_time)));
            pairs.push(("merge_ms".to_owned(), Json::duration_ms(sat.merge_time)));
            pairs.push(("apply_ms".to_owned(), Json::duration_ms(sat.apply_time)));
            pairs.push(("rebuild_ms".to_owned(), Json::duration_ms(sat.rebuild_time)));
            pairs.push((
                "relation_build_ms".to_owned(),
                Json::duration_ms(sat.relation_build_time),
            ));
            pairs.push(("total_matches".to_owned(), Json::from(sat.total_matches)));
        }
        Json::Obj(pairs)
    }
}

/// Canonical (deterministic) JSON; see [`ResultSummary`]'s impl for
/// the determinism contract.
impl ToJson for JobOutcome {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("label".to_owned(), Json::str(&self.label)),
            ("status".to_owned(), Json::str(self.status().name())),
        ];
        match &self.verdict {
            JobVerdict::Completed(summary) => {
                pairs.push(("result".to_owned(), summary.to_json()));
            }
            JobVerdict::Cancelled { phase } => {
                pairs.push((
                    "cancelled_in".to_owned(),
                    match phase {
                        Some(p) => Json::str(p.name()),
                        None => Json::Null,
                    },
                ));
            }
            JobVerdict::Failed(err) => {
                pairs.push(("error".to_owned(), Json::str(err.clone())));
            }
            JobVerdict::Panicked { message } => {
                pairs.push(("panic".to_owned(), Json::str(message.clone())));
            }
            JobVerdict::Rejected { reason } => {
                pairs.push(("rejected".to_owned(), Json::str(reason.name())));
            }
        }
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_spec_parses_and_round_trips() {
        for text in ["csa:4", "booth:4:mapped", "wallace:3:dch"] {
            let spec = GenSpec::parse(text).unwrap();
            assert_eq!(spec.display_name(), text);
            let aig = spec.build();
            assert!(aig.num_inputs() > 0);
        }
    }

    #[test]
    fn gen_spec_rejects_garbage() {
        assert!(GenSpec::parse("karatsuba:8").is_err());
        assert!(GenSpec::parse("csa").is_err());
        assert!(GenSpec::parse("csa:x").is_err());
        assert!(GenSpec::parse("csa:1").is_err());
        assert!(GenSpec::parse("csa:4:optimized").is_err());
        assert!(GenSpec::parse("csa:4:mapped:extra").is_err());
    }

    fn arb_summary() -> impl proptest::Strategy<Value = ResultSummary> {
        use egraph::StopReason;
        use proptest::Strategy as _;
        let fa = ((0u32..4096, 0u32..4096, 0u32..4096), 0u32..4096, 0u32..4096).prop_map(
            |((a, b, c), sum, carry)| RecoveredFa {
                inputs: [aig::Lit(a), aig::Lit(b), aig::Lit(c)],
                sum: aig::Lit(sum),
                carry: aig::Lit(carry),
            },
        );
        let stop = || {
            proptest::prop_oneof![
                proptest::Just(StopReason::Saturated),
                proptest::Just(StopReason::Cancelled),
                (0usize..500).prop_map(StopReason::IterLimit),
                (0usize..500_000).prop_map(StopReason::NodeLimit),
            ]
        };
        (
            (0usize..64, 0usize..64, 0usize..64, 0usize..4096),
            proptest::collection::vec(fa, 0..5),
            (stop(), stop()),
            (0usize..10_000, 0usize..10_000, 0usize..100),
            (0usize..1000, 0usize..1000, 0usize..1000),
        )
            .prop_map(
                |((fa_count, inputs, outputs, ands), fas, (r1, r2), (n1, n2, iters), pair)| {
                    ResultSummary {
                        exact_fa_count: fa_count,
                        inputs,
                        outputs,
                        ands,
                        original_fas: fas.clone(),
                        fas,
                        saturation: SaturationStats {
                            nodes_after_r1: n1,
                            nodes_after_r2: n2,
                            classes: n2 / 2,
                            r1_stop: r1,
                            r2_stop: r2,
                            r1_iterations: iters,
                            r2_iterations: iters,
                            pruned: n1 / 3,
                            search_time: Duration::ZERO,
                            merge_time: Duration::ZERO,
                            apply_time: Duration::ZERO,
                            rebuild_time: Duration::ZERO,
                            relation_build_time: Duration::ZERO,
                            total_matches: n1 + n2,
                            rules: Vec::new(),
                        },
                        pairing: PairStats {
                            fa_inserted: pair.0,
                            xor3_triples: pair.1,
                            maj_triples: pair.2,
                        },
                        pipeline_runtime: Duration::ZERO,
                    }
                },
            )
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// parse ∘ print = id on generated `ResultSummary` documents:
        /// the canonical JSON survives a trip through `Json::parse` +
        /// `FromJson` byte-for-byte.
        #[test]
        fn summary_canonical_json_round_trips(summary in arb_summary()) {
            let doc = summary.to_json();
            let text = doc.to_string();
            let reparsed = Json::parse(&text).expect("canonical JSON must parse");
            proptest::prop_assert_eq!(&reparsed, &doc);
            let back = ResultSummary::from_json(&reparsed).expect("canonical doc must convert");
            proptest::prop_assert_eq!(back.to_json().to_string(), text);
        }
    }

    #[test]
    fn summary_from_json_rejects_drift() {
        let aig = aig::gen::csa_multiplier(3);
        let result = boole::BoolE::new(BooleParams::small()).run(&aig);
        let summary = ResultSummary::from(&result);
        let doc = summary.to_json();
        // The pristine document converts.
        assert!(ResultSummary::from_json(&doc).is_ok());
        // Dropping or adding any top-level field rejects the document.
        let Json::Obj(pairs) = &doc else { panic!() };
        for i in 0..pairs.len() {
            let mut pruned = pairs.clone();
            pruned.remove(i);
            assert!(
                ResultSummary::from_json(&Json::Obj(pruned)).is_err(),
                "missing {:?} must be rejected",
                pairs[i].0
            );
        }
        let mut extended = pairs.clone();
        extended.push(("future_field".to_owned(), Json::Null));
        assert!(ResultSummary::from_json(&Json::Obj(extended)).is_err());
        // Mistyped leaves are rejected too.
        let mut mistyped = pairs.clone();
        mistyped[0].1 = Json::str("three");
        assert!(ResultSummary::from_json(&Json::Obj(mistyped)).is_err());
    }

    #[test]
    fn job_spec_builder_defaults() {
        let spec = JobSpec::generated(GenSpec::parse("csa:3").unwrap());
        assert_eq!(spec.label, "csa:3");
        assert!(spec.use_cache);
        assert!(spec.deadline.is_none());
        let spec = spec.without_cache().with_deadline(Duration::from_millis(5));
        assert!(!spec.use_cache);
        assert_eq!(spec.deadline, Some(Duration::from_millis(5)));
    }
}
