//! The `boole` CLI: batch symbolic reasoning with JSON output.
//!
//! ```text
//! boole run <netlist> [options]           one job from a netlist file
//!                                         (.aag, .aig, .blif, .v)
//! boole batch <dir> [options]             every supported netlist under
//!                                         <dir>, formats freely mixed
//! boole gen <spec> [<spec> ...] [options] generated benchmarks (csa:16,
//!                                         booth:8:mapped, wallace:4:dch)
//!
//! options:
//!   --workers N        worker threads (default: min(cpus, 4))
//!   --serial           run inline on one thread, bypassing the pool and cache
//!   --deadline-ms N    per-job deadline; expired jobs are cancelled
//!   --params P         default | small | lightweight
//!   --no-cache         skip the structural-hash result cache
//!   --no-timing        omit wall-clock fields (canonical, reproducible JSON)
//!   --compact          one-line JSON instead of pretty-printed
//! ```

use std::process::ExitCode;
use std::time::Duration;

use boole::json::{Json, ToJson};
use boole::BooleParams;
use boole_service::{run_spec_serial, GenSpec, JobOutcome, JobSpec, Service, ServiceConfig};

struct Options {
    workers: Option<usize>,
    serial: bool,
    deadline: Option<Duration>,
    params: BooleParams,
    use_cache: bool,
    timing: bool,
    pretty: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workers: None,
        serial: false,
        deadline: None,
        params: BooleParams::default(),
        use_cache: true,
        timing: true,
        pretty: true,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                let v = args.get(i + 1).ok_or("--workers needs a value")?;
                opts.workers = Some(v.parse().map_err(|e| format!("bad --workers: {e}"))?);
                i += 2;
            }
            "--deadline-ms" => {
                let v = args.get(i + 1).ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?;
                opts.deadline = Some(Duration::from_millis(ms));
                i += 2;
            }
            "--params" => {
                let v = args.get(i + 1).ok_or("--params needs a value")?;
                opts.params = match v.as_str() {
                    "default" => BooleParams::default(),
                    "small" => BooleParams::small(),
                    "lightweight" => BooleParams::lightweight(),
                    other => return Err(format!("unknown --params {other:?}")),
                };
                i += 2;
            }
            "--serial" => {
                opts.serial = true;
                i += 1;
            }
            "--no-cache" => {
                opts.use_cache = false;
                i += 1;
            }
            "--no-timing" => {
                opts.timing = false;
                i += 1;
            }
            "--compact" => {
                opts.pretty = false;
                i += 1;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn make_spec(source_spec: JobSpec, opts: &Options) -> JobSpec {
    // Service mode bounds runtime with per-job deadlines, not the
    // pipeline's wall-clock limit: wall-clock stops vary with machine
    // load, which would make results non-reproducible and cache-hostile.
    let mut spec = source_spec.with_params(opts.params.clone().without_time_limit());
    if let Some(deadline) = opts.deadline {
        spec = spec.with_deadline(deadline);
    }
    if !opts.use_cache {
        spec = spec.without_cache();
    }
    spec
}

fn execute(specs: Vec<JobSpec>, opts: &Options) -> (Json, bool) {
    let (outcomes, stats): (Vec<std::sync::Arc<JobOutcome>>, Option<Json>) = if opts.serial {
        (specs.into_iter().map(run_spec_serial).collect(), None)
    } else {
        let mut config = ServiceConfig::default();
        if let Some(workers) = opts.workers {
            config = config.with_workers(workers);
        }
        let service = Service::new(config);
        let outcomes = service.run_batch(specs);
        let stats = service.shutdown();
        (outcomes, Some(stats.to_json()))
    };

    let any_failed = outcomes
        .iter()
        .any(|o| matches!(o.status(), boole_service::JobStatus::Failed));
    let jobs = Json::arr(outcomes.iter().map(|outcome| {
        let mut doc = outcome.to_json();
        if opts.timing {
            if let Json::Obj(pairs) = &mut doc {
                pairs.push(("timing".to_owned(), outcome.timing_json()));
            }
        }
        doc
    }));
    let mut pairs = vec![("jobs".to_owned(), jobs)];
    if opts.timing {
        if let Some(stats) = stats {
            pairs.push(("service".to_owned(), stats));
        }
    }
    (Json::Obj(pairs), any_failed)
}

fn usage() -> String {
    "usage: boole <run <netlist> | batch <dir> | gen <spec>...> [options]\n\
     netlists: .aag (ASCII AIGER), .aig (binary AIGER), .blif, .v (structural Verilog);\n\
     \x20         batch mixes formats freely\n\
     options: --workers N --serial --deadline-ms N --params default|small|lightweight\n\
     \x20        --no-cache --no-timing --compact\n\
     gen specs: csa:N | booth:N | wallace:N, optional suffix :mapped or :dch"
        .to_owned()
}

/// Collects every supported netlist under `dir`, recursively: real
/// benchmark suites (e.g. the EPFL checkout) nest circuits in
/// subdirectories. The listing is sorted for reproducible job order.
fn collect_netlist_files(dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>, String> {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current)
            .map_err(|e| format!("cannot read directory {}: {e}", current.display()))?;
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path
                .extension()
                .and_then(|ext| ext.to_str())
                .is_some_and(aig::netlist::is_supported_extension)
            {
                files.push(path);
            }
        }
    }
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no netlist files (.aag/.aig/.blif/.v) under {}",
            dir.display()
        ));
    }
    Ok(files)
}

struct RunPlan {
    doc: Json,
    pretty: bool,
    any_failed: bool,
}

fn run() -> Result<RunPlan, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = args.split_first().ok_or_else(usage)?;
    let (specs, opts) = match command.as_str() {
        "run" => {
            let (file, rest) = rest.split_first().ok_or("run: missing <netlist file>")?;
            let opts = parse_options(rest)?;
            (vec![make_spec(JobSpec::file(file), &opts)], opts)
        }
        "batch" => {
            let (dir, rest) = rest.split_first().ok_or("batch: missing <dir>")?;
            let opts = parse_options(rest)?;
            let specs = collect_netlist_files(std::path::Path::new(dir))?
                .into_iter()
                .map(|p| make_spec(JobSpec::file(p), &opts))
                .collect();
            (specs, opts)
        }
        "gen" => {
            let split = rest
                .iter()
                .position(|a| a.starts_with("--"))
                .unwrap_or(rest.len());
            let (spec_args, opt_args) = rest.split_at(split);
            if spec_args.is_empty() {
                return Err("gen: missing at least one <family:bits[:prep]> spec".to_owned());
            }
            let opts = parse_options(opt_args)?;
            let specs = spec_args
                .iter()
                .map(|text| Ok(make_spec(JobSpec::generated(GenSpec::parse(text)?), &opts)))
                .collect::<Result<Vec<_>, String>>()?;
            (specs, opts)
        }
        "--help" | "-h" | "help" => return Err(usage()),
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    };
    let (doc, any_failed) = execute(specs, &opts);
    Ok(RunPlan {
        doc,
        pretty: opts.pretty,
        any_failed,
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(plan) => {
            if plan.pretty {
                println!("{}", plan.doc.pretty());
            } else {
                println!("{}", plan.doc);
            }
            // Failed jobs (unreadable/unparseable netlists) still print
            // their JSON error record, but the exit code must reflect
            // them so scripts and CI notice.
            if plan.any_failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
