//! The `boole` CLI: batch symbolic reasoning with JSON output.
//!
//! ```text
//! boole run <file.aag> [options]          one job from an ASCII AIGER file
//! boole batch <dir> [options]             every *.aag under <dir>
//! boole gen <spec> [<spec> ...] [options] generated benchmarks (csa:16,
//!                                         booth:8:mapped, wallace:4:dch)
//!
//! options:
//!   --workers N        worker threads (default: min(cpus, 4))
//!   --serial           run inline on one thread, bypassing the pool and cache
//!   --deadline-ms N    per-job deadline; expired jobs are cancelled
//!   --params P         default | small | lightweight
//!   --no-cache         skip the structural-hash result cache
//!   --no-timing        omit wall-clock fields (canonical, reproducible JSON)
//!   --compact          one-line JSON instead of pretty-printed
//! ```

use std::process::ExitCode;
use std::time::Duration;

use boole::json::{Json, ToJson};
use boole::BooleParams;
use boole_service::{run_spec_serial, GenSpec, JobOutcome, JobSpec, Service, ServiceConfig};

struct Options {
    workers: Option<usize>,
    serial: bool,
    deadline: Option<Duration>,
    params: BooleParams,
    use_cache: bool,
    timing: bool,
    pretty: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workers: None,
        serial: false,
        deadline: None,
        params: BooleParams::default(),
        use_cache: true,
        timing: true,
        pretty: true,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                let v = args.get(i + 1).ok_or("--workers needs a value")?;
                opts.workers = Some(v.parse().map_err(|e| format!("bad --workers: {e}"))?);
                i += 2;
            }
            "--deadline-ms" => {
                let v = args.get(i + 1).ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?;
                opts.deadline = Some(Duration::from_millis(ms));
                i += 2;
            }
            "--params" => {
                let v = args.get(i + 1).ok_or("--params needs a value")?;
                opts.params = match v.as_str() {
                    "default" => BooleParams::default(),
                    "small" => BooleParams::small(),
                    "lightweight" => BooleParams::lightweight(),
                    other => return Err(format!("unknown --params {other:?}")),
                };
                i += 2;
            }
            "--serial" => {
                opts.serial = true;
                i += 1;
            }
            "--no-cache" => {
                opts.use_cache = false;
                i += 1;
            }
            "--no-timing" => {
                opts.timing = false;
                i += 1;
            }
            "--compact" => {
                opts.pretty = false;
                i += 1;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn make_spec(source_spec: JobSpec, opts: &Options) -> JobSpec {
    // Service mode bounds runtime with per-job deadlines, not the
    // pipeline's wall-clock limit: wall-clock stops vary with machine
    // load, which would make results non-reproducible and cache-hostile.
    let mut spec = source_spec.with_params(opts.params.clone().without_time_limit());
    if let Some(deadline) = opts.deadline {
        spec = spec.with_deadline(deadline);
    }
    if !opts.use_cache {
        spec = spec.without_cache();
    }
    spec
}

fn execute(specs: Vec<JobSpec>, opts: &Options) -> Json {
    let (outcomes, stats): (Vec<std::sync::Arc<JobOutcome>>, Option<Json>) = if opts.serial {
        (specs.into_iter().map(run_spec_serial).collect(), None)
    } else {
        let mut config = ServiceConfig::default();
        if let Some(workers) = opts.workers {
            config = config.with_workers(workers);
        }
        let service = Service::new(config);
        let outcomes = service.run_batch(specs);
        let stats = service.shutdown();
        (outcomes, Some(stats.to_json()))
    };

    let jobs = Json::arr(outcomes.iter().map(|outcome| {
        let mut doc = outcome.to_json();
        if opts.timing {
            if let Json::Obj(pairs) = &mut doc {
                pairs.push(("timing".to_owned(), outcome.timing_json()));
            }
        }
        doc
    }));
    let mut pairs = vec![("jobs".to_owned(), jobs)];
    if opts.timing {
        if let Some(stats) = stats {
            pairs.push(("service".to_owned(), stats));
        }
    }
    Json::Obj(pairs)
}

fn usage() -> String {
    "usage: boole <run <file.aag> | batch <dir> | gen <spec>...> [options]\n\
     options: --workers N --serial --deadline-ms N --params default|small|lightweight\n\
     \x20        --no-cache --no-timing --compact\n\
     gen specs: csa:N | booth:N | wallace:N, optional suffix :mapped or :dch"
        .to_owned()
}

fn collect_aag_files(dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>, String> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "aag"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .aag files under {}", dir.display()));
    }
    Ok(files)
}

fn run() -> Result<(Json, bool), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = args.split_first().ok_or_else(usage)?;
    let (specs, opts) = match command.as_str() {
        "run" => {
            let (file, rest) = rest.split_first().ok_or("run: missing <file.aag>")?;
            let opts = parse_options(rest)?;
            (vec![make_spec(JobSpec::aag_file(file), &opts)], opts)
        }
        "batch" => {
            let (dir, rest) = rest.split_first().ok_or("batch: missing <dir>")?;
            let opts = parse_options(rest)?;
            let specs = collect_aag_files(std::path::Path::new(dir))?
                .into_iter()
                .map(|p| make_spec(JobSpec::aag_file(p), &opts))
                .collect();
            (specs, opts)
        }
        "gen" => {
            let split = rest
                .iter()
                .position(|a| a.starts_with("--"))
                .unwrap_or(rest.len());
            let (spec_args, opt_args) = rest.split_at(split);
            if spec_args.is_empty() {
                return Err("gen: missing at least one <family:bits[:prep]> spec".to_owned());
            }
            let opts = parse_options(opt_args)?;
            let specs = spec_args
                .iter()
                .map(|text| Ok(make_spec(JobSpec::generated(GenSpec::parse(text)?), &opts)))
                .collect::<Result<Vec<_>, String>>()?;
            (specs, opts)
        }
        "--help" | "-h" | "help" => return Err(usage()),
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    };
    Ok((execute(specs, &opts), opts.pretty))
}

fn main() -> ExitCode {
    match run() {
        Ok((doc, pretty)) => {
            if pretty {
                println!("{}", doc.pretty());
            } else {
                println!("{doc}");
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
