//! The `boole` CLI: batch symbolic reasoning with JSON output.
//!
//! ```text
//! boole run <netlist> [options]           one job from a netlist file
//!                                         (.aag, .aig, .blif, .v)
//! boole batch <dir> [options]             every supported netlist under
//!                                         <dir>, formats freely mixed
//! boole gen <spec> [<spec> ...] [options] generated benchmarks (csa:16,
//!                                         booth:8:mapped, wallace:4:dch)
//!
//! options (interleave freely with positional arguments):
//!   --workers N        worker threads (default: min(cpus, 4))
//!   --serial           run inline on one thread, bypassing the pool and cache
//!   --deadline-ms N    per-job deadline; expired jobs are cancelled
//!   --params P         default | small | lightweight
//!   --cache-dir DIR    persistent result cache; hits survive across runs
//!   --no-cache         skip the structural-hash result cache
//!   --no-timing        omit wall-clock fields (canonical, reproducible JSON)
//!   --compact          one-line JSON instead of pretty-printed
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use boole::json::{Json, ToJson};
use boole::BooleParams;
use boole_service::{run_spec_serial, GenSpec, JobOutcome, JobSpec, Service, ServiceConfig};

struct Options {
    workers: Option<usize>,
    serial: bool,
    deadline: Option<Duration>,
    params: BooleParams,
    cache_dir: Option<PathBuf>,
    use_cache: bool,
    timing: bool,
    pretty: bool,
}

/// Parses a command's arguments into options plus the positional
/// (non-`--`) arguments, which may be freely interleaved with options:
/// `boole gen csa:4 --workers 2 booth:4` sees specs `[csa:4, booth:4]`.
fn parse_args(args: &[String]) -> Result<(Options, Vec<String>), String> {
    let mut opts = Options {
        workers: None,
        serial: false,
        deadline: None,
        params: BooleParams::default(),
        cache_dir: None,
        use_cache: true,
        timing: true,
        pretty: true,
    };
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                let v = args.get(i + 1).ok_or("--workers needs a value")?;
                opts.workers = Some(v.parse().map_err(|e| format!("bad --workers: {e}"))?);
                i += 2;
            }
            "--deadline-ms" => {
                let v = args.get(i + 1).ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?;
                opts.deadline = Some(Duration::from_millis(ms));
                i += 2;
            }
            "--params" => {
                let v = args.get(i + 1).ok_or("--params needs a value")?;
                opts.params = match v.as_str() {
                    "default" => BooleParams::default(),
                    "small" => BooleParams::small(),
                    "lightweight" => BooleParams::lightweight(),
                    other => return Err(format!("unknown --params {other:?}")),
                };
                i += 2;
            }
            "--cache-dir" => {
                let v = args.get(i + 1).ok_or("--cache-dir needs a value")?;
                opts.cache_dir = Some(PathBuf::from(v));
                i += 2;
            }
            "--serial" => {
                opts.serial = true;
                i += 1;
            }
            "--no-cache" => {
                opts.use_cache = false;
                i += 1;
            }
            "--no-timing" => {
                opts.timing = false;
                i += 1;
            }
            "--compact" => {
                opts.pretty = false;
                i += 1;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}"));
            }
            _ => {
                positional.push(args[i].clone());
                i += 1;
            }
        }
    }
    if opts.serial && opts.cache_dir.is_some() {
        return Err("--serial bypasses the cache; drop it or --cache-dir".to_owned());
    }
    if opts.serial && opts.workers.is_some() {
        return Err("--serial runs one job at a time; drop it or --workers".to_owned());
    }
    if !opts.use_cache && opts.cache_dir.is_some() {
        return Err("--no-cache disables all cache tiers; drop it or --cache-dir".to_owned());
    }
    Ok((opts, positional))
}

fn make_spec(source_spec: JobSpec, opts: &Options) -> JobSpec {
    // Service mode bounds runtime with per-job deadlines, not the
    // pipeline's wall-clock limit: wall-clock stops vary with machine
    // load, which would make results non-reproducible and cache-hostile.
    let mut spec = source_spec.with_params(opts.params.clone().without_time_limit());
    if let Some(deadline) = opts.deadline {
        spec = spec.with_deadline(deadline);
    }
    if !opts.use_cache {
        spec = spec.without_cache();
    }
    spec
}

fn execute(specs: Vec<JobSpec>, opts: &Options) -> (Json, bool) {
    let (outcomes, stats): (Vec<std::sync::Arc<JobOutcome>>, Option<Json>) = if opts.serial {
        (specs.into_iter().map(run_spec_serial).collect(), None)
    } else {
        let mut config = ServiceConfig::default();
        if let Some(workers) = opts.workers {
            config = config.with_workers(workers);
        }
        if let Some(dir) = &opts.cache_dir {
            config = config.with_cache_dir(dir);
        }
        let service = Service::new(config);
        let outcomes = service.run_batch(specs);
        let stats = service.shutdown();
        (outcomes, Some(stats.to_json()))
    };

    let any_failed = outcomes
        .iter()
        .any(|o| matches!(o.status(), boole_service::JobStatus::Failed));
    let jobs = Json::arr(outcomes.iter().map(|outcome| {
        let mut doc = outcome.to_json();
        if opts.timing {
            if let Json::Obj(pairs) = &mut doc {
                pairs.push(("timing".to_owned(), outcome.timing_json()));
            }
        }
        doc
    }));
    let mut pairs = vec![("jobs".to_owned(), jobs)];
    if opts.timing {
        if let Some(stats) = stats {
            pairs.push(("service".to_owned(), stats));
        }
    }
    (Json::Obj(pairs), any_failed)
}

fn usage() -> String {
    "usage: boole <run <netlist> | batch <dir> | gen <spec>...> [options]\n\
     netlists: .aag (ASCII AIGER), .aig (binary AIGER), .blif, .v (structural Verilog);\n\
     \x20         batch mixes formats freely\n\
     options: --workers N --serial --deadline-ms N --params default|small|lightweight\n\
     \x20        --cache-dir DIR --no-cache --no-timing --compact\n\
     \x20        (options and positional arguments may be interleaved)\n\
     gen specs: csa:N | booth:N | wallace:N, optional suffix :mapped or :dch"
        .to_owned()
}

/// Collects every supported netlist under `dir`, recursively: real
/// benchmark suites (e.g. the EPFL checkout) nest circuits in
/// subdirectories. The listing is sorted for reproducible job order.
///
/// Directories are deduplicated by canonical path, so a symlink cycle
/// (`sub/loop -> ..`) terminates and a symlink aliasing a directory
/// already in the tree does not double-count its circuits. Unreadable
/// directories and entries are hard errors, not silent omissions: a
/// batch that would skip netlists it was asked to process must fail
/// loudly instead of reporting a clean partial run.
fn collect_netlist_files(dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>, String> {
    let canonical = |path: &std::path::Path| {
        std::fs::canonicalize(path)
            .map_err(|e| format!("cannot resolve directory {}: {e}", path.display()))
    };
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    let mut visited = std::collections::HashSet::new();
    visited.insert(canonical(dir)?);
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current)
            .map_err(|e| format!("cannot read directory {}: {e}", current.display()))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| format!("cannot read an entry of {}: {e}", current.display()))?;
            let path = entry.path();
            if path.is_dir() {
                if visited.insert(canonical(&path)?) {
                    stack.push(path);
                }
            } else if path
                .extension()
                .and_then(|ext| ext.to_str())
                .is_some_and(aig::netlist::is_supported_extension)
            {
                files.push(path);
            }
        }
    }
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no netlist files (.aag/.aig/.blif/.v) under {}",
            dir.display()
        ));
    }
    Ok(files)
}

struct RunPlan {
    doc: Json,
    pretty: bool,
    any_failed: bool,
}

fn run() -> Result<RunPlan, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = args.split_first().ok_or_else(usage)?;
    let (specs, opts) = match command.as_str() {
        "run" => {
            let (opts, positional) = parse_args(rest)?;
            let [file] = positional.as_slice() else {
                return Err(format!(
                    "run: expected exactly one <netlist file>, got {}",
                    positional.len()
                ));
            };
            (vec![make_spec(JobSpec::file(file), &opts)], opts)
        }
        "batch" => {
            let (opts, positional) = parse_args(rest)?;
            let [dir] = positional.as_slice() else {
                return Err(format!(
                    "batch: expected exactly one <dir>, got {}",
                    positional.len()
                ));
            };
            let specs = collect_netlist_files(std::path::Path::new(dir))?
                .into_iter()
                .map(|p| make_spec(JobSpec::file(p), &opts))
                .collect();
            (specs, opts)
        }
        "gen" => {
            let (opts, spec_args) = parse_args(rest)?;
            if spec_args.is_empty() {
                return Err("gen: missing at least one <family:bits[:prep]> spec".to_owned());
            }
            let specs = spec_args
                .iter()
                .map(|text| Ok(make_spec(JobSpec::generated(GenSpec::parse(text)?), &opts)))
                .collect::<Result<Vec<_>, String>>()?;
            (specs, opts)
        }
        "--help" | "-h" | "help" => return Err(usage()),
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    };
    let (doc, any_failed) = execute(specs, &opts);
    Ok(RunPlan {
        doc,
        pretty: opts.pretty,
        any_failed,
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(plan) => {
            if plan.pretty {
                println!("{}", plan.doc.pretty());
            } else {
                println!("{}", plan.doc);
            }
            // Failed jobs (unreadable/unparseable netlists) still print
            // their JSON error record, but the exit code must reflect
            // them so scripts and CI notice.
            if plan.any_failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn specs_and_options_interleave() {
        // Regression: `boole gen csa:4 --workers 2 booth:4` used to
        // reject `booth:4` as an unknown option because everything
        // after the first `--` token was fed to the option parser.
        let (opts, positional) =
            parse_args(&strings(&["csa:4", "--workers", "2", "booth:4"])).unwrap();
        assert_eq!(opts.workers, Some(2));
        assert_eq!(positional, strings(&["csa:4", "booth:4"]));

        let (opts, positional) = parse_args(&strings(&[
            "--compact",
            "wallace:3",
            "--cache-dir",
            "/tmp/c",
            "--no-timing",
        ]))
        .unwrap();
        assert!(!opts.pretty);
        assert!(!opts.timing);
        assert_eq!(
            opts.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/c"))
        );
        assert_eq!(positional, strings(&["wallace:3"]));
    }

    #[test]
    fn option_errors_are_targeted() {
        assert!(parse_args(&strings(&["--frobnicate"]))
            .err()
            .unwrap()
            .contains("unknown option"));
        assert!(parse_args(&strings(&["--workers"]))
            .err()
            .unwrap()
            .contains("needs a value"));
        assert!(parse_args(&strings(&["--workers", "x"]))
            .err()
            .unwrap()
            .contains("bad --workers"));
        assert!(parse_args(&strings(&["--serial", "--cache-dir", "/tmp/c"]))
            .err()
            .unwrap()
            .contains("--serial"));
        assert!(parse_args(&strings(&["--serial", "--workers", "2"]))
            .err()
            .unwrap()
            .contains("--serial"));
        assert!(
            parse_args(&strings(&["--no-cache", "--cache-dir", "/tmp/c"]))
                .err()
                .unwrap()
                .contains("--no-cache")
        );
    }

    #[test]
    fn collector_survives_symlink_cycles_and_does_not_double_count() {
        let dir = std::env::temp_dir().join(format!("boole-collect-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        let circuit = aig::gen::csa_multiplier(3);
        aig::write_netlist(dir.join("top.aag"), &circuit).unwrap();
        aig::write_netlist(dir.join("sub/nested.aag"), &circuit).unwrap();
        // A cycle back to the root and an alias of a sibling: pre-fix,
        // the first looped forever and the second double-counted
        // sub/nested.aag.
        std::os::unix::fs::symlink("..", dir.join("sub/loop")).unwrap();
        std::os::unix::fs::symlink(dir.join("sub"), dir.join("alias")).unwrap();
        let files = collect_netlist_files(&dir).unwrap();
        assert_eq!(
            files.len(),
            2,
            "each netlist must be listed exactly once: {files:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collector_reports_missing_directories() {
        let err = collect_netlist_files(std::path::Path::new("/nonexistent/never")).unwrap_err();
        assert!(err.contains("cannot resolve"), "got: {err}");
    }
}
