//! The `boole` CLI: batch symbolic reasoning with JSON output.
//!
//! ```text
//! boole run <netlist> [options]           one job from a netlist file
//!                                         (.aag, .aig, .blif, .v)
//! boole batch <dir> [options]             every supported netlist under
//!                                         <dir>, formats freely mixed
//! boole gen <spec> [<spec> ...] [options] generated benchmarks (csa:16,
//!                                         booth:8:mapped, wallace:4:dch)
//!
//! options (interleave freely with positional arguments):
//!   --workers N        worker threads (default: min(cpus, 4))
//!   --search-threads N threads for each job's in-saturation rule search
//!                      (default 1 = serial; 0 = one per CPU; results are
//!                      byte-identical at any value, works with --serial too)
//!   --search-backend B e-matching strategy: per-pattern | shared-trie
//!                      (default) | relational; results are byte-identical
//!                      across backends, only the timing differs
//!   --serial           run inline on one thread, bypassing the pool and cache
//!   --deadline-ms N    per-job deadline; expired jobs are cancelled
//!   --params P         default | small | lightweight
//!   --cache-dir DIR    persistent result cache; hits survive across runs
//!   --no-cache         skip the structural-hash result cache
//!   --max-retries N    retry budget for transient failures, with
//!                      exponential backoff (default 2)
//!   --shed             reject jobs (terminal "rejected" outcome) instead of
//!                      blocking when the queue is full
//!   --no-timing        omit wall-clock fields (canonical, reproducible JSON)
//!   --compact          one-line JSON instead of pretty-printed
//!   --events SINK      stream job/phase/cache events as NDJSON to `-`
//!                      (stdout; requires --compact) or a file, as jobs run
//!   --metrics SINK     write a final metrics snapshot (counters, gauges,
//!                      histograms) to `-` (requires --compact) or a file
//! ```

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use boole::json::{Json, ToJson};
use boole::telemetry::{Telemetry, TelemetrySink};
use boole::{BooleParams, SearchBackendKind};
use boole_service::{
    run_spec_serial_observed, GenSpec, JobOutcome, JobSpec, Service, ServiceConfig, ShedPolicy,
};

/// Where a telemetry stream or snapshot goes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TelemetrySinkArg {
    /// `-`: interleave with the result document on stdout.
    Stdout,
    /// A file path, created/truncated at startup.
    File(PathBuf),
}

impl TelemetrySinkArg {
    fn parse(value: &str) -> TelemetrySinkArg {
        if value == "-" {
            TelemetrySinkArg::Stdout
        } else {
            TelemetrySinkArg::File(PathBuf::from(value))
        }
    }
}

struct Options {
    workers: Option<usize>,
    search_threads: Option<usize>,
    search_backend: Option<SearchBackendKind>,
    serial: bool,
    deadline: Option<Duration>,
    params: BooleParams,
    cache_dir: Option<PathBuf>,
    use_cache: bool,
    timing: bool,
    pretty: bool,
    events: Option<TelemetrySinkArg>,
    metrics: Option<TelemetrySinkArg>,
    max_retries: Option<u32>,
    shed: bool,
}

/// Parses a command's arguments into options plus the positional
/// (non-`--`) arguments, which may be freely interleaved with options:
/// `boole gen csa:4 --workers 2 booth:4` sees specs `[csa:4, booth:4]`.
fn parse_args(args: &[String]) -> Result<(Options, Vec<String>), String> {
    let mut opts = Options {
        workers: None,
        search_threads: None,
        search_backend: None,
        serial: false,
        deadline: None,
        params: BooleParams::default(),
        cache_dir: None,
        use_cache: true,
        timing: true,
        pretty: true,
        events: None,
        metrics: None,
        max_retries: None,
        shed: false,
    };
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                let v = args.get(i + 1).ok_or("--workers needs a value")?;
                opts.workers = Some(v.parse().map_err(|e| format!("bad --workers: {e}"))?);
                i += 2;
            }
            "--search-threads" => {
                let v = args.get(i + 1).ok_or("--search-threads needs a value")?;
                opts.search_threads = Some(
                    v.parse()
                        .map_err(|e| format!("bad --search-threads: {e}"))?,
                );
                i += 2;
            }
            "--search-backend" => {
                let v = args.get(i + 1).ok_or("--search-backend needs a value")?;
                opts.search_backend = Some(
                    v.parse()
                        .map_err(|e| format!("bad --search-backend: {e}"))?,
                );
                i += 2;
            }
            "--deadline-ms" => {
                let v = args.get(i + 1).ok_or("--deadline-ms needs a value")?;
                let ms: u64 = v.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?;
                opts.deadline = Some(Duration::from_millis(ms));
                i += 2;
            }
            "--params" => {
                let v = args.get(i + 1).ok_or("--params needs a value")?;
                opts.params = match v.as_str() {
                    "default" => BooleParams::default(),
                    "small" => BooleParams::small(),
                    "lightweight" => BooleParams::lightweight(),
                    other => return Err(format!("unknown --params {other:?}")),
                };
                i += 2;
            }
            "--cache-dir" => {
                let v = args.get(i + 1).ok_or("--cache-dir needs a value")?;
                opts.cache_dir = Some(PathBuf::from(v));
                i += 2;
            }
            "--max-retries" => {
                let v = args.get(i + 1).ok_or("--max-retries needs a value")?;
                opts.max_retries = Some(v.parse().map_err(|e| format!("bad --max-retries: {e}"))?);
                i += 2;
            }
            "--shed" => {
                opts.shed = true;
                i += 1;
            }
            "--serial" => {
                opts.serial = true;
                i += 1;
            }
            "--no-cache" => {
                opts.use_cache = false;
                i += 1;
            }
            "--no-timing" => {
                opts.timing = false;
                i += 1;
            }
            "--compact" => {
                opts.pretty = false;
                i += 1;
            }
            "--events" => {
                let v = args
                    .get(i + 1)
                    .ok_or("--events needs a sink: - for stdout, or a file path")?;
                opts.events = Some(TelemetrySinkArg::parse(v));
                i += 2;
            }
            "--metrics" => {
                let v = args
                    .get(i + 1)
                    .ok_or("--metrics needs a sink: - for stdout, or a file path")?;
                opts.metrics = Some(TelemetrySinkArg::parse(v));
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}"));
            }
            _ => {
                positional.push(args[i].clone());
                i += 1;
            }
        }
    }
    if opts.serial && opts.cache_dir.is_some() {
        return Err("--serial bypasses the cache; drop it or --cache-dir".to_owned());
    }
    if opts.serial && opts.workers.is_some() {
        return Err("--serial runs one job at a time; drop it or --workers".to_owned());
    }
    if !opts.use_cache && opts.cache_dir.is_some() {
        return Err("--no-cache disables all cache tiers; drop it or --cache-dir".to_owned());
    }
    if opts.serial && opts.shed {
        return Err("--serial has no queue to shed from; drop it or --shed".to_owned());
    }
    if opts.serial && opts.max_retries.is_some() {
        return Err("--serial bypasses the retrying pool; drop it or --max-retries".to_owned());
    }
    // With a `-` sink, telemetry shares stdout with the result document;
    // requiring --compact keeps stdout line-oriented (every line is one
    // strict-parseable JSON value), so NDJSON consumers never see a
    // fragment of a pretty-printed document.
    if opts.events == Some(TelemetrySinkArg::Stdout) && opts.pretty {
        return Err("--events - streams NDJSON on stdout; add --compact so every stdout line is one JSON value".to_owned());
    }
    if opts.metrics == Some(TelemetrySinkArg::Stdout) && opts.pretty {
        return Err("--metrics - writes the snapshot to stdout; add --compact so every stdout line is one JSON value".to_owned());
    }
    Ok((opts, positional))
}

fn make_spec(source_spec: JobSpec, opts: &Options) -> JobSpec {
    // Service mode bounds runtime with per-job deadlines, not the
    // pipeline's wall-clock limit: wall-clock stops vary with machine
    // load, which would make results non-reproducible and cache-hostile.
    let mut params = opts.params.clone().without_time_limit();
    if let Some(threads) = opts.search_threads {
        // Per-spec, not via ServiceConfig, so --serial (which bypasses
        // the service) honors the flag identically.
        params = params.with_search_threads(threads);
    }
    if let Some(backend) = opts.search_backend {
        params = params.with_search_backend(backend);
    }
    let mut spec = source_spec.with_params(params);
    if let Some(deadline) = opts.deadline {
        spec = spec.with_deadline(deadline);
    }
    if !opts.use_cache {
        spec = spec.without_cache();
    }
    spec
}

/// Opens the writer behind a telemetry sink argument. `-` is stdout, so
/// event lines and the final result document share one stream.
fn open_sink(sink: &TelemetrySinkArg) -> Result<Box<dyn std::io::Write + Send>, String> {
    match sink {
        TelemetrySinkArg::Stdout => Ok(Box::new(std::io::stdout())),
        TelemetrySinkArg::File(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            Ok(Box::new(std::io::BufWriter::new(file)))
        }
    }
}

fn execute(specs: Vec<JobSpec>, opts: &Options) -> Result<(Json, bool), String> {
    let telemetry: Option<TelemetrySink> =
        (opts.events.is_some() || opts.metrics.is_some()).then(|| Arc::new(Telemetry::new()));

    // The streamer drains the bounded event bus while jobs run, so a
    // worker never blocks on a slow sink (under backpressure the bus
    // drops events and accounts for them with a `dropped` marker).
    // Closing the bus after the batch makes `wait` return an empty
    // batch, which stops the thread.
    let streamer = match (&opts.events, &telemetry) {
        (Some(sink), Some(telemetry)) => {
            let mut writer = open_sink(sink)?;
            let bus = Arc::clone(telemetry);
            Some(std::thread::spawn(move || loop {
                let events = bus.events.wait();
                if events.is_empty() {
                    break;
                }
                for event in events {
                    let _ = writeln!(writer, "{}", event.to_json());
                }
                let _ = writer.flush();
            }))
        }
        _ => None,
    };

    let (outcomes, stats): (Vec<std::sync::Arc<JobOutcome>>, Option<Json>) = if opts.serial {
        let outcomes = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| run_spec_serial_observed(spec, i as u64 + 1, telemetry.as_ref()))
            .collect();
        (outcomes, None)
    } else {
        let mut config = ServiceConfig::default();
        if let Some(workers) = opts.workers {
            config = config.with_workers(workers);
        }
        if let Some(dir) = &opts.cache_dir {
            config = config.with_cache_dir(dir);
        }
        if let Some(telemetry) = &telemetry {
            config = config.with_telemetry(Arc::clone(telemetry));
        }
        if let Some(retries) = opts.max_retries {
            config = config.with_max_retries(retries);
        }
        if opts.shed {
            config = config.with_shed_policy(ShedPolicy::Shed);
        }
        let service = Service::new(config);
        let outcomes = service.run_batch(specs);
        let stats = service.shutdown();
        (outcomes, Some(stats.to_json()))
    };

    if let Some(telemetry) = &telemetry {
        telemetry.events.close();
    }
    if let Some(handle) = streamer {
        let _ = handle.join();
    }
    if let (Some(sink), Some(telemetry)) = (&opts.metrics, &telemetry) {
        let mut writer = open_sink(sink)?;
        writeln!(writer, "{}", telemetry.metrics_snapshot())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot write the metrics snapshot: {e}"))?;
    }

    let any_failed = outcomes.iter().any(|o| {
        matches!(
            o.status(),
            boole_service::JobStatus::Failed
                | boole_service::JobStatus::Panicked
                | boole_service::JobStatus::Rejected
        )
    });
    let jobs = Json::arr(outcomes.iter().map(|outcome| {
        let mut doc = outcome.to_json();
        if opts.timing {
            if let Json::Obj(pairs) = &mut doc {
                pairs.push(("timing".to_owned(), outcome.timing_json()));
            }
        }
        doc
    }));
    let mut pairs = vec![("jobs".to_owned(), jobs)];
    if opts.timing {
        if let Some(stats) = stats {
            pairs.push(("service".to_owned(), stats));
        }
    }
    Ok((Json::Obj(pairs), any_failed))
}

fn usage() -> String {
    "usage: boole <run <netlist> | batch <dir> | gen <spec>...> [options]\n\
     netlists: .aag (ASCII AIGER), .aig (binary AIGER), .blif, .v (structural Verilog);\n\
     \x20         batch mixes formats freely\n\
     options: --workers N --search-threads N --serial --deadline-ms N\n\
     \x20        --search-backend per-pattern|shared-trie|relational\n\
     \x20        --params default|small|lightweight\n\
     \x20        --cache-dir DIR --no-cache --no-timing --compact\n\
     \x20        --max-retries N (transient-failure retry budget)\n\
     \x20        --shed (reject instead of block when the queue is full)\n\
     \x20        --events -|FILE (NDJSON event stream) --metrics -|FILE (final snapshot;\n\
     \x20        a - sink shares stdout with the result document and needs --compact)\n\
     \x20        (options and positional arguments may be interleaved)\n\
     gen specs: csa:N | booth:N | wallace:N, optional suffix :mapped or :dch"
        .to_owned()
}

/// Collects every supported netlist under `dir`, recursively: real
/// benchmark suites (e.g. the EPFL checkout) nest circuits in
/// subdirectories. The listing is sorted for reproducible job order.
///
/// Directories are deduplicated by canonical path, so a symlink cycle
/// (`sub/loop -> ..`) terminates and a symlink aliasing a directory
/// already in the tree does not double-count its circuits. Unreadable
/// directories and entries are hard errors, not silent omissions: a
/// batch that would skip netlists it was asked to process must fail
/// loudly instead of reporting a clean partial run.
fn collect_netlist_files(dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>, String> {
    let canonical = |path: &std::path::Path| {
        std::fs::canonicalize(path)
            .map_err(|e| format!("cannot resolve directory {}: {e}", path.display()))
    };
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    let mut visited = std::collections::HashSet::new();
    visited.insert(canonical(dir)?);
    let mut stack = vec![dir.to_path_buf()];
    while let Some(current) = stack.pop() {
        let entries = std::fs::read_dir(&current)
            .map_err(|e| format!("cannot read directory {}: {e}", current.display()))?;
        for entry in entries {
            let entry =
                entry.map_err(|e| format!("cannot read an entry of {}: {e}", current.display()))?;
            let path = entry.path();
            if path.is_dir() {
                if visited.insert(canonical(&path)?) {
                    stack.push(path);
                }
            } else if path
                .extension()
                .and_then(|ext| ext.to_str())
                .is_some_and(aig::netlist::is_supported_extension)
            {
                files.push(path);
            }
        }
    }
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no netlist files (.aag/.aig/.blif/.v) under {}",
            dir.display()
        ));
    }
    Ok(files)
}

struct RunPlan {
    doc: Json,
    pretty: bool,
    any_failed: bool,
}

fn run() -> Result<RunPlan, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = args.split_first().ok_or_else(usage)?;
    let (specs, opts) = match command.as_str() {
        "run" => {
            let (opts, positional) = parse_args(rest)?;
            let [file] = positional.as_slice() else {
                return Err(format!(
                    "run: expected exactly one <netlist file>, got {}",
                    positional.len()
                ));
            };
            (vec![make_spec(JobSpec::file(file), &opts)], opts)
        }
        "batch" => {
            let (opts, positional) = parse_args(rest)?;
            let [dir] = positional.as_slice() else {
                return Err(format!(
                    "batch: expected exactly one <dir>, got {}",
                    positional.len()
                ));
            };
            let specs = collect_netlist_files(std::path::Path::new(dir))?
                .into_iter()
                .map(|p| make_spec(JobSpec::file(p), &opts))
                .collect();
            (specs, opts)
        }
        "gen" => {
            let (opts, spec_args) = parse_args(rest)?;
            if spec_args.is_empty() {
                return Err("gen: missing at least one <family:bits[:prep]> spec".to_owned());
            }
            let specs = spec_args
                .iter()
                .map(|text| Ok(make_spec(JobSpec::generated(GenSpec::parse(text)?), &opts)))
                .collect::<Result<Vec<_>, String>>()?;
            (specs, opts)
        }
        "--help" | "-h" | "help" => return Err(usage()),
        other => return Err(format!("unknown command {other:?}\n{}", usage())),
    };
    let (doc, any_failed) = execute(specs, &opts)?;
    Ok(RunPlan {
        doc,
        pretty: opts.pretty,
        any_failed,
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(plan) => {
            if plan.pretty {
                println!("{}", plan.doc.pretty());
            } else {
                println!("{}", plan.doc);
            }
            // Failed jobs (unreadable/unparseable netlists) still print
            // their JSON error record, but the exit code must reflect
            // them so scripts and CI notice.
            if plan.any_failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn specs_and_options_interleave() {
        // Regression: `boole gen csa:4 --workers 2 booth:4` used to
        // reject `booth:4` as an unknown option because everything
        // after the first `--` token was fed to the option parser.
        let (opts, positional) =
            parse_args(&strings(&["csa:4", "--workers", "2", "booth:4"])).unwrap();
        assert_eq!(opts.workers, Some(2));
        assert_eq!(positional, strings(&["csa:4", "booth:4"]));

        let (opts, positional) = parse_args(&strings(&[
            "--compact",
            "wallace:3",
            "--cache-dir",
            "/tmp/c",
            "--no-timing",
        ]))
        .unwrap();
        assert!(!opts.pretty);
        assert!(!opts.timing);
        assert_eq!(
            opts.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/c"))
        );
        assert_eq!(positional, strings(&["wallace:3"]));
    }

    #[test]
    fn option_errors_are_targeted() {
        assert!(parse_args(&strings(&["--frobnicate"]))
            .err()
            .unwrap()
            .contains("unknown option"));
        assert!(parse_args(&strings(&["--workers"]))
            .err()
            .unwrap()
            .contains("needs a value"));
        assert!(parse_args(&strings(&["--workers", "x"]))
            .err()
            .unwrap()
            .contains("bad --workers"));
        assert!(parse_args(&strings(&["--serial", "--cache-dir", "/tmp/c"]))
            .err()
            .unwrap()
            .contains("--serial"));
        assert!(parse_args(&strings(&["--serial", "--workers", "2"]))
            .err()
            .unwrap()
            .contains("--serial"));
        assert!(
            parse_args(&strings(&["--no-cache", "--cache-dir", "/tmp/c"]))
                .err()
                .unwrap()
                .contains("--no-cache")
        );
    }

    #[test]
    fn search_threads_flag_parses_and_composes_with_serial() {
        let (opts, positional) = parse_args(&strings(&["csa:4", "--search-threads", "4"])).unwrap();
        assert_eq!(opts.search_threads, Some(4));
        assert_eq!(positional, strings(&["csa:4"]));

        // `0` is meaningful (one thread per CPU), not an error.
        let (opts, _) = parse_args(&strings(&["--search-threads", "0"])).unwrap();
        assert_eq!(opts.search_threads, Some(0));

        // --serial disables the job *scheduler*; in-saturation search
        // parallelism is orthogonal and stays available.
        let (opts, _) = parse_args(&strings(&["--serial", "--search-threads", "2"])).unwrap();
        assert!(opts.serial);
        assert_eq!(opts.search_threads, Some(2));

        assert!(parse_args(&strings(&["--search-threads"]))
            .err()
            .unwrap()
            .contains("needs a value"));
        assert!(parse_args(&strings(&["--search-threads", "x"]))
            .err()
            .unwrap()
            .contains("bad --search-threads"));
    }

    #[test]
    fn search_backend_flag_parses_all_names_and_aliases() {
        for (value, expected) in [
            ("per-pattern", SearchBackendKind::PerPatternVm),
            ("per-pattern-vm", SearchBackendKind::PerPatternVm),
            ("shared-trie", SearchBackendKind::SharedTrie),
            ("trie", SearchBackendKind::SharedTrie),
            ("relational", SearchBackendKind::Relational),
        ] {
            let (opts, positional) =
                parse_args(&strings(&["csa:4", "--search-backend", value])).unwrap();
            assert_eq!(opts.search_backend, Some(expected), "value {value}");
            assert_eq!(positional, strings(&["csa:4"]));
        }
        // Composes with the orthogonal search knobs and --serial.
        let (opts, _) = parse_args(&strings(&[
            "--serial",
            "--search-backend",
            "relational",
            "--search-threads",
            "2",
        ]))
        .unwrap();
        assert!(opts.serial);
        assert_eq!(opts.search_backend, Some(SearchBackendKind::Relational));
        assert_eq!(opts.search_threads, Some(2));

        assert!(parse_args(&strings(&["--search-backend"]))
            .err()
            .unwrap()
            .contains("needs a value"));
        let err = parse_args(&strings(&["--search-backend", "quantum"]))
            .err()
            .unwrap();
        assert!(err.contains("bad --search-backend"), "got: {err}");
        assert!(err.contains("quantum"), "got: {err}");
    }

    #[test]
    fn old_cli_invocations_parse_byte_identically() {
        // Deprecation pin: every pre-refactor invocation (no
        // --search-backend flag) must keep parsing exactly as before —
        // same options, same positionals, same default backend (the
        // shared trie, via SaturateParams' effective_backend).
        let (opts, positional) = parse_args(&strings(&[
            "csa:4",
            "--workers",
            "2",
            "--search-threads",
            "4",
            "booth:4",
        ]))
        .unwrap();
        assert_eq!(opts.workers, Some(2));
        assert_eq!(opts.search_threads, Some(4));
        assert_eq!(opts.search_backend, None);
        assert_eq!(positional, strings(&["csa:4", "booth:4"]));
        let spec = make_spec(JobSpec::generated(GenSpec::parse("csa:4").unwrap()), &opts);
        assert_eq!(
            spec.params.saturate.effective_backend(),
            SearchBackendKind::SharedTrie,
        );
        assert!(spec.params.saturate.shared_search);
    }

    #[test]
    fn robustness_flags_parse_and_conflict_with_serial() {
        let (opts, positional) =
            parse_args(&strings(&["csa:4", "--max-retries", "5", "--shed"])).unwrap();
        assert_eq!(opts.max_retries, Some(5));
        assert!(opts.shed);
        assert_eq!(positional, strings(&["csa:4"]));

        // `0` disables retries explicitly — meaningful, not an error.
        let (opts, _) = parse_args(&strings(&["--max-retries", "0"])).unwrap();
        assert_eq!(opts.max_retries, Some(0));

        assert!(parse_args(&strings(&["--max-retries"]))
            .err()
            .unwrap()
            .contains("needs a value"));
        assert!(parse_args(&strings(&["--max-retries", "x"]))
            .err()
            .unwrap()
            .contains("bad --max-retries"));
        // The serial path has no queue and no retrying pool.
        assert!(parse_args(&strings(&["--serial", "--shed"]))
            .err()
            .unwrap()
            .contains("--serial"));
        assert!(parse_args(&strings(&["--serial", "--max-retries", "1"]))
            .err()
            .unwrap()
            .contains("--serial"));
    }

    #[test]
    fn telemetry_flags_parse_and_interleave_with_positionals() {
        let (opts, positional) = parse_args(&strings(&[
            "csa:4",
            "--events",
            "/tmp/e.ndjson",
            "booth:4",
            "--metrics",
            "/tmp/m.json",
        ]))
        .unwrap();
        assert_eq!(
            opts.events,
            Some(TelemetrySinkArg::File(PathBuf::from("/tmp/e.ndjson")))
        );
        assert_eq!(
            opts.metrics,
            Some(TelemetrySinkArg::File(PathBuf::from("/tmp/m.json")))
        );
        assert_eq!(positional, strings(&["csa:4", "booth:4"]));

        // `-` sinks are fine once stdout is line-oriented.
        let (opts, _) =
            parse_args(&strings(&["--events", "-", "--metrics", "-", "--compact"])).unwrap();
        assert_eq!(opts.events, Some(TelemetrySinkArg::Stdout));
        assert_eq!(opts.metrics, Some(TelemetrySinkArg::Stdout));
    }

    #[test]
    fn telemetry_flag_errors_are_targeted() {
        assert!(parse_args(&strings(&["--events"]))
            .err()
            .unwrap()
            .contains("--events needs a sink"));
        assert!(parse_args(&strings(&["--metrics"]))
            .err()
            .unwrap()
            .contains("--metrics needs a sink"));
        // Streaming to stdout without --compact would interleave NDJSON
        // with a pretty-printed (multi-line) result document.
        let err = parse_args(&strings(&["--events", "-"])).err().unwrap();
        assert!(err.contains("--compact"), "got: {err}");
        let err = parse_args(&strings(&["--metrics", "-"])).err().unwrap();
        assert!(err.contains("--compact"), "got: {err}");
        // A file sink never touches stdout, so pretty output stays legal.
        assert!(parse_args(&strings(&["--events", "/tmp/e.ndjson"])).is_ok());
        assert!(parse_args(&strings(&["--metrics", "/tmp/m.json"])).is_ok());
        // Telemetry is orthogonal to scheduling: --serial must stream too.
        assert!(parse_args(&strings(&["--serial", "--events", "-", "--compact"])).is_ok());
    }

    #[test]
    fn collector_survives_symlink_cycles_and_does_not_double_count() {
        let dir = std::env::temp_dir().join(format!("boole-collect-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        let circuit = aig::gen::csa_multiplier(3);
        aig::write_netlist(dir.join("top.aag"), &circuit).unwrap();
        aig::write_netlist(dir.join("sub/nested.aag"), &circuit).unwrap();
        // A cycle back to the root and an alias of a sibling: pre-fix,
        // the first looped forever and the second double-counted
        // sub/nested.aag.
        std::os::unix::fs::symlink("..", dir.join("sub/loop")).unwrap();
        std::os::unix::fs::symlink(dir.join("sub"), dir.join("alias")).unwrap();
        let files = collect_netlist_files(&dir).unwrap();
        assert_eq!(
            files.len(),
            2,
            "each netlist must be listed exactly once: {files:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collector_reports_missing_directories() {
        let err = collect_netlist_files(std::path::Path::new("/nonexistent/never")).unwrap_err();
        assert!(err.contains("cannot resolve"), "got: {err}");
    }
}
