//! Structural fingerprints of netlists and parameters — the cache key.
//!
//! The fingerprint is a 128-bit topological hash over an [`Aig`]'s
//! gates and outputs. Each node's hash depends only on its *structure*
//! (input ordinal, or the unordered pair of child hashes for an AND),
//! never on its variable index, so two netlists that build the same
//! DAG in a different gate order — or with AND operands swapped —
//! collide, and a resubmitted/isomorphic netlist is answered from
//! cache without a saturation run. Input ordinals *are* hashed, so
//! relabeling which primary input feeds which cone changes the
//! fingerprint (a relabeled multiplier computes a different function
//! of its input vector).

use std::fmt;

use aig::{Aig, Lit, Node};
use boole::BooleParams;

/// A 128-bit structural netlist fingerprint (two independent 64-bit
/// lanes, so accidental collisions are ~2⁻¹²⁸).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub [u64; 2]);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// Parses the 32-hex-digit form [`Display`](fmt::Display) emits. The
/// persistent store round-trips keys through this to validate that a
/// record on disk really belongs to the key that hashed to its file
/// name, and it gives future shard routers a wire format for free.
impl std::str::FromStr for Fingerprint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("expected 32 hex digits, got {s:?}"));
        }
        let lane = |range: std::ops::Range<usize>| {
            u64::from_str_radix(&s[range], 16).expect("checked hex digits")
        };
        Ok(Fingerprint([lane(0..16), lane(16..32)]))
    }
}

/// The standard splitmix64 finalizer: a cheap full-avalanche mix.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Mixes `v` into accumulator `h` non-commutatively.
fn mix(h: u64, v: u64) -> u64 {
    splitmix(h ^ v.rotate_left(32) ^ 0xA5A5_5A5A_C3C3_3C3C)
}

const LANE_SEEDS: [u64; 2] = [0xB001_E000_0000_0001, 0xB001_E000_0000_0002];
const TAG_CONST: u64 = 0x11;
const TAG_INPUT: u64 = 0x22;
const TAG_AND: u64 = 0x33;
const TAG_OUT: u64 = 0x44;

/// Computes the structural fingerprint of a netlist.
///
/// Output *order* and polarity are part of the fingerprint; output
/// names are not (renaming a port does not change the function).
pub fn fingerprint_aig(aig: &Aig) -> Fingerprint {
    let mut lanes = [0u64; 2];
    for (lane, out) in lanes.iter_mut().enumerate() {
        let seed = LANE_SEEDS[lane];
        // h[var] = structural hash of that node, independent of `var`.
        let mut h: Vec<u64> = Vec::with_capacity(aig.num_nodes());
        for var_idx in 0..aig.num_nodes() {
            let node = aig.node(aig::Var(var_idx as u32));
            let nh = match node {
                Node::Const => splitmix(seed ^ TAG_CONST),
                Node::Input(ordinal) => mix(splitmix(seed ^ TAG_INPUT), u64::from(ordinal)),
                Node::And(a, b) => {
                    let child =
                        |l: Lit| mix(h[l.var().index()], u64::from(l.is_complemented()) + 7);
                    let (lo, hi) = {
                        let (ca, cb) = (child(a), child(b));
                        if ca <= cb {
                            (ca, cb)
                        } else {
                            (cb, ca)
                        }
                    };
                    mix(mix(splitmix(seed ^ TAG_AND), lo), hi)
                }
            };
            h.push(nh);
        }
        let mut acc = mix(splitmix(seed), aig.num_inputs() as u64);
        for (_, lit) in aig.outputs() {
            let oh = mix(
                mix(splitmix(seed ^ TAG_OUT), h[lit.var().index()]),
                u64::from(lit.is_complemented()) + 13,
            );
            acc = mix(acc, oh);
        }
        *out = acc;
    }
    Fingerprint(lanes)
}

/// Hashes the result-relevant fields of [`BooleParams`].
///
/// The cancellation token is deliberately excluded: two submissions of
/// the same netlist with the same tuning must share a cache entry even
/// though each job carries its own token. `search_threads` is excluded
/// for the same reason — saturation results are byte-identical at any
/// thread count (the parallel search merges match sets in rule-index
/// order before applying), so a result computed at 8 threads must
/// answer a later 1-thread submission from cache.
pub fn fingerprint_params(params: &BooleParams) -> u64 {
    let s = &params.saturate;
    let mut h = splitmix(0xB001_E9A2_A115_5EED);
    for v in [
        s.r1_iters as u64,
        s.r2_iters as u64,
        s.node_limit as u64,
        s.r1_growth.to_bits(),
        s.time_limit.as_nanos() as u64,
        u64::from(s.lightweight),
        s.match_limit as u64,
        u64::from(s.prune),
    ] {
        h = mix(h, v);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fa_chain(input_order: &[usize; 3]) -> Aig {
        let mut a = Aig::new();
        let ins = a.add_inputs(3);
        let (x, y, z) = (
            ins[input_order[0]],
            ins[input_order[1]],
            ins[input_order[2]],
        );
        let (s, c) = aig::gen::full_adder(&mut a, x, y, z);
        a.add_output("s", s);
        a.add_output("c", c);
        a
    }

    #[test]
    fn identical_netlists_collide() {
        let a = fa_chain(&[0, 1, 2]);
        let b = fa_chain(&[0, 1, 2]);
        assert_eq!(fingerprint_aig(&a), fingerprint_aig(&b));
    }

    #[test]
    fn gate_order_isomorphism_collides() {
        // Build the same two-output DAG creating the cones in opposite
        // orders, so variable numbering differs but structure matches.
        let build = |flip: bool| {
            let mut a = Aig::new();
            let ins = a.add_inputs(4);
            let cone1 = |a: &mut Aig| {
                let t = a.and(ins[0], ins[1]);
                a.xor(t, ins[2])
            };
            let cone2 = |a: &mut Aig| {
                let t = a.or(ins[2], ins[3]);
                a.and(t, ins[0])
            };
            let (o1, o2) = if flip {
                let second = cone2(&mut a);
                let first = cone1(&mut a);
                (first, second)
            } else {
                let first = cone1(&mut a);
                let second = cone2(&mut a);
                (first, second)
            };
            a.add_output("o1", o1);
            a.add_output("o2", o2);
            a
        };
        let straight = build(false);
        let flipped = build(true);
        // Sanity: gate numbering really differs between the two.
        assert_eq!(fingerprint_aig(&straight), fingerprint_aig(&flipped));
    }

    #[test]
    fn swapped_and_operands_collide() {
        let mut a = Aig::new();
        let ia = a.add_inputs(2);
        let g = a.and(ia[0], ia[1]);
        a.add_output("o", g);

        let mut b = Aig::new();
        let ib = b.add_inputs(2);
        let g = b.and(ib[1], ib[0]);
        b.add_output("o", g);

        assert_eq!(fingerprint_aig(&a), fingerprint_aig(&b));
    }

    #[test]
    fn relabeled_inputs_do_not_collide() {
        // Same shape, but a different input feeds the XOR leg.
        let a = fa_chain(&[0, 1, 2]);
        let b = fa_chain(&[2, 1, 0]);
        assert_ne!(fingerprint_aig(&a), fingerprint_aig(&b));
    }

    #[test]
    fn output_polarity_and_order_matter() {
        let mut a = Aig::new();
        let ins = a.add_inputs(2);
        let g = a.and(ins[0], ins[1]);
        a.add_output("o", g);
        let mut b = Aig::new();
        let ins = b.add_inputs(2);
        let g = b.and(ins[0], ins[1]);
        b.add_output("o", !g);
        assert_ne!(fingerprint_aig(&a), fingerprint_aig(&b));
    }

    #[test]
    fn output_names_are_ignored() {
        let mut a = Aig::new();
        let ins = a.add_inputs(2);
        let g = a.and(ins[0], ins[1]);
        a.add_output("foo", g);
        let mut b = Aig::new();
        let ins = b.add_inputs(2);
        let g = b.and(ins[0], ins[1]);
        b.add_output("bar", g);
        assert_eq!(fingerprint_aig(&a), fingerprint_aig(&b));
    }

    #[test]
    fn multiplier_fingerprints_are_distinct_by_width() {
        let f3 = fingerprint_aig(&aig::gen::csa_multiplier(3));
        let f4 = fingerprint_aig(&aig::gen::csa_multiplier(4));
        assert_ne!(f3, f4);
    }

    #[test]
    fn fingerprint_display_parses_back() {
        let fp = fingerprint_aig(&aig::gen::csa_multiplier(3));
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(text.parse::<Fingerprint>().unwrap(), fp);
        assert!("short".parse::<Fingerprint>().is_err());
        assert!("zz".repeat(16).parse::<Fingerprint>().is_err());
    }

    #[test]
    fn params_fingerprint_ignores_cancel_token() {
        let base = BooleParams::small();
        let mut with_token = BooleParams::small();
        with_token = with_token.with_cancel_token(boole::CancelToken::new());
        assert_eq!(fingerprint_params(&base), fingerprint_params(&with_token));
        let light = BooleParams::lightweight();
        assert_ne!(fingerprint_params(&base), fingerprint_params(&light));
    }

    #[test]
    fn params_fingerprint_ignores_search_threads() {
        // Same netlist, same tuning, different core counts: results
        // are byte-identical, so the cache key must match too.
        let base = BooleParams::small();
        for threads in [0, 2, 8] {
            let parallel = BooleParams::small().with_search_threads(threads);
            assert_eq!(fingerprint_params(&base), fingerprint_params(&parallel));
        }
    }
}
