//! The persistent (disk) tier of the result cache.
//!
//! [`DiskStore`] spills completed [`ResultSummary`]s to one JSON file
//! per [`CacheKey`] under a cache directory, so repeated CLI
//! invocations and service restarts keep their hits across process
//! lifetimes. The design goals, in order:
//!
//! 1. **Never corrupt a reader.** Writes go to a process-unique
//!    temporary file in the same directory and land via `rename`,
//!    which is atomic on POSIX filesystems — a concurrent reader sees
//!    either the old complete record or the new complete record,
//!    never a torn one.
//! 2. **Never trust a record.** Every read re-validates the format
//!    version, that the embedded key matches the requested key (a
//!    moved or hand-edited file is not silently served), and the full
//!    strict [`FromJson`] conversion. Any failure — unreadable file,
//!    truncated JSON, version drift, key mismatch — degrades to a
//!    cache miss; the store never panics on disk content.
//! 3. **Stay canonical.** The record embeds the summary's canonical
//!    document unchanged, so a summary served from disk re-serializes
//!    byte-identically to the run that produced it. The wall-clock
//!    `pipeline_runtime` (the cost signal for in-memory eviction)
//!    rides in the envelope, outside the canonical payload.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use boole::json::{expect_exact_fields, FromJson, Json, JsonError, ToJson};
use boole::telemetry::{EventKind, TelemetrySink};

use crate::cache::CacheKey;
use crate::faults::{self, site, FaultAction, FaultRegistry};
use crate::fingerprint::Fingerprint;
use crate::job::ResultSummary;

/// Version stamp embedded in every record. Bump on any change to the
/// record envelope or the canonical [`ResultSummary`] document; old
/// files then read as misses and are rewritten on the next run.
pub const STORE_FORMAT_VERSION: i64 = 1;

/// Counters describing disk-tier effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that found no usable record (absent, corrupt, stale
    /// version, or mismatched key).
    pub misses: u64,
    /// Records written.
    pub writes: u64,
    /// Failed write attempts (disk full, permissions, …).
    pub write_errors: u64,
}

/// A directory of persisted [`ResultSummary`] records, one JSON file
/// per cache key.
pub struct DiskStore {
    dir: PathBuf,
    tmp_counter: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
    /// Optional event sink notified of write failures (the visible
    /// warning on stderr is emitted regardless).
    telemetry: Option<TelemetrySink>,
    /// Optional fault-injection registry; the `disk.read`,
    /// `disk.write`, and `disk.rename` failpoints fire here.
    faults: Option<Arc<FaultRegistry>>,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<DiskStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStore {
            dir,
            tmp_counter: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            telemetry: None,
            faults: None,
        })
    }

    /// Attaches a telemetry sink that receives an event per failed
    /// write.
    pub fn with_telemetry(mut self, telemetry: Option<TelemetrySink>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a fault-injection registry (chaos testing only); see
    /// [`crate::faults`].
    pub fn with_faults(mut self, faults: Option<Arc<FaultRegistry>>) -> Self {
        self.faults = faults;
        self
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The record file for `key`: both fingerprints in hex, so the
    /// name is stable across processes and safe on any filesystem.
    fn record_path(&self, key: &CacheKey) -> PathBuf {
        self.dir
            .join(format!("{}-{:016x}.json", key.netlist, key.params))
    }

    /// Looks up `key`, counting a disk hit or miss. Every failure mode
    /// (absent, unreadable, unparseable, wrong version, wrong key) is
    /// a miss, never an error or panic.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<ResultSummary>> {
        let loaded = self.load(key);
        match &loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    fn load(&self, key: &CacheKey) -> Option<Arc<ResultSummary>> {
        match faults::check(self.faults.as_ref(), site::DISK_READ) {
            Some(FaultAction::Panic) => panic!("{}", FaultRegistry::injected(site::DISK_READ)),
            // An injected read failure degrades to a miss, exactly
            // like a real unreadable file.
            Some(_) => return None,
            None => {}
        }
        let text = std::fs::read_to_string(self.record_path(key)).ok()?;
        let summary = decode_record(&text, key).ok()?;
        Some(Arc::new(summary))
    }

    /// Writes the record bytes and publishes them under the key's
    /// file name, with the `disk.write` and `disk.rename` failpoints
    /// in line. An injected `corrupt` on `disk.write` lands a torn
    /// record that still *counts as a successful write* — the hostile
    /// case the read-side validation exists for.
    fn try_write(
        &self,
        key: &CacheKey,
        tmp: &Path,
        summary: &ResultSummary,
    ) -> std::io::Result<()> {
        let mut text = encode_record(key, summary).to_string();
        match faults::check(self.faults.as_ref(), site::DISK_WRITE) {
            Some(FaultAction::Panic) => panic!("{}", FaultRegistry::injected(site::DISK_WRITE)),
            Some(FaultAction::Error) => {
                return Err(std::io::Error::other(FaultRegistry::injected(
                    site::DISK_WRITE,
                )));
            }
            Some(FaultAction::Corrupt) => text.truncate(text.len() / 2),
            None => {}
        }
        std::fs::write(tmp, text)?;
        match faults::check(self.faults.as_ref(), site::DISK_RENAME) {
            Some(FaultAction::Panic) => panic!("{}", FaultRegistry::injected(site::DISK_RENAME)),
            Some(_) => {
                return Err(std::io::Error::other(FaultRegistry::injected(
                    site::DISK_RENAME,
                )));
            }
            None => {}
        }
        std::fs::rename(tmp, self.record_path(key))
    }

    /// Persists `summary` under `key` atomically (tmp file + rename).
    /// Errors are counted, not propagated: a failing disk tier must
    /// not fail jobs whose results it merely mirrors.
    pub fn put(&self, key: &CacheKey, summary: &ResultSummary) {
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let result = self.try_write(key, &tmp, summary);
        match result {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
            }
            Err(err) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(&tmp);
                let message = format!(
                    "persistent cache write failed for {}: {err}",
                    self.record_path(key).display()
                );
                eprintln!("warning: {message}");
                if let Some(telemetry) = &self.telemetry {
                    telemetry
                        .events
                        .publish(EventKind::DiskWriteError { message });
                    telemetry.metrics.counter("disk_write_errors").inc();
                }
            }
        }
    }

    /// A snapshot of the disk-tier counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }
}

/// Builds the on-disk record: a versioned envelope around the
/// summary's canonical document.
fn encode_record(key: &CacheKey, summary: &ResultSummary) -> Json {
    Json::obj([
        ("format_version", Json::Int(STORE_FORMAT_VERSION)),
        ("netlist", Json::str(key.netlist.to_string())),
        ("params", Json::str(format!("{:016x}", key.params))),
        (
            "pipeline_runtime_ns",
            Json::Int(i64::try_from(summary.pipeline_runtime.as_nanos()).unwrap_or(i64::MAX)),
        ),
        ("result", summary.to_json()),
    ])
}

/// Parses and fully validates a record against the key that was asked
/// for. Returns the summary with `pipeline_runtime` restored from the
/// envelope.
fn decode_record(text: &str, key: &CacheKey) -> Result<ResultSummary, JsonError> {
    let doc = Json::parse(text)?;
    let [version, netlist, params, runtime_ns, result] = expect_exact_fields(
        &doc,
        [
            "format_version",
            "netlist",
            "params",
            "pipeline_runtime_ns",
            "result",
        ],
    )?;
    if version.as_int() != Some(STORE_FORMAT_VERSION) {
        return Err(JsonError::new("stale store format version"));
    }
    let recorded: Fingerprint = netlist
        .as_str()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| JsonError::new("malformed netlist fingerprint"))?;
    let recorded_params = params
        .as_str()
        .filter(|s| s.len() == 16)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| JsonError::new("malformed params fingerprint"))?;
    if recorded != key.netlist || recorded_params != key.params {
        return Err(JsonError::new("record key does not match requested key"));
    }
    let runtime = runtime_ns
        .as_int()
        .and_then(|ns| u64::try_from(ns).ok())
        .ok_or_else(|| JsonError::new("malformed pipeline runtime"))?;
    let mut summary = ResultSummary::from_json(result)?;
    summary.pipeline_runtime = Duration::from_nanos(runtime);
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boole::{BoolE, BooleParams};

    fn sample_key() -> CacheKey {
        CacheKey {
            netlist: Fingerprint([0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210]),
            params: 0x00c0_ffee_0000_0042,
        }
    }

    fn sample_summary() -> ResultSummary {
        let aig = aig::gen::csa_multiplier(3);
        let result = BoolE::new(BooleParams::small()).run(&aig);
        ResultSummary::from(&result)
    }

    fn tmp_store(tag: &str) -> DiskStore {
        let dir = std::env::temp_dir().join(format!("boole-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        DiskStore::open(dir).unwrap()
    }

    #[test]
    fn put_then_get_round_trips_byte_identically() {
        let store = tmp_store("roundtrip");
        let key = sample_key();
        let summary = sample_summary();
        assert!(store.get(&key).is_none(), "empty store must miss");
        store.put(&key, &summary);
        let loaded = store.get(&key).expect("stored record must hit");
        assert_eq!(
            loaded.to_json().to_string(),
            summary.to_json().to_string(),
            "canonical JSON must survive the disk round trip unchanged"
        );
        assert_eq!(loaded.pipeline_runtime, summary.pipeline_runtime);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn reopened_store_keeps_its_records() {
        let store = tmp_store("reopen");
        let key = sample_key();
        store.put(&key, &sample_summary());
        let dir = store.dir().to_path_buf();
        drop(store);
        let reopened = DiskStore::open(&dir).unwrap();
        assert!(reopened.get(&key).is_some(), "record must survive reopen");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_records_degrade_to_misses() {
        let store = tmp_store("corrupt");
        let key = sample_key();
        let summary = sample_summary();
        store.put(&key, &summary);
        let path = store.record_path(&key);
        let pristine = std::fs::read_to_string(&path).unwrap();
        let corruptions: Vec<String> = vec![
            String::new(),                             // empty file
            "not json at all".to_owned(),              // unparseable
            pristine[..pristine.len() / 2].to_owned(), // truncated mid-write
            pristine.replace("\"format_version\":1", "\"format_version\":999"),
            pristine.replace("\"exact_fa_count\"", "\"exact_fa_cnt\""),
        ];
        for (i, corrupt) in corruptions.iter().enumerate() {
            std::fs::write(&path, corrupt).unwrap();
            assert!(
                store.get(&key).is_none(),
                "corruption {i} must read as a miss, not a hit or panic"
            );
        }
        // A rewrite heals the entry.
        store.put(&key, &summary);
        assert!(store.get(&key).is_some());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn records_are_not_served_under_a_different_key() {
        let store = tmp_store("mismatch");
        let key = sample_key();
        store.put(&key, &sample_summary());
        // Copy the record to a different key's file name, as if an
        // operator rsync'd or renamed cache files by hand.
        let other = CacheKey {
            netlist: Fingerprint([1, 2]),
            params: 3,
        };
        std::fs::copy(store.record_path(&key), store.record_path(&other)).unwrap();
        assert!(
            store.get(&other).is_none(),
            "embedded key must be validated against the requested key"
        );
        assert!(store.get(&key).is_some());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn write_failures_are_counted_not_fatal() {
        let telemetry = Arc::new(boole::Telemetry::new());
        let store = DiskStore {
            // A file path (not a directory) makes every write fail.
            dir: PathBuf::from("/dev/null/not-a-dir"),
            tmp_counter: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            telemetry: None,
            faults: None,
        }
        .with_telemetry(Some(Arc::clone(&telemetry)));
        store.put(&sample_key(), &sample_summary());
        assert_eq!(store.stats().write_errors, 1);
        assert_eq!(store.stats().writes, 0);
        // The failure is also a telemetry event, not only a counter.
        let events = telemetry.events.drain();
        assert!(
            events
                .iter()
                .any(|e| matches!(&e.kind, EventKind::DiskWriteError { message }
                    if message.contains("not-a-dir"))),
            "write failure must publish an event: {events:?}"
        );
        assert_eq!(telemetry.metrics.counter("disk_write_errors").get(), 1);
    }

    #[test]
    fn injected_write_error_takes_the_counted_failure_path() {
        use crate::faults::{FaultPolicy, Trigger};
        let faults = Arc::new(FaultRegistry::new());
        faults.configure(
            site::DISK_WRITE,
            FaultPolicy {
                trigger: Trigger::Nth(1),
                action: FaultAction::Error,
            },
        );
        let store = tmp_store("inject-err").with_faults(Some(Arc::clone(&faults)));
        let key = sample_key();
        let summary = sample_summary();
        store.put(&key, &summary); // injected failure
        assert_eq!(store.stats().write_errors, 1);
        assert!(store.get(&key).is_none());
        store.put(&key, &summary); // trigger exhausted: real write
        assert_eq!(store.stats().writes, 1);
        assert!(store.get(&key).is_some());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn injected_corruption_is_a_counted_write_that_reads_as_miss_then_heals() {
        use crate::faults::{FaultPolicy, Trigger};
        let faults = Arc::new(FaultRegistry::new());
        faults.configure(
            site::DISK_WRITE,
            FaultPolicy {
                trigger: Trigger::Nth(1),
                action: FaultAction::Corrupt,
            },
        );
        let store = tmp_store("inject-corrupt").with_faults(Some(Arc::clone(&faults)));
        let key = sample_key();
        let summary = sample_summary();
        store.put(&key, &summary);
        // The torn record was "successfully" written — the write
        // counter must not betray the corruption...
        assert_eq!(
            store.stats(),
            DiskStats {
                writes: 1,
                ..DiskStats::default()
            }
        );
        // ...and the read-side validation absorbs it as a miss.
        assert!(store.get(&key).is_none(), "torn record must read as a miss");
        // The next write heals the entry.
        store.put(&key, &summary);
        let healed = store.get(&key).expect("rewrite must heal the record");
        assert_eq!(healed.to_json().to_string(), summary.to_json().to_string());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn injected_read_and_rename_faults_degrade_cleanly() {
        use crate::faults::{FaultPolicy, Trigger};
        let faults = Arc::new(FaultRegistry::new());
        faults.configure(
            site::DISK_READ,
            FaultPolicy {
                trigger: Trigger::EveryKth(2),
                action: FaultAction::Error,
            },
        );
        faults.configure(
            site::DISK_RENAME,
            FaultPolicy {
                trigger: Trigger::Nth(1),
                action: FaultAction::Error,
            },
        );
        let store = tmp_store("inject-read").with_faults(Some(Arc::clone(&faults)));
        let key = sample_key();
        let summary = sample_summary();
        store.put(&key, &summary); // rename injected away
        assert_eq!(store.stats().write_errors, 1);
        // No stray temp files after a failed rename.
        let leftovers = std::fs::read_dir(store.dir())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .count();
        assert_eq!(leftovers, 0, "failed rename must clean its temp file");
        store.put(&key, &summary); // lands for real
        assert!(store.get(&key).is_some()); // read 1: clean
        assert!(store.get(&key).is_none(), "read 2 hits the every-2nd fault");
        assert!(store.get(&key).is_some()); // read 3: clean again
        std::fs::remove_dir_all(store.dir()).ok();
    }
}
