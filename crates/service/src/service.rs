//! The concurrent batch-reasoning engine: a std-only worker pool with a
//! bounded queue, per-job deadlines enforced by a watchdog thread, and
//! the two-tier (memory + disk) structural-hash result cache with
//! single-flight deduplication.

use std::collections::BinaryHeap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use boole::json::{Json, ToJson};
use boole::telemetry::{CacheTier, EventKind, TelemetrySink};
use boole::{BoolE, CancelToken, PhaseEvent, SearchBackendKind};
use egraph::hash::FxHashMap;

use crate::cache::{CacheKey, CacheStats, ResultCache};
use crate::faults::{self, site, FaultAction, FaultRegistry};
use crate::fingerprint::{fingerprint_aig, fingerprint_params};
use crate::job::{
    JobOutcome, JobSource, JobSpec, JobStatus, JobVerdict, RejectReason, ResultSummary,
};
use crate::store::{DiskStats, DiskStore};

/// What [`Service::submit`] does when the bounded queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Block the submitter until the queue has room (the original
    /// behavior; backpressure propagates to the caller).
    #[default]
    Block,
    /// Fail fast: the job resolves immediately with a terminal
    /// [`JobVerdict::Rejected`] outcome instead of blocking forever —
    /// the overload behavior a network tier needs.
    Shed,
    /// Wait up to the duration for room, then reject.
    Timeout(Duration),
}

/// Why [`Service::try_submit`] handed a spec back instead of queueing
/// it. Each variant carries the spec untouched so the caller can retry
/// (or not) without cloning up front.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue is full right now; retrying later can
    /// succeed.
    QueueFull(JobSpec),
    /// The worker channel is closed — the service is shutting down, so
    /// retrying can never succeed.
    ShuttingDown(JobSpec),
    /// The `queue.accept` failpoint fired (fault-injection runs only).
    Injected(JobSpec),
}

impl SubmitError {
    /// Recovers the spec for resubmission.
    pub fn into_spec(self) -> JobSpec {
        match self {
            SubmitError::QueueFull(spec)
            | SubmitError::ShuttingDown(spec)
            | SubmitError::Injected(spec) => spec,
        }
    }

    /// True when a later retry could succeed (the queue was merely
    /// full); false when the service is gone for good.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SubmitError::QueueFull(_) | SubmitError::Injected(_))
    }
}

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing pipelines (>= 1).
    pub num_workers: usize,
    /// Bounded queue depth; [`Service::submit`] blocks, and
    /// [`Service::try_submit`] fails fast, once this many jobs wait.
    pub queue_capacity: usize,
    /// In-memory result-cache capacity in entries. 0 disables the
    /// memory tier (every lookup falls through); the disk tier and
    /// single-flight deduplication still apply to cache-enabled jobs.
    pub cache_capacity: usize,
    /// Directory for the persistent (disk) cache tier; `None` keeps
    /// the cache memory-only. Results written here survive process
    /// restarts and are shared by every service pointed at the same
    /// directory.
    pub cache_dir: Option<PathBuf>,
    /// Optional telemetry hub: every lifecycle, phase, iteration, and
    /// cache transition publishes an event here, and the metrics
    /// registry tracks counters/gauges/histograms. `None` (the
    /// default) makes every telemetry site a no-op; attaching a sink
    /// never changes job results (telemetry is strictly out-of-band).
    pub telemetry: Option<TelemetrySink>,
    /// When set, every accepted job's saturation search fans out
    /// across this many threads (`0` = one per available CPU),
    /// overriding whatever the spec's params carry — an operator
    /// policy knob, like the worker count. `None` (the default)
    /// leaves each spec's own `SaturateParams.search_threads` alone.
    /// Results are byte-identical at any setting, so this never
    /// affects cache keys or reproducibility.
    pub search_threads: Option<usize>,
    /// When set, every accepted job's saturation search runs on this
    /// backend, overriding whatever the spec's params carry — the
    /// operator-policy companion to [`ServiceConfig::search_threads`].
    /// All backends produce byte-identical results, so this never
    /// affects cache keys or reproducibility. `None` (the default)
    /// leaves each spec's own `SaturateParams.search_backend` alone.
    pub search_backend: Option<SearchBackendKind>,
    /// Overload behavior of [`Service::submit`]; the default blocks.
    pub shed_policy: ShedPolicy,
    /// Retry budget for transiently-failing jobs (I/O errors loading a
    /// netlist, injected transient faults). `0` disables retries;
    /// permanent failures (parse errors, panics) never retry.
    pub max_retries: u32,
    /// Base delay of the exponential retry backoff. Attempt `n` waits
    /// `retry_base * 2^n` plus deterministic per-job jitter, capped at
    /// two seconds.
    pub retry_base: Duration,
    /// Fault-injection registry shared by every failpoint in this
    /// service (disk tiers, cache insertion, queue admission, worker
    /// pipelines). `None` — the default — compiles every failpoint
    /// down to one relaxed atomic load, leaving production behavior
    /// byte-identical.
    pub faults: Option<Arc<FaultRegistry>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let parallelism = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig {
            num_workers: parallelism.clamp(1, 4),
            queue_capacity: 64,
            cache_capacity: 256,
            cache_dir: None,
            telemetry: None,
            search_threads: None,
            search_backend: None,
            shed_policy: ShedPolicy::Block,
            max_retries: 2,
            retry_base: Duration::from_millis(25),
            faults: None,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.num_workers = n.max(1);
        self
    }

    /// Sets the bounded job-queue depth (the admission-control
    /// backlog a [`ShedPolicy`] guards).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Enables the persistent cache tier under `dir`.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Attaches a telemetry hub (event bus + metrics registry).
    pub fn with_telemetry(mut self, telemetry: TelemetrySink) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Fans every job's saturation search across `threads` threads
    /// (`0` = one per available CPU). See
    /// [`ServiceConfig::search_threads`].
    pub fn with_search_threads(mut self, threads: usize) -> Self {
        self.search_threads = Some(threads);
        self
    }

    /// Runs every job's saturation search on `backend`. See
    /// [`ServiceConfig::search_backend`].
    pub fn with_search_backend(mut self, backend: SearchBackendKind) -> Self {
        self.search_backend = Some(backend);
        self
    }

    /// Sets the overload behavior of [`Service::submit`].
    pub fn with_shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }

    /// Sets the retry budget for transiently-failing jobs.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the base delay of the exponential retry backoff.
    pub fn with_retry_base(mut self, base: Duration) -> Self {
        self.retry_base = base;
        self
    }

    /// Attaches a fault-injection registry (see [`crate::faults`]).
    pub fn with_faults(mut self, faults: Arc<FaultRegistry>) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Aggregate service counters (see also [`CacheStats`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Jobs accepted by `submit`/`try_submit`.
    pub submitted: u64,
    /// Jobs that completed with a result.
    pub completed: u64,
    /// Jobs that ended cancelled.
    pub cancelled: u64,
    /// Jobs that failed to produce a netlist.
    pub failed: u64,
    /// Jobs whose pipeline panicked (isolated; the worker survived).
    pub panicked: u64,
    /// Jobs rejected at admission (queue full under a shed/timeout
    /// policy, submit during shutdown, or an injected admission fault).
    pub shed: u64,
    /// Individual retry attempts across all jobs (a job retried twice
    /// contributes two).
    pub retried: u64,
    /// Pipelines actually executed (cache misses that ran saturation).
    pub pipelines_run: u64,
    /// Jobs answered by another job's in-flight pipeline (single-flight
    /// deduplication) instead of running their own.
    pub coalesced: u64,
    /// In-memory cache counters.
    pub cache: CacheStats,
    /// Disk-tier counters; `None` when no cache directory is
    /// configured.
    pub disk: Option<DiskStats>,
}

impl ToJson for ServiceStats {
    fn to_json(&self) -> Json {
        let mut cache = vec![
            ("hits".to_owned(), Json::Int(self.cache.hits as i64)),
            ("misses".to_owned(), Json::Int(self.cache.misses as i64)),
            (
                "insertions".to_owned(),
                Json::Int(self.cache.insertions as i64),
            ),
            (
                "evictions".to_owned(),
                Json::Int(self.cache.evictions as i64),
            ),
            ("entries".to_owned(), Json::from(self.cache.entries)),
        ];
        if let Some(disk) = &self.disk {
            cache.push(("disk_hits".to_owned(), Json::Int(disk.hits as i64)));
            cache.push(("disk_misses".to_owned(), Json::Int(disk.misses as i64)));
            cache.push(("disk_writes".to_owned(), Json::Int(disk.writes as i64)));
            cache.push((
                "disk_write_errors".to_owned(),
                Json::Int(disk.write_errors as i64),
            ));
        }
        Json::obj([
            ("submitted", Json::Int(self.submitted as i64)),
            ("completed", Json::Int(self.completed as i64)),
            ("cancelled", Json::Int(self.cancelled as i64)),
            ("failed", Json::Int(self.failed as i64)),
            ("panicked", Json::Int(self.panicked as i64)),
            ("shed", Json::Int(self.shed as i64)),
            ("retried", Json::Int(self.retried as i64)),
            ("pipelines_run", Json::Int(self.pipelines_run as i64)),
            ("coalesced", Json::Int(self.coalesced as i64)),
            ("cache", Json::Obj(cache)),
        ])
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    panicked: AtomicU64,
    shed: AtomicU64,
    retried: AtomicU64,
    pipelines_run: AtomicU64,
    coalesced: AtomicU64,
}

struct JobCell {
    status: JobStatus,
    outcome: Option<Arc<JobOutcome>>,
}

/// Locks a mutex, recovering from poisoning. The job cell, the flight
/// slot, and the flights table all hold plain state (enums, `Arc`s, a
/// map) that is valid after any partial update, and a panicking waiter
/// or pipeline must not turn every later `wait()` into a cascading
/// panic — one failed job may not take down the handles of every
/// other job parked on the same primitive.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Shared per-job record: the handle, the queue entry, and the
/// watchdog all point at one of these.
struct JobState {
    id: u64,
    label: String,
    cancel: CancelToken,
    cell: Mutex<JobCell>,
    done: Condvar,
    submitted_at: Instant,
    /// Retry attempts consumed so far; copied into the outcome.
    retries: AtomicU32,
}

impl JobState {
    fn is_terminal(&self) -> bool {
        lock_recover(&self.cell).status.is_terminal()
    }

    fn set_status(&self, status: JobStatus) {
        let mut cell = lock_recover(&self.cell);
        if !cell.status.is_terminal() {
            cell.status = status;
        }
    }

    fn finalize(&self, verdict: JobVerdict, from_cache: bool) -> Arc<JobOutcome> {
        let outcome = Arc::new(JobOutcome {
            job_id: self.id,
            label: self.label.clone(),
            verdict,
            from_cache,
            service_time: self.submitted_at.elapsed(),
            retries: self.retries.load(Ordering::Relaxed),
        });
        let mut cell = lock_recover(&self.cell);
        cell.status = outcome.status();
        cell.outcome = Some(Arc::clone(&outcome));
        self.done.notify_all();
        outcome
    }
}

/// A claim ticket for a submitted job.
pub struct JobHandle {
    state: Arc<JobState>,
}

impl JobHandle {
    /// Service-assigned id (submission order, starting at 1).
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// The spec's label.
    pub fn label(&self) -> &str {
        &self.state.label
    }

    /// Current lifecycle status.
    pub fn status(&self) -> JobStatus {
        lock_recover(&self.state.cell).status.clone()
    }

    /// Requests cooperative cancellation. Running pipelines stop at
    /// their next check point; queued jobs resolve as cancelled when a
    /// worker dequeues them.
    pub fn cancel(&self) {
        self.state.cancel.cancel();
    }

    /// Blocks until the job reaches a terminal state.
    pub fn wait(&self) -> Arc<JobOutcome> {
        let mut cell = lock_recover(&self.state.cell);
        loop {
            if let Some(outcome) = &cell.outcome {
                return Arc::clone(outcome);
            }
            cell = self
                .state
                .done
                .wait(cell)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`JobHandle::wait`] with a timeout; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Arc<JobOutcome>> {
        let deadline = Instant::now() + timeout;
        let mut cell = lock_recover(&self.state.cell);
        loop {
            if let Some(outcome) = &cell.outcome {
                return Some(Arc::clone(outcome));
            }
            let remaining = deadline.checked_duration_since(Instant::now())?;
            let (next, timed_out) = self
                .state
                .done
                .wait_timeout(cell, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            cell = next;
            if timed_out.timed_out() && cell.outcome.is_none() {
                return None;
            }
        }
    }
}

/// Min-heap entry for the deadline watchdog.
struct DeadlineEntry {
    due: Instant,
    job: Arc<JobState>,
}

impl PartialEq for DeadlineEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for DeadlineEntry {}
impl PartialOrd for DeadlineEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DeadlineEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due
        // time on top.
        other.due.cmp(&self.due)
    }
}

#[derive(Default)]
struct WatchdogQueue {
    heap: BinaryHeap<DeadlineEntry>,
    shutdown: bool,
}

/// The worker-shared end of the bounded job queue.
type JobQueue = Mutex<Receiver<(JobSpec, Arc<JobState>)>>;

/// One pipeline execution other jobs with the same [`CacheKey`] can
/// wait on instead of running their own (single-flight deduplication).
///
/// The slot distinguishes "still running" (`None`) from "leader
/// published" (`Some(Some(summary))`) and "leader gave up without a
/// result — cancelled, failed, or panicked" (`Some(None)`). Followers
/// observing the last case loop back to the cache-or-lead decision, so
/// a cancelled leader never strands the jobs queued behind it.
struct InFlight {
    slot: Mutex<Option<Option<Arc<ResultSummary>>>>,
    done: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, result: Option<Arc<ResultSummary>>) {
        *lock_recover(&self.slot) = Some(result);
        self.done.notify_all();
    }

    /// Blocks until the leader publishes, polling `cancel` so a
    /// follower with an expired deadline resolves as cancelled instead
    /// of waiting out a slow leader.
    fn wait(&self, cancel: &CancelToken) -> FlightWait {
        let mut slot = lock_recover(&self.slot);
        loop {
            if let Some(published) = slot.as_ref() {
                return match published {
                    Some(summary) => FlightWait::Ready(Arc::clone(summary)),
                    None => FlightWait::LeaderGone,
                };
            }
            if cancel.is_cancelled() {
                return FlightWait::Cancelled;
            }
            let (next, _) = self
                .done
                .wait_timeout(slot, Duration::from_millis(10))
                .unwrap_or_else(PoisonError::into_inner);
            slot = next;
        }
    }
}

enum FlightWait {
    Ready(Arc<ResultSummary>),
    LeaderGone,
    Cancelled,
}

/// Removes the leader's flight entry and publishes on every exit path.
/// The `Drop` arm is the panic/cancellation safety net: if the leader
/// never reaches [`FlightGuard::complete`], waiting followers are
/// released with "leader gone" rather than blocked forever.
struct FlightGuard<'a> {
    shared: &'a Shared,
    key: CacheKey,
    flight: Arc<InFlight>,
    completed: bool,
}

impl FlightGuard<'_> {
    fn complete(mut self, summary: Arc<ResultSummary>) {
        self.retire(Some(summary));
        self.completed = true;
    }

    fn retire(&self, result: Option<Arc<ResultSummary>>) {
        // Remove-then-publish: a job arriving after the removal misses
        // the flight and consults the cache, which the leader filled
        // before calling complete().
        lock_recover(&self.shared.flights).remove(&self.key);
        self.flight.publish(result);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.retire(None);
        }
    }
}

struct Shared {
    cache: ResultCache,
    /// Disk tier; `None` when no cache directory is configured.
    store: Option<DiskStore>,
    /// Keys with a pipeline currently executing, for single-flight
    /// deduplication of concurrent identical submissions.
    flights: Mutex<FxHashMap<CacheKey, Arc<InFlight>>>,
    counters: Counters,
    watchdog: Mutex<WatchdogQueue>,
    watchdog_wake: Condvar,
    /// Out-of-band event bus + metrics; `None` disables all telemetry.
    telemetry: Option<TelemetrySink>,
    /// Fault-injection registry; `None` disables every failpoint.
    faults: Option<Arc<FaultRegistry>>,
    /// Retry budget for transient failures (see [`ServiceConfig`]).
    max_retries: u32,
    /// Base delay of the exponential retry backoff.
    retry_base: Duration,
}

/// A concurrent batch-reasoning server over the BoolE pipeline.
///
/// ```
/// use boole_service::{GenSpec, JobSpec, Service, ServiceConfig};
///
/// let service = Service::new(ServiceConfig::default().with_workers(2));
/// let job = service.submit(JobSpec::generated(GenSpec::parse("csa:3").unwrap()));
/// let outcome = job.wait();
/// assert!(outcome.summary().unwrap().exact_fa_count >= 1);
/// service.shutdown();
/// ```
pub struct Service {
    shared: Arc<Shared>,
    sender: Option<SyncSender<(JobSpec, Arc<JobState>)>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    next_id: AtomicU64,
    search_threads: Option<usize>,
    search_backend: Option<SearchBackendKind>,
    shed_policy: ShedPolicy,
}

impl Service {
    /// Starts the worker pool and watchdog. If a configured cache
    /// directory cannot be created the disk tier is disabled with a
    /// warning — a broken cache disk must not take the service down.
    pub fn new(config: ServiceConfig) -> Self {
        let telemetry = config.telemetry.clone();
        let faults = config.faults.clone();
        let store = config.cache_dir.as_ref().and_then(|dir| {
            DiskStore::open(dir)
                .map_err(|err| {
                    eprintln!(
                        "warning: cannot open cache dir {}: {err}; persistent cache disabled",
                        dir.display()
                    );
                })
                .ok()
                .map(|store| {
                    store
                        .with_telemetry(telemetry.clone())
                        .with_faults(faults.clone())
                })
        });
        let shared = Arc::new(Shared {
            cache: ResultCache::new(config.cache_capacity)
                .with_telemetry(telemetry.clone())
                .with_faults(faults.clone()),
            store,
            flights: Mutex::new(FxHashMap::default()),
            counters: Counters::default(),
            watchdog: Mutex::new(WatchdogQueue::default()),
            watchdog_wake: Condvar::new(),
            telemetry,
            faults,
            max_retries: config.max_retries,
            retry_base: config.retry_base,
        });
        let (sender, receiver) = mpsc::sync_channel(config.queue_capacity.max(1));
        let receiver: Arc<JobQueue> = Arc::new(Mutex::new(receiver));
        let workers = (0..config.num_workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("boole-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &shared))
                    .expect("spawn worker")
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("boole-watchdog".to_owned())
                .spawn(move || watchdog_loop(&shared))
                .expect("spawn watchdog")
        };
        Service {
            shared,
            sender: Some(sender),
            workers,
            watchdog: Some(watchdog),
            next_id: AtomicU64::new(1),
            search_threads: config.search_threads,
            search_backend: config.search_backend,
            shed_policy: config.shed_policy,
        }
    }

    /// Builds the job record and installs the per-job token in the
    /// spec's params (replacing any token the caller left there),
    /// plus the service-wide search-thread override, if configured.
    fn make_state(&self, spec: &mut JobSpec) -> Arc<JobState> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        spec.params = std::mem::take(&mut spec.params).with_cancel_token(cancel.clone());
        if let Some(threads) = self.search_threads {
            spec.params.saturate.search_threads = threads;
        }
        if let Some(backend) = self.search_backend {
            spec.params.saturate =
                std::mem::take(&mut spec.params.saturate).with_search_backend(backend);
        }
        Arc::new(JobState {
            id,
            label: spec.label.clone(),
            cancel,
            cell: Mutex::new(JobCell {
                status: JobStatus::Queued,
                outcome: None,
            }),
            done: Condvar::new(),
            submitted_at: Instant::now(),
            retries: AtomicU32::new(0),
        })
    }

    /// Accounts an accepted job: deadline registration + counters +
    /// the `job_submitted` event.
    fn register(&self, deadline: Option<Duration>, state: &Arc<JobState>) {
        if let Some(deadline) = deadline {
            // Poison recovery: the heap is valid after any partial
            // update, and a panicked deadline holder must not make
            // every later submit panic too.
            let mut queue = lock_recover(&self.shared.watchdog);
            queue.heap.push(DeadlineEntry {
                due: state.submitted_at + deadline,
                job: Arc::clone(state),
            });
            self.shared.watchdog_wake.notify_one();
        }
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        if let Some(telemetry) = &self.shared.telemetry {
            telemetry.events.publish(EventKind::JobSubmitted {
                job: state.id,
                label: state.label.clone(),
            });
            telemetry.metrics.counter("jobs_submitted").inc();
            telemetry.metrics.gauge("queue_depth").add(1);
        }
    }

    /// Submits a job. Queue-full behavior follows the configured
    /// [`ShedPolicy`]: block (the default), reject immediately, or
    /// reject after a bounded wait. Rejected jobs — including submits
    /// racing a shutdown — come back with a handle that is *already*
    /// terminal ([`JobVerdict::Rejected`]); the caller never observes
    /// a hang or a panic.
    pub fn submit(&self, spec: JobSpec) -> JobHandle {
        self.submit_with_policy(spec, self.shed_policy)
    }

    /// Submits a job, waiting at most `timeout` for queue room before
    /// rejecting with [`RejectReason::Timeout`] — a per-call override
    /// of the configured shed policy.
    pub fn submit_timeout(&self, spec: JobSpec, timeout: Duration) -> JobHandle {
        self.submit_with_policy(spec, ShedPolicy::Timeout(timeout))
    }

    fn submit_with_policy(&self, mut spec: JobSpec, policy: ShedPolicy) -> JobHandle {
        let state = self.make_state(&mut spec);
        let deadline = spec.deadline;
        match faults::check(self.shared.faults.as_ref(), site::QUEUE_ACCEPT) {
            Some(FaultAction::Panic) => {
                panic!("{}", FaultRegistry::injected(site::QUEUE_ACCEPT));
            }
            Some(FaultAction::Error | FaultAction::Corrupt) => {
                return self.reject(&state, RejectReason::Injected);
            }
            None => {}
        }
        let sender = self.sender.as_ref().expect("service alive");
        match policy {
            ShedPolicy::Block => {
                if sender.send((spec, Arc::clone(&state))).is_err() {
                    // Workers gone: racing a shutdown. Resolve the job
                    // terminally instead of panicking the submitter.
                    return self.reject(&state, RejectReason::ShuttingDown);
                }
            }
            ShedPolicy::Shed => match sender.try_send((spec, Arc::clone(&state))) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    return self.reject(&state, RejectReason::QueueFull);
                }
                Err(TrySendError::Disconnected(_)) => {
                    return self.reject(&state, RejectReason::ShuttingDown);
                }
            },
            ShedPolicy::Timeout(timeout) => {
                // std's SyncSender has no send_timeout, so poll
                // try_send until the deadline. The 500us pause bounds
                // the busy-wait without adding meaningful latency at
                // job-queue timescales.
                let give_up_at = Instant::now() + timeout;
                let mut pending = (spec, Arc::clone(&state));
                loop {
                    match sender.try_send(pending) {
                        Ok(()) => break,
                        Err(TrySendError::Full(back)) => {
                            if Instant::now() >= give_up_at {
                                return self.reject(&state, RejectReason::Timeout);
                            }
                            pending = back;
                            std::thread::sleep(Duration::from_micros(500));
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            return self.reject(&state, RejectReason::ShuttingDown);
                        }
                    }
                }
            }
        }
        self.register(deadline, &state);
        JobHandle { state }
    }

    /// Resolves a job as terminally rejected without queueing it.
    /// Rejected jobs still count as submitted (so the accounting
    /// invariant `submitted == terminal outcomes` holds) and emit the
    /// usual submitted/done event pair, but never touch the deadline
    /// heap or the queue-depth gauge.
    fn reject(&self, state: &Arc<JobState>, reason: RejectReason) -> JobHandle {
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        let outcome = state.finalize(JobVerdict::Rejected { reason }, false);
        if let Some(telemetry) = &self.shared.telemetry {
            telemetry.events.publish(EventKind::JobSubmitted {
                job: state.id,
                label: state.label.clone(),
            });
            telemetry.metrics.counter("jobs_submitted").inc();
            publish_job_done(telemetry, &outcome);
        }
        JobHandle {
            state: Arc::clone(state),
        }
    }

    /// Submits a job unless the queue is full (non-blocking); the
    /// error distinguishes a transient full queue (retry later) from a
    /// shutdown in progress (give up), and hands the spec back
    /// untouched either way.
    // The Err payload deliberately carries the (large,
    // netlist-carrying) spec itself so callers can retry without
    // cloning up front.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, mut spec: JobSpec) -> Result<JobHandle, SubmitError> {
        let state = self.make_state(&mut spec);
        let deadline = spec.deadline;
        match faults::check(self.shared.faults.as_ref(), site::QUEUE_ACCEPT) {
            Some(FaultAction::Panic) => {
                panic!("{}", FaultRegistry::injected(site::QUEUE_ACCEPT));
            }
            Some(FaultAction::Error | FaultAction::Corrupt) => {
                return Err(SubmitError::Injected(spec));
            }
            None => {}
        }
        match self
            .sender
            .as_ref()
            .expect("service alive")
            .try_send((spec, Arc::clone(&state)))
        {
            Ok(()) => {
                self.register(deadline, &state);
                Ok(JobHandle { state })
            }
            Err(TrySendError::Full((spec, _))) => Err(SubmitError::QueueFull(spec)),
            Err(TrySendError::Disconnected((spec, _))) => Err(SubmitError::ShuttingDown(spec)),
        }
    }

    /// Submits every spec (blocking as needed), then waits for all, in
    /// order.
    pub fn run_batch(&self, specs: impl IntoIterator<Item = JobSpec>) -> Vec<Arc<JobOutcome>> {
        let handles: Vec<JobHandle> = specs.into_iter().map(|s| self.submit(s)).collect();
        handles.iter().map(JobHandle::wait).collect()
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.shared.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            panicked: c.panicked.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            retried: c.retried.load(Ordering::Relaxed),
            pipelines_run: c.pipelines_run.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            cache: self.shared.cache.stats(),
            disk: self.shared.store.as_ref().map(DiskStore::stats),
        }
    }

    /// Drains the queue, stops all threads, and returns final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        // Closing the channel lets each worker finish its current job
        // and exit on the next recv.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        {
            // Recover rather than panic: shutdown must complete even
            // if some deadline holder poisoned the watchdog lock.
            let mut queue = lock_recover(&self.shared.watchdog);
            queue.shutdown = true;
            self.shared.watchdog_wake.notify_all();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        if self.sender.is_some() || !self.workers.is_empty() {
            self.stop();
        }
    }
}

fn watchdog_loop(shared: &Shared) {
    // Poison recovery throughout: the queue (a heap of Arcs plus a
    // flag) is valid after any partial update, and the watchdog is a
    // singleton — if it dies, no deadline ever fires again. It must
    // survive anything the other threads do to this lock.
    let mut queue = lock_recover(&shared.watchdog);
    loop {
        if queue.shutdown {
            return;
        }
        let now = Instant::now();
        while queue.heap.peek().is_some_and(|e| e.due <= now) {
            let entry = queue.heap.pop().expect("peeked");
            if !entry.job.is_terminal() {
                entry.job.cancel.cancel();
            }
        }
        // Entries whose jobs already finished are dead weight until
        // their deadline; purge them so a long-deadline service does
        // not accumulate completed jobs' states.
        queue.heap.retain(|e| !e.job.is_terminal());
        match queue.heap.peek().map(|e| e.due) {
            Some(due) => {
                let wait = due.saturating_duration_since(Instant::now());
                let (next, _) = shared
                    .watchdog_wake
                    .wait_timeout(queue, wait)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = next;
            }
            None => {
                queue = shared
                    .watchdog_wake
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

fn worker_loop(receiver: &JobQueue, shared: &Shared) {
    loop {
        // Scope the receiver lock to the dequeue. Waiting workers do
        // block each other on `recv`, but the queue is the intended
        // serialization point; the job itself runs unlocked.
        let next = {
            // Recover from poisoning: a Receiver is just a channel
            // endpoint (no invariant a panic can break), and one
            // worker dying mid-recv must not idle the rest of the
            // pool.
            let receiver = receiver.lock().unwrap_or_else(PoisonError::into_inner);
            receiver.recv()
        };
        let Ok((spec, state)) = next else {
            return; // channel closed: shutdown
        };
        if let Some(telemetry) = &shared.telemetry {
            telemetry
                .events
                .publish(EventKind::JobStarted { job: state.id });
            telemetry.metrics.gauge("queue_depth").add(-1);
            telemetry.metrics.gauge("in_flight_jobs").add(1);
        }
        // A panicking job must not strand the JobHandle: convert the
        // panic into a terminal Panicked outcome so wait() always
        // returns and this worker survives to take the next job.
        // (execute_job catches pipeline panics itself; this outer
        // catch is the last-resort net for panics in the cache/flight
        // bookkeeping around it.)
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(&spec, &state, Some(shared), shared.telemetry.as_ref())
        }));
        let outcome = run.unwrap_or_else(|payload| {
            state.finalize(
                JobVerdict::Panicked {
                    message: panic_message(payload.as_ref()),
                },
                false,
            )
        });
        debug_assert!(outcome.status().is_terminal());
        match &outcome.verdict {
            JobVerdict::Completed(_) => &shared.counters.completed,
            JobVerdict::Cancelled { .. } => &shared.counters.cancelled,
            JobVerdict::Failed(_) => &shared.counters.failed,
            JobVerdict::Panicked { .. } => &shared.counters.panicked,
            // Rejection happens at admission, before a job can reach a
            // worker; counted in `reject`, unreachable here.
            JobVerdict::Rejected { .. } => &shared.counters.shed,
        }
        .fetch_add(1, Ordering::Relaxed);
        // The terminal event is published from the outcome (not inside
        // `execute_job`), so even a panicking pipeline emits one.
        if let Some(telemetry) = &shared.telemetry {
            publish_job_done(telemetry, &outcome);
            telemetry.metrics.gauge("in_flight_jobs").add(-1);
        }
    }
}

/// Publishes a job's terminal event and outcome metrics. Shared by the
/// pooled and serial paths, so both emit the same stream shape.
fn publish_job_done(telemetry: &TelemetrySink, outcome: &JobOutcome) {
    telemetry.events.publish(EventKind::JobDone {
        job: outcome.job_id,
        status: outcome.status().name().to_owned(),
        from_cache: outcome.from_cache,
    });
    let counter = match outcome.status() {
        JobStatus::Completed => "jobs_completed",
        JobStatus::Cancelled => "jobs_cancelled",
        JobStatus::Panicked => "jobs_panicked",
        JobStatus::Rejected => "jobs_shed",
        _ => "jobs_failed",
    };
    telemetry.metrics.counter(counter).inc();
    telemetry
        .metrics
        .histogram("job_ms")
        .observe(outcome.service_time);
}

/// Best-effort text from a panic payload (`&str` and `String` cover
/// `panic!`; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "pipeline panicked".to_owned())
}

/// Whether a failure is worth retrying (`Transient`) or will fail the
/// same way every time (`Permanent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorClass {
    /// Environmental: a retry may succeed (I/O errors, injected
    /// transient faults).
    Transient,
    /// Deterministic: retrying burns the budget for nothing (parse
    /// errors, malformed netlists).
    Permanent,
}

/// Resolves a job source into a netlist, classifying failures so the
/// retry loop only spends its budget where a retry can help.
fn load_netlist(source: &JobSource) -> Result<aig::Aig, (String, ErrorClass)> {
    match source {
        JobSource::Netlist(aig) => Ok(aig.clone()),
        JobSource::AagText(text) => aig::aiger::from_aag(text)
            .map_err(|e| (format!("parse error: {e:?}"), ErrorClass::Permanent)),
        JobSource::File(path) => aig::read_netlist(path).map_err(|e| {
            // Only the OS-level read is environmental; a file that
            // *parses* wrong will parse wrong again.
            let class = match e.kind {
                aig::netlist::NetlistErrorKind::Io => ErrorClass::Transient,
                _ => ErrorClass::Permanent,
            };
            (format!("cannot load {}: {e}", path.display()), class)
        }),
        JobSource::Generate(spec) => Ok(spec.build()),
    }
}

/// A worker's role for one cache key, decided under the flights lock:
/// either it runs the pipeline (and owns the flight entry via the
/// guard), or it waits on whoever does.
enum FlightRole<'a> {
    Leader(FlightGuard<'a>),
    Follower(Arc<InFlight>),
}

fn join_or_lead<'a>(shared: &'a Shared, key: CacheKey) -> FlightRole<'a> {
    let mut flights = lock_recover(&shared.flights);
    match flights.get(&key) {
        Some(flight) => FlightRole::Follower(Arc::clone(flight)),
        None => {
            let flight = Arc::new(InFlight::new());
            flights.insert(key, Arc::clone(&flight));
            FlightRole::Leader(FlightGuard {
                shared,
                key,
                flight,
                completed: false,
            })
        }
    }
}

/// Runs one job to a terminal outcome. With `shared`, the two-tier
/// result cache is consulted/populated, concurrent identical
/// submissions are deduplicated to one pipeline run, and pipeline
/// counters are maintained; without it (the standalone serial path)
/// the pipeline always runs.
fn execute_job(
    spec: &JobSpec,
    state: &Arc<JobState>,
    shared: Option<&Shared>,
    telemetry: Option<&TelemetrySink>,
) -> Arc<JobOutcome> {
    if state.cancel.is_cancelled() {
        return state.finalize(JobVerdict::Cancelled { phase: None }, false);
    }
    state.set_status(JobStatus::Running(None));
    let max_retries = shared.map_or(0, |s| s.max_retries);
    let retry_base = shared.map_or(Duration::from_millis(25), |s| s.retry_base);
    // Loading happens before fingerprinting, so a flaky read retries
    // here rather than surfacing as a spurious cache miss.
    let netlist = {
        let mut attempt = 0u32;
        loop {
            match load_netlist(&spec.source) {
                Ok(netlist) => break netlist,
                Err((err, class)) => {
                    if class == ErrorClass::Permanent || attempt >= max_retries {
                        return state.finalize(JobVerdict::Failed(err), false);
                    }
                    if !note_retry(state, shared, telemetry, attempt, retry_base) {
                        return state.finalize(JobVerdict::Cancelled { phase: None }, false);
                    }
                    attempt += 1;
                }
            }
        }
    };
    let cache_key = CacheKey {
        netlist: fingerprint_aig(&netlist),
        params: fingerprint_params(&spec.params),
    };
    // The cached path. Key ordering invariant: cache lookups happen
    // only while *holding* the key's flight entry, and a completing
    // leader fills both cache tiers before retiring its entry — so a
    // job that acquires leadership after a previous leader finished is
    // guaranteed to see that leader's result in the cache. This is
    // what makes "N concurrent identical submissions run saturation
    // exactly once" airtight rather than probabilistic: without it, a
    // job could miss the cache, find the flight table empty, and
    // re-run a pipeline that completed in between.
    //
    // The loop re-enters when a leader gives up without publishing
    // (cancelled/failed/panicked) — some waiting job then becomes the
    // new leader, so one doomed leader never strands the rest.
    let guard = if let Some(shared) = shared.filter(|_| spec.use_cache) {
        loop {
            if state.cancel.is_cancelled() {
                return state.finalize(JobVerdict::Cancelled { phase: None }, false);
            }
            match join_or_lead(shared, cache_key) {
                FlightRole::Leader(guard) => {
                    let looked_up = shared.cache.get(&cache_key);
                    publish_cache_lookup(
                        telemetry,
                        state.id,
                        CacheTier::Memory,
                        looked_up.is_some(),
                    );
                    if let Some(summary) = looked_up {
                        // Guard drop retires the (useless) flight.
                        return state.finalize(JobVerdict::Completed(summary), true);
                    }
                    if let Some(store) = &shared.store {
                        let looked_up = store.get(&cache_key);
                        publish_cache_lookup(
                            telemetry,
                            state.id,
                            CacheTier::Disk,
                            looked_up.is_some(),
                        );
                        if let Some(summary) = looked_up {
                            // Promote to the memory tier so the next
                            // hit skips the disk read and JSON parse.
                            shared.cache.insert(cache_key, Arc::clone(&summary));
                            return state.finalize(JobVerdict::Completed(summary), true);
                        }
                    }
                    break Some(guard);
                }
                FlightRole::Follower(flight) => match flight.wait(&state.cancel) {
                    FlightWait::Ready(summary) => {
                        shared.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                        return state.finalize(JobVerdict::Completed(summary), true);
                    }
                    FlightWait::Cancelled => {
                        return state.finalize(JobVerdict::Cancelled { phase: None }, false);
                    }
                    FlightWait::LeaderGone => continue,
                },
            }
        }
    } else {
        None
    };
    if let Some(shared) = shared {
        shared
            .counters
            .pipelines_run
            .fetch_add(1, Ordering::Relaxed);
    }
    if let Some(telemetry) = telemetry {
        // Resolved thread count of the pipeline about to run (0 means
        // one per CPU), so dashboards can correlate search_ms drops
        // with the parallelism actually in effect.
        let threads = match spec.params.saturate.search_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        telemetry
            .metrics
            .gauge("search_threads")
            .set(threads as i64);
    }
    let progress = Arc::clone(state);
    let phase_sink = telemetry.cloned();
    let job_id = state.id;
    let engine = BoolE::new(spec.params.clone()).with_phase_callback(Arc::new(move |event| {
        if let PhaseEvent::Started(phase) = event {
            progress.set_status(JobStatus::Running(Some(*phase)));
        }
        let Some(telemetry) = &phase_sink else { return };
        match event {
            PhaseEvent::Started(phase) => {
                telemetry.events.publish(EventKind::PhaseStarted {
                    job: job_id,
                    phase: phase.name(),
                });
            }
            PhaseEvent::Finished { phase, elapsed } => {
                telemetry.events.publish(EventKind::PhaseFinished {
                    job: job_id,
                    phase: phase.name(),
                    elapsed: *elapsed,
                });
                telemetry
                    .metrics
                    .histogram(&format!("phase_{}_ms", phase.name()))
                    .observe(*elapsed);
            }
            PhaseEvent::Iteration {
                ruleset,
                index,
                nodes,
                classes,
                matches,
                relation_build,
            } => {
                telemetry.events.publish(EventKind::Iteration {
                    job: job_id,
                    ruleset,
                    index: *index,
                    nodes: *nodes,
                    classes: *classes,
                    matches: *matches,
                    relation_build: *relation_build,
                });
                telemetry.metrics.gauge("egraph_nodes").set(*nodes as i64);
                telemetry
                    .metrics
                    .gauge("egraph_classes")
                    .set(*classes as i64);
            }
        }
    }));
    let faults_ref = shared.and_then(|s| s.faults.as_ref());
    // The attempt loop. Retries run under the same flight leadership
    // (the guard stays held), so followers keep waiting through a
    // retry instead of racing to run the pipeline themselves; a
    // *panic* is terminal and returns, dropping the guard, which
    // releases followers to elect a new leader.
    let mut attempt = 0u32;
    let result = loop {
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // One failpoint consultation per attempt, inside the
            // isolation boundary: Panic exercises the catch_unwind
            // exactly where a real pipeline bug would fire;
            // Error/Corrupt model a transiently-failing pipeline and
            // feed the retry path.
            match faults::check(faults_ref, site::WORKER_PIPELINE) {
                Some(FaultAction::Panic) => {
                    panic!("{}", FaultRegistry::injected(site::WORKER_PIPELINE))
                }
                Some(FaultAction::Error | FaultAction::Corrupt) => {
                    return Err(FaultRegistry::injected(site::WORKER_PIPELINE).to_string());
                }
                None => {}
            }
            Ok(engine.try_run(&netlist))
        }));
        match run {
            Err(payload) => {
                // Terminal: a deterministic bug would panic again, so
                // no retry. The guard (if leading) drops on return.
                return state.finalize(
                    JobVerdict::Panicked {
                        message: panic_message(payload.as_ref()),
                    },
                    false,
                );
            }
            Ok(Err(transient)) => {
                if attempt >= max_retries {
                    return state.finalize(JobVerdict::Failed(transient), false);
                }
                if !note_retry(state, shared, telemetry, attempt, retry_base) {
                    return state.finalize(JobVerdict::Cancelled { phase: None }, false);
                }
                attempt += 1;
            }
            Ok(Ok(Err(cancelled))) => {
                // `guard` drops here (if leading): followers are
                // released with "leader gone" and elect a new leader.
                return state.finalize(
                    JobVerdict::Cancelled {
                        phase: Some(cancelled.phase),
                    },
                    false,
                );
            }
            Ok(Ok(Ok(result))) => break result,
        }
    };
    let summary = Arc::new(ResultSummary::from(&result));
    if let Some(telemetry) = telemetry {
        // Per-rule search-time profile into the histogram the
        // relational-matching work will be measured against.
        let hist = telemetry.metrics.histogram("rule_search_ms");
        for rule in &summary.saturation.rules {
            hist.observe(rule.search_time);
        }
    }
    if let Some(shared) = shared.filter(|_| spec.use_cache) {
        shared.cache.insert(cache_key, Arc::clone(&summary));
        if let Some(store) = &shared.store {
            store.put(&cache_key, &summary);
        }
    }
    // Both tiers are populated before followers wake (and before late
    // arrivals can miss the flight), so a released follower finds
    // either the flight result or a cache hit.
    if let Some(guard) = guard {
        guard.complete(Arc::clone(&summary));
    }
    state.finalize(JobVerdict::Completed(summary), false)
}

/// Deterministic backoff for retry `attempt` of job `job_id`:
/// exponential in the attempt with per-(job, attempt) jitter from the
/// splitmix64 stream, capped at two seconds. Deterministic so chaos
/// runs replay exactly from a seed.
fn backoff_delay(base: Duration, attempt: u32, job_id: u64) -> Duration {
    const CAP: Duration = Duration::from_secs(2);
    let base = base.max(Duration::from_millis(1));
    let exp = base.saturating_mul(1u32 << attempt.min(16));
    let mut rng = job_id ^ (u64::from(attempt) << 32) ^ 0x9e37_79b9_7f4a_7c15;
    let base_ms = u64::try_from(base.as_millis()).unwrap_or(u64::MAX).max(1);
    let jitter = Duration::from_millis(faults::splitmix64(&mut rng) % base_ms);
    (exp + jitter).min(CAP)
}

/// Sleeps out a backoff in short slices, polling the cancel token so a
/// cancelled (or deadline-expired) job stops backing off immediately.
/// Returns false when cancelled.
fn backoff_pause(cancel: &CancelToken, delay: Duration) -> bool {
    let until = Instant::now() + delay;
    loop {
        if cancel.is_cancelled() {
            return false;
        }
        let Some(remaining) = until.checked_duration_since(Instant::now()) else {
            return true;
        };
        std::thread::sleep(remaining.min(Duration::from_millis(2)));
    }
}

/// Accounts one retry — the per-job counter, the service-wide counter,
/// the `job_retry` event — then sleeps the backoff. Returns false when
/// the job was cancelled while backing off.
fn note_retry(
    state: &JobState,
    shared: Option<&Shared>,
    telemetry: Option<&TelemetrySink>,
    attempt: u32,
    base: Duration,
) -> bool {
    let delay = backoff_delay(base, attempt, state.id);
    state.retries.fetch_add(1, Ordering::Relaxed);
    if let Some(shared) = shared {
        shared.counters.retried.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(telemetry) = telemetry {
        telemetry.events.publish(EventKind::JobRetry {
            job: state.id,
            attempt: attempt + 1,
            delay,
        });
        telemetry.metrics.counter("jobs_retried").inc();
    }
    backoff_pause(&state.cancel, delay)
}

/// Publishes the cache hit/miss event and counter for one tier lookup.
fn publish_cache_lookup(telemetry: Option<&TelemetrySink>, job: u64, tier: CacheTier, hit: bool) {
    let Some(telemetry) = telemetry else { return };
    let kind = if hit {
        EventKind::CacheHit { job, tier }
    } else {
        EventKind::CacheMiss { job, tier }
    };
    telemetry.events.publish(kind);
    let counter = match (tier, hit) {
        (CacheTier::Memory, true) => "cache_memory_hits",
        (CacheTier::Memory, false) => "cache_memory_misses",
        (CacheTier::Disk, true) => "cache_disk_hits",
        (CacheTier::Disk, false) => "cache_disk_misses",
    };
    telemetry.metrics.counter(counter).inc();
}

/// Runs a spec inline on the calling thread with no pool and no cache —
/// the reference serial path (`boole --serial`, determinism tests).
/// A `deadline` on the spec is still honored, via a one-shot timer
/// thread standing in for the service's watchdog.
pub fn run_spec_serial(spec: JobSpec) -> Arc<JobOutcome> {
    run_spec_serial_observed(spec, 0, None)
}

/// [`run_spec_serial`] with a caller-assigned job id and an optional
/// telemetry sink. Emits the same submitted/started/phase/done event
/// stream a pooled worker would, so `--serial` runs can be diffed
/// against concurrent ones event-for-event.
pub fn run_spec_serial_observed(
    mut spec: JobSpec,
    job_id: u64,
    telemetry: Option<&TelemetrySink>,
) -> Arc<JobOutcome> {
    let cancel = CancelToken::new();
    spec.params = spec.params.with_cancel_token(cancel.clone());
    let state = Arc::new(JobState {
        id: job_id,
        label: spec.label.clone(),
        cancel: cancel.clone(),
        cell: Mutex::new(JobCell {
            status: JobStatus::Queued,
            outcome: None,
        }),
        done: Condvar::new(),
        submitted_at: Instant::now(),
        retries: AtomicU32::new(0),
    });
    if let Some(telemetry) = telemetry {
        telemetry.events.publish(EventKind::JobSubmitted {
            job: job_id,
            label: spec.label.clone(),
        });
        telemetry.metrics.counter("jobs_submitted").inc();
        telemetry
            .events
            .publish(EventKind::JobStarted { job: job_id });
        telemetry.metrics.gauge("in_flight_jobs").add(1);
    }
    // `disarm` going out of scope (dropping the sender) wakes the
    // timer early so it never outlives the job it guards.
    let timer = spec.deadline.map(|deadline| {
        let (disarm, armed) = mpsc::channel::<()>();
        let handle = std::thread::spawn(move || {
            if let Err(mpsc::RecvTimeoutError::Timeout) = armed.recv_timeout(deadline) {
                cancel.cancel();
            }
        });
        (disarm, handle)
    });
    let outcome = execute_job(&spec, &state, None, telemetry);
    if let Some((disarm, handle)) = timer {
        drop(disarm);
        let _ = handle.join();
    }
    if let Some(telemetry) = telemetry {
        publish_job_done(telemetry, &outcome);
        telemetry.metrics.gauge("in_flight_jobs").add(-1);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobVerdict;

    fn fresh_state() -> Arc<JobState> {
        Arc::new(JobState {
            id: 1,
            label: "poison-test".to_owned(),
            cancel: CancelToken::new(),
            cell: Mutex::new(JobCell {
                status: JobStatus::Queued,
                outcome: None,
            }),
            done: Condvar::new(),
            submitted_at: Instant::now(),
            retries: AtomicU32::new(0),
        })
    }

    /// Panics while holding the lock, from a scoped thread, leaving
    /// the mutex poisoned.
    fn poison<T: Send>(mutex: &Mutex<T>) {
        std::thread::scope(|scope| {
            let result = scope
                .spawn(|| {
                    let _guard = mutex.lock().unwrap();
                    panic!("poisoning the lock on purpose");
                })
                .join();
            assert!(result.is_err());
        });
        assert!(mutex.is_poisoned());
    }

    #[test]
    fn poisoned_job_cell_recovers_instead_of_cascading() {
        let state = fresh_state();
        poison(&state.cell);
        let handle = JobHandle {
            state: Arc::clone(&state),
        };
        // Every access used to `.expect("job cell poisoned")`: one
        // panicking waiter turned all of these into panics too.
        assert!(matches!(handle.status(), JobStatus::Queued));
        assert!(!state.is_terminal());
        state.set_status(JobStatus::Running(None));
        let outcome = state.finalize(JobVerdict::Failed("boom".to_owned()), false);
        assert!(outcome.status().is_terminal());
        assert!(matches!(handle.wait().verdict, JobVerdict::Failed(_)));
        assert!(handle.wait_timeout(Duration::from_millis(50)).is_some());
    }

    #[test]
    fn poisoned_flight_slot_still_publishes_and_wakes_waiters() {
        let flight = InFlight::new();
        poison(&flight.slot);
        flight.publish(None);
        assert!(matches!(
            flight.wait(&CancelToken::new()),
            FlightWait::LeaderGone
        ));
    }
}
