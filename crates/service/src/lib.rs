//! **boole-service** — a concurrent batch-reasoning server over the
//! BoolE pipeline.
//!
//! The one-shot pipeline in the `boole` crate becomes a cacheable,
//! cancellable, concurrently schedulable unit of work:
//!
//! * [`Service`] — a std-only worker pool (threads + mpsc) with a
//!   bounded job queue. [`Service::submit`] returns a [`JobHandle`]
//!   for status polling, cooperative cancellation, and blocking waits.
//! * [`fingerprint_aig`] — a canonical topological hash over an AIG's
//!   gates and outputs; the two-tier result cache keyed on it answers
//!   resubmitted/isomorphic netlists without a saturation run. The
//!   memory tier ([`ResultCache`]) evicts cost-aware (cheap-to-recompute
//!   first); the optional disk tier ([`DiskStore`], enabled by
//!   [`ServiceConfig`]'s `cache_dir`) persists results across process
//!   lifetimes. Concurrent identical submissions are single-flighted:
//!   one pipeline runs, the rest coalesce onto its result.
//! * Per-job deadlines: a watchdog thread cancels a job's
//!   [`CancelToken`](boole::CancelToken) when its deadline passes; the
//!   runner observes it between rules, so runaway jobs die without
//!   poisoning the pool.
//! * Robustness: panicking pipelines are isolated per job (the worker
//!   survives, the handle resolves as [`JobStatus::Panicked`]),
//!   transient failures retry with exponential backoff, overload can
//!   shed instead of block ([`ShedPolicy`]), and every I/O and
//!   scheduling edge carries a named failpoint ([`FaultRegistry`]) so
//!   chaos tests can drive rare error paths deterministically.
//!
//! Netlists arrive in any registered frontend format — ASCII/binary
//! AIGER, BLIF, or structural Verilog ([`JobSpec::file`] dispatches by
//! extension via [`aig::read_netlist`]). Because every frontend parses
//! into the same structurally hashed [`Aig`](aig::Aig), the
//! fingerprint — and therefore the result cache — is format-agnostic:
//! the same circuit submitted as `.aag` and `.blif` is one cache entry.
//!
//! The `boole` binary exposes this as a CLI: `boole run <netlist>`,
//! `boole batch <dir>` (formats freely mixed), `boole gen csa:16`, all
//! with JSON results.

#![warn(missing_docs)]

mod cache;
pub mod faults;
mod fingerprint;
mod job;
mod service;
mod store;

pub use cache::{CacheKey, CacheStats, ResultCache};
pub use faults::{FaultAction, FaultPolicy, FaultRegistry, InjectedFault, Trigger};
pub use fingerprint::{fingerprint_aig, fingerprint_params, Fingerprint};
pub use job::{
    GenFamily, GenPrep, GenSpec, JobOutcome, JobSource, JobSpec, JobStatus, JobVerdict,
    RejectReason, ResultSummary,
};
pub use service::{
    run_spec_serial, run_spec_serial_observed, JobHandle, Service, ServiceConfig, ServiceStats,
    ShedPolicy, SubmitError,
};
pub use store::{DiskStats, DiskStore, STORE_FORMAT_VERSION};
