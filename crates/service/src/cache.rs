//! The in-memory tier of the structural-hash result cache.

use std::sync::{Arc, Mutex};

use boole::telemetry::{EventKind, TelemetrySink};
use egraph::hash::FxHashMap;

use crate::faults::{self, site, FaultAction, FaultRegistry};
use crate::fingerprint::Fingerprint;
use crate::job::ResultSummary;

/// Cache key: netlist structure × result-relevant parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural fingerprint of the submitted netlist.
    pub netlist: Fingerprint,
    /// Fingerprint of the pipeline parameters.
    pub params: u64,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Summaries stored.
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A bounded, thread-safe map from [`CacheKey`] to completed
/// [`ResultSummary`]s.
///
/// Eviction is cost-aware (the GreedyDual algorithm): each entry
/// carries a priority `clock + cost`, where the cost is its
/// `pipeline_runtime` — what a miss on this entry would make the
/// service pay again — and `clock` is an inflation value that rises to
/// the victim's priority on every eviction. Hits and re-insertions
/// re-price the entry at the *current* clock, so recency still
/// matters: an expensive result survives a stream of one-off cheap
/// submissions, but once the clock has inflated past its cost an
/// untouched expensive entry ages out too. Among equal-cost entries
/// (ties broken by last-use stamp) the policy degenerates to exact
/// LRU. The victim search is a scan — O(capacity), irrelevant next to
/// the saturation runs the cache fronts, and dependency-free.
///
/// All counters live under the same lock as the map, so a
/// [`CacheStats`] snapshot is consistent: `insertions == entries +
/// evictions` holds in every snapshot, concurrent writers or not.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    /// Optional event sink notified of evictions (out-of-band; never
    /// consulted for cache decisions).
    telemetry: Option<TelemetrySink>,
    /// Optional fault-injection registry; the `cache.insert`
    /// failpoint fires here.
    faults: Option<Arc<FaultRegistry>>,
}

struct CacheInner {
    // Keys are already-uniform fingerprints, so the e-graph's fast
    // FxHash hasher is safe and skips SipHash on every job lookup.
    map: FxHashMap<CacheKey, Entry>,
    /// Monotonic logical clock; bumped on every touch. Tie-breaker for
    /// equal priorities (= exact LRU among equal costs).
    tick: u64,
    /// GreedyDual inflation value: the priority of the last victim.
    clock: f64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

struct Entry {
    summary: Arc<ResultSummary>,
    /// The logical time of the last get/insert touching this entry.
    last_used: u64,
    /// GreedyDual priority: clock at last touch + recompute cost.
    priority: f64,
}

/// The eviction cost of a summary, in milliseconds of saturation the
/// service would pay to recompute it. The +1 floor keeps entries with
/// sub-millisecond (or disk-restored zero) runtimes ordered by
/// recency rather than collapsing to priority ≈ clock.
fn recompute_cost(summary: &ResultSummary) -> f64 {
    summary.pipeline_runtime.as_secs_f64() * 1e3 + 1.0
}

impl ResultCache {
    /// Creates a cache holding up to `capacity` entries (0 disables
    /// storage; lookups always miss).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(CacheInner {
                map: FxHashMap::default(),
                tick: 0,
                clock: 0.0,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
            }),
            telemetry: None,
            faults: None,
        }
    }

    /// Attaches a telemetry sink that receives an event per eviction
    /// pass.
    pub fn with_telemetry(mut self, telemetry: Option<TelemetrySink>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a fault-injection registry (chaos testing only); see
    /// [`crate::faults`].
    pub fn with_faults(mut self, faults: Option<Arc<FaultRegistry>>) -> Self {
        self.faults = faults;
        self
    }

    /// Looks up `key`, counting a hit or miss. A hit re-prices the
    /// entry at the current clock (most-recently-used among its cost
    /// class).
    pub fn get(&self, key: &CacheKey) -> Option<Arc<ResultSummary>> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                entry.priority = clock + recompute_cost(&entry.summary);
                let summary = Arc::clone(&entry.summary);
                inner.hits += 1;
                Some(summary)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `summary` under `key`, evicting the lowest-priority
    /// (cheapest-to-recompute, least-recently-touched) entry if at
    /// capacity. Re-inserting an existing key refreshes the value and
    /// re-prices the entry without counting a new insertion.
    pub fn insert(&self, key: CacheKey, summary: Arc<ResultSummary>) {
        if self.capacity == 0 {
            return;
        }
        match faults::check(self.faults.as_ref(), site::CACHE_INSERT) {
            Some(FaultAction::Panic) => panic!("{}", FaultRegistry::injected(site::CACHE_INSERT)),
            // An injected insertion failure silently drops the entry:
            // the job still completes, the next lookup just misses.
            Some(_) => return,
            None => {}
        }
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let entry = Entry {
            last_used: inner.tick,
            priority: inner.clock + recompute_cost(&summary),
            summary,
        };
        let fresh = inner.map.insert(key, entry).is_none();
        let mut evicted = 0u64;
        if fresh {
            inner.insertions += 1;
            while inner.map.len() > self.capacity {
                let (victim, priority) = inner
                    .map
                    .iter()
                    .min_by(|(_, a), (_, b)| {
                        a.priority
                            .total_cmp(&b.priority)
                            .then(a.last_used.cmp(&b.last_used))
                    })
                    .map(|(k, e)| (*k, e.priority))
                    .expect("non-empty map over capacity");
                inner.map.remove(&victim);
                inner.evictions += 1;
                evicted += 1;
                // Inflate: everything cheaper than the victim would
                // also have been evicted, so future entries must beat
                // this price to outlive the present working set.
                inner.clock = inner.clock.max(priority);
            }
        }
        drop(inner);
        if evicted > 0 {
            if let Some(telemetry) = &self.telemetry {
                telemetry
                    .events
                    .publish(EventKind::CacheEvicted { entries: evicted });
                telemetry.metrics.counter("cache_evictions").add(evicted);
            }
        }
    }

    /// A consistent snapshot of the counters: taken under the map
    /// lock, so `insertions == entries + evictions` in every snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boole::{BoolE, BooleParams};

    fn dummy_summary() -> Arc<ResultSummary> {
        let aig = aig::gen::csa_multiplier(3);
        let result = BoolE::new(BooleParams::small()).run(&aig);
        Arc::new(ResultSummary::from(&result))
    }

    fn key(tag: u64) -> CacheKey {
        CacheKey {
            netlist: crate::fingerprint::Fingerprint([tag, !tag]),
            params: 7,
        }
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ResultCache::new(8);
        let summary = dummy_summary();
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Arc::clone(&summary));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn untouched_entries_evict_in_insertion_order() {
        let cache = ResultCache::new(2);
        let summary = dummy_summary();
        for i in 0..3 {
            cache.insert(key(i), Arc::clone(&summary));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // With no intervening touches LRU degenerates to FIFO: the
        // oldest key goes, the newer two stay.
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn hit_promotes_entry_over_older_unused_ones() {
        let cache = ResultCache::new(2);
        let summary = dummy_summary();
        cache.insert(key(1), Arc::clone(&summary));
        cache.insert(key(2), Arc::clone(&summary));
        // Touch key 1: it becomes most-recently-used, so key 2 is now
        // the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), Arc::clone(&summary));
        assert!(cache.get(&key(2)).is_none(), "unpromoted entry must go");
        assert!(cache.get(&key(1)).is_some(), "promoted entry must stay");
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_follows_recency_order_under_interleaved_touches() {
        let cache = ResultCache::new(3);
        let summary = dummy_summary();
        for i in 0..3 {
            cache.insert(key(i), Arc::clone(&summary));
        }
        // Recency (oldest → newest) is now 1, 0, 2.
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        cache.insert(key(3), Arc::clone(&summary)); // evicts 1
        assert!(cache.get(&key(1)).is_none());
        // Recency is now 0, 2, 3.
        cache.insert(key(4), Arc::clone(&summary)); // evicts 0
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert!(cache.get(&key(4)).is_some());
        assert_eq!(cache.stats().evictions, 2);
    }

    /// A hand-built summary whose only meaningful field is the
    /// recompute cost, so eviction-order tests control it exactly.
    fn summary_with_runtime_ms(ms: u64) -> Arc<ResultSummary> {
        use std::time::Duration;
        Arc::new(ResultSummary {
            exact_fa_count: 0,
            inputs: 0,
            outputs: 0,
            ands: 0,
            fas: Vec::new(),
            original_fas: Vec::new(),
            saturation: boole::SaturationStats {
                nodes_after_r1: 0,
                nodes_after_r2: 0,
                classes: 0,
                r1_stop: egraph::StopReason::Saturated,
                r2_stop: egraph::StopReason::Saturated,
                r1_iterations: 0,
                r2_iterations: 0,
                pruned: 0,
                search_time: Duration::ZERO,
                merge_time: Duration::ZERO,
                apply_time: Duration::ZERO,
                rebuild_time: Duration::ZERO,
                relation_build_time: Duration::ZERO,
                total_matches: 0,
                rules: Vec::new(),
            },
            pairing: boole::PairStats::default(),
            pipeline_runtime: Duration::from_millis(ms),
        })
    }

    #[test]
    fn cheap_entries_evict_before_expensive_older_ones() {
        let cache = ResultCache::new(2);
        // An expensive result inserted first, then a cheap one.
        cache.insert(key(100), summary_with_runtime_ms(500));
        cache.insert(key(1), summary_with_runtime_ms(0));
        // A third (cheap) insertion must evict the *cheap* entry, not
        // the older-but-expensive one: under pure LRU key(100) would
        // go; cost-awareness keeps it.
        cache.insert(key(2), summary_with_runtime_ms(0));
        assert!(
            cache.get(&key(100)).is_some(),
            "expensive entry must survive a cheap one-off"
        );
        assert!(cache.get(&key(1)).is_none(), "cheap entry is the victim");
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn untouched_expensive_entries_age_out_eventually() {
        let cache = ResultCache::new(2);
        // Cost 5 ms ⇒ priority 0 + 6. A stream of one-off cheap
        // entries (cost 1) inflates the clock (roughly 1 per two
        // evictions in this pattern); once it reaches 6 the untouched
        // expensive entry is the minimum and goes.
        cache.insert(key(100), summary_with_runtime_ms(5));
        for i in 0..20 {
            cache.insert(key(i), summary_with_runtime_ms(0));
        }
        assert!(
            cache.get(&key(100)).is_none(),
            "an inflating clock must age out even expensive entries"
        );
        // The cache still holds exactly `capacity` of the cheap ones.
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn touched_expensive_entry_outlives_the_stream() {
        let cache = ResultCache::new(2);
        cache.insert(key(100), summary_with_runtime_ms(5));
        for i in 0..20 {
            cache.insert(key(i), summary_with_runtime_ms(0));
            // A periodic hit re-prices the expensive entry at the
            // current clock, so it never becomes the minimum.
            assert!(
                cache.get(&key(100)).is_some(),
                "re-priced expensive entry must survive insertion {i}"
            );
        }
    }

    #[test]
    fn concurrent_snapshots_are_internally_consistent() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cache = Arc::new(ResultCache::new(8));
        let summary = summary_with_runtime_ms(1);
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let summary = Arc::clone(&summary);
                std::thread::spawn(move || {
                    let mut gets = 0u64;
                    for i in 0..2000u64 {
                        let k = key(t * 1000 + i % 16);
                        if i % 3 == 0 {
                            cache.insert(k, Arc::clone(&summary));
                        } else {
                            cache.get(&k);
                            gets += 1;
                        }
                    }
                    gets
                })
            })
            .collect();
        // Sample snapshots while the writers hammer the cache: the
        // accounting identity must hold in every single snapshot, not
        // just at quiescence. (Pre-fix, counters were read outside the
        // map lock, so a snapshot could observe `insertions` ahead of
        // `entries + evictions`.)
        let sampler = {
            let cache = Arc::clone(&cache);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut samples = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let s = cache.stats();
                    assert_eq!(
                        s.insertions,
                        s.entries as u64 + s.evictions,
                        "torn snapshot: {s:?}"
                    );
                    samples += 1;
                }
                samples
            })
        };
        let total_gets: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        stop.store(true, Ordering::Relaxed);
        let samples = sampler.join().unwrap();
        assert!(samples > 0, "sampler never ran");
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, total_gets);
        assert_eq!(s.insertions, s.entries as u64 + s.evictions);
    }

    #[test]
    fn evictions_are_reported_to_telemetry() {
        let telemetry = Arc::new(boole::Telemetry::new());
        let cache = ResultCache::new(1).with_telemetry(Some(Arc::clone(&telemetry)));
        cache.insert(key(1), summary_with_runtime_ms(1));
        assert!(telemetry.events.drain().is_empty(), "no eviction yet");
        cache.insert(key(2), summary_with_runtime_ms(1));
        let events = telemetry.events.drain();
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::CacheEvicted { entries: 1 })),
            "eviction must publish an event: {events:?}"
        );
        assert_eq!(telemetry.metrics.counter("cache_evictions").get(), 1);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResultCache::new(0);
        cache.insert(key(1), dummy_summary());
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn reinsert_refreshes_promotes_and_does_not_duplicate() {
        let cache = ResultCache::new(2);
        let summary = dummy_summary();
        cache.insert(key(1), Arc::clone(&summary));
        cache.insert(key(2), Arc::clone(&summary));
        // Re-inserting key 1 promotes it, so key 2 is the next victim.
        cache.insert(key(1), Arc::clone(&summary));
        cache.insert(key(3), Arc::clone(&summary));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.evictions, 1);
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
    }
}
