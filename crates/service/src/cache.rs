//! The structural-hash result cache.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::fingerprint::Fingerprint;
use crate::job::ResultSummary;

/// Cache key: netlist structure × result-relevant parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural fingerprint of the submitted netlist.
    pub netlist: Fingerprint,
    /// Fingerprint of the pipeline parameters.
    pub params: u64,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Summaries stored.
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A bounded, thread-safe map from [`CacheKey`] to completed
/// [`ResultSummary`]s. Eviction is FIFO by insertion order — adequate
/// for a working set of resubmitted netlists, and dependency-free.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

struct CacheInner {
    map: HashMap<CacheKey, Arc<ResultSummary>>,
    order: VecDeque<CacheKey>,
}

impl ResultCache {
    /// Creates a cache holding up to `capacity` entries (0 disables
    /// storage; lookups always miss).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<ResultSummary>> {
        let inner = self.inner.lock().expect("cache poisoned");
        match inner.map.get(key) {
            Some(summary) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(summary))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `summary` under `key`, evicting the oldest entry if at
    /// capacity. Re-inserting an existing key refreshes the value
    /// without growing the eviction queue.
    pub fn insert(&self, key: CacheKey, summary: Arc<ResultSummary>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache poisoned");
        if inner.map.insert(key, summary).is_none() {
            inner.order.push_back(key);
            self.insertions.fetch_add(1, Ordering::Relaxed);
            while inner.map.len() > self.capacity {
                if let Some(victim) = inner.order.pop_front() {
                    inner.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                } else {
                    break;
                }
            }
        }
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.inner.lock().expect("cache poisoned").map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boole::{BoolE, BooleParams};

    fn dummy_summary() -> Arc<ResultSummary> {
        let aig = aig::gen::csa_multiplier(3);
        let result = BoolE::new(BooleParams::small()).run(&aig);
        Arc::new(ResultSummary::from(&result))
    }

    fn key(tag: u64) -> CacheKey {
        CacheKey {
            netlist: crate::fingerprint::Fingerprint([tag, !tag]),
            params: 7,
        }
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ResultCache::new(8);
        let summary = dummy_summary();
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Arc::clone(&summary));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = ResultCache::new(2);
        let summary = dummy_summary();
        for i in 0..3 {
            cache.insert(key(i), Arc::clone(&summary));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // Oldest key evicted, newest present.
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResultCache::new(0);
        cache.insert(key(1), dummy_summary());
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn reinsert_refreshes_without_duplicating() {
        let cache = ResultCache::new(2);
        let summary = dummy_summary();
        cache.insert(key(1), Arc::clone(&summary));
        cache.insert(key(1), Arc::clone(&summary));
        cache.insert(key(2), Arc::clone(&summary));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.evictions, 0);
    }
}
