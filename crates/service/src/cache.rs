//! The structural-hash result cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use egraph::hash::FxHashMap;

use crate::fingerprint::Fingerprint;
use crate::job::ResultSummary;

/// Cache key: netlist structure × result-relevant parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Structural fingerprint of the submitted netlist.
    pub netlist: Fingerprint,
    /// Fingerprint of the pipeline parameters.
    pub params: u64,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Summaries stored.
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A bounded, thread-safe map from [`CacheKey`] to completed
/// [`ResultSummary`]s.
///
/// Eviction is LRU: every hit (and every re-insertion) promotes its
/// entry, so a hot working set of resubmitted netlists survives a
/// stream of one-off submissions that would have flushed a FIFO. The
/// victim search is a scan for the smallest use stamp — O(capacity),
/// which is irrelevant next to the saturation runs the cache fronts,
/// and keeps the implementation dependency-free.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

struct CacheInner {
    // Keys are already-uniform fingerprints, so the e-graph's fast
    // FxHash hasher is safe and skips SipHash on every job lookup.
    map: FxHashMap<CacheKey, Entry>,
    /// Monotonic logical clock; bumped on every touch.
    tick: u64,
}

struct Entry {
    summary: Arc<ResultSummary>,
    /// The logical time of the last get/insert touching this entry.
    last_used: u64,
}

impl ResultCache {
    /// Creates a cache holding up to `capacity` entries (0 disables
    /// storage; lookups always miss).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(CacheInner {
                map: FxHashMap::default(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, counting a hit or miss. A hit promotes the
    /// entry to most-recently-used.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<ResultSummary>> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.summary))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `summary` under `key`, evicting the least-recently-used
    /// entry if at capacity. Re-inserting an existing key refreshes the
    /// value and promotes the entry without counting a new insertion.
    pub fn insert(&self, key: CacheKey, summary: Arc<ResultSummary>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let fresh = inner
            .map
            .insert(
                key,
                Entry {
                    summary,
                    last_used: tick,
                },
            )
            .is_none();
        if fresh {
            self.insertions.fetch_add(1, Ordering::Relaxed);
            while inner.map.len() > self.capacity {
                let victim = inner
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| *k)
                    .expect("non-empty map over capacity");
                inner.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A consistent snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let entries = self.inner.lock().expect("cache poisoned").map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boole::{BoolE, BooleParams};

    fn dummy_summary() -> Arc<ResultSummary> {
        let aig = aig::gen::csa_multiplier(3);
        let result = BoolE::new(BooleParams::small()).run(&aig);
        Arc::new(ResultSummary::from(&result))
    }

    fn key(tag: u64) -> CacheKey {
        CacheKey {
            netlist: crate::fingerprint::Fingerprint([tag, !tag]),
            params: 7,
        }
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = ResultCache::new(8);
        let summary = dummy_summary();
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), Arc::clone(&summary));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn untouched_entries_evict_in_insertion_order() {
        let cache = ResultCache::new(2);
        let summary = dummy_summary();
        for i in 0..3 {
            cache.insert(key(i), Arc::clone(&summary));
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // With no intervening touches LRU degenerates to FIFO: the
        // oldest key goes, the newer two stay.
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_some());
    }

    #[test]
    fn hit_promotes_entry_over_older_unused_ones() {
        let cache = ResultCache::new(2);
        let summary = dummy_summary();
        cache.insert(key(1), Arc::clone(&summary));
        cache.insert(key(2), Arc::clone(&summary));
        // Touch key 1: it becomes most-recently-used, so key 2 is now
        // the LRU victim.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), Arc::clone(&summary));
        assert!(cache.get(&key(2)).is_none(), "unpromoted entry must go");
        assert!(cache.get(&key(1)).is_some(), "promoted entry must stay");
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_follows_recency_order_under_interleaved_touches() {
        let cache = ResultCache::new(3);
        let summary = dummy_summary();
        for i in 0..3 {
            cache.insert(key(i), Arc::clone(&summary));
        }
        // Recency (oldest → newest) is now 1, 0, 2.
        assert!(cache.get(&key(0)).is_some());
        assert!(cache.get(&key(2)).is_some());
        cache.insert(key(3), Arc::clone(&summary)); // evicts 1
        assert!(cache.get(&key(1)).is_none());
        // Recency is now 0, 2, 3.
        cache.insert(key(4), Arc::clone(&summary)); // evicts 0
        assert!(cache.get(&key(0)).is_none());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert!(cache.get(&key(4)).is_some());
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ResultCache::new(0);
        cache.insert(key(1), dummy_summary());
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn reinsert_refreshes_promotes_and_does_not_duplicate() {
        let cache = ResultCache::new(2);
        let summary = dummy_summary();
        cache.insert(key(1), Arc::clone(&summary));
        cache.insert(key(2), Arc::clone(&summary));
        // Re-inserting key 1 promotes it, so key 2 is the next victim.
        cache.insert(key(1), Arc::clone(&summary));
        cache.insert(key(3), Arc::clone(&summary));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.evictions, 1);
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some());
    }
}
