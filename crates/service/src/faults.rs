//! Deterministic fault injection for the service tier.
//!
//! A [`FaultRegistry`] is a table of named **failpoints** — places in
//! the service where an operator (usually a chaos test) can make the
//! real world go wrong on purpose: a disk read that fails, a cache
//! write that lands corrupted, a pipeline that panics mid-job. Every
//! failpoint site in the service calls [`FaultRegistry::hit`] with its
//! [`site`] name; the registry consults the site's configured
//! [`Trigger`] and either stays silent (`None`) or hands back the
//! [`FaultAction`] the site must perform.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** Every trigger is a pure function of the
//!    site's hit counter and (for [`Trigger::Probability`]) a seeded
//!    per-site RNG stream — the same registry configuration over the
//!    same submission order injects the same faults. Chaos failures
//!    reproduce from a seed, never from luck.
//! 2. **Zero-cost when unconfigured.** Sites hold an
//!    `Option<Arc<FaultRegistry>>`; the `None` path (every production
//!    configuration) is a single branch. Even with a registry
//!    attached, an un-armed one answers from one relaxed atomic load.
//! 3. **Typed.** Injected failures carry [`InjectedFault`] so the
//!    error classification layer can tell "the chaos harness did this
//!    (transient, retry it)" from a real bug.
//!
//! The failpoint names are constants in [`site`]; a schedule can also
//! be parsed from a compact text form (see [`FaultRegistry::parse`]):
//!
//! ```text
//! disk.write=corrupt@nth:1;worker.pipeline=panic@every:3;queue.accept=error@prob:1/4:seed:7
//! ```

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use egraph::hash::FxHashMap;

/// The named failpoint sites wired through the service. Using
/// constants (rather than free strings at each call site) keeps the
/// set greppable and lets the chaos harness enumerate every site.
pub mod site {
    /// A persistent-cache record read ([`DiskStore::get`]'s file
    /// read). `error`/`corrupt` degrade the lookup to a miss; `panic`
    /// unwinds the reader.
    ///
    /// [`DiskStore::get`]: crate::DiskStore::get
    pub const DISK_READ: &str = "disk.read";
    /// A persistent-cache record write (the temp-file write).
    /// `error` takes the counted write-failure path; `corrupt` writes
    /// a torn record **that is counted as a successful write** — the
    /// insidious case the read-side validation must absorb; `panic`
    /// unwinds the writer.
    pub const DISK_WRITE: &str = "disk.write";
    /// The atomic rename publishing a persistent-cache record.
    /// `error`/`corrupt` take the write-failure path; `panic` unwinds.
    pub const DISK_RENAME: &str = "disk.rename";
    /// The pipeline execution inside a worker. `error` injects a
    /// transient failure (retried under `max_retries`); `corrupt` is
    /// treated as `error`; `panic` panics inside the worker's
    /// panic-isolation boundary.
    pub const WORKER_PIPELINE: &str = "worker.pipeline";
    /// Job admission (`submit`/`try_submit`/`submit_timeout`).
    /// `error`/`corrupt` reject the job as shed
    /// ([`RejectReason::Injected`]); `panic` unwinds the submitter.
    ///
    /// [`RejectReason::Injected`]: crate::RejectReason::Injected
    pub const QUEUE_ACCEPT: &str = "queue.accept";
    /// An in-memory result-cache insertion. `error`/`corrupt` drop
    /// the insertion silently (the entry is simply not cached);
    /// `panic` unwinds the inserter.
    pub const CACHE_INSERT: &str = "cache.insert";

    /// Every site, for enumeration by chaos harnesses.
    pub const ALL: &[&str] = &[
        DISK_READ,
        DISK_WRITE,
        DISK_RENAME,
        WORKER_PIPELINE,
        QUEUE_ACCEPT,
        CACHE_INSERT,
    ];
}

/// What a triggered failpoint makes its site do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Return the site's typed error (an injected I/O failure, a
    /// transient pipeline failure, a shed rejection — whatever the
    /// site's real failure mode is).
    Error,
    /// Panic at the site, exercising the panic-isolation boundaries.
    Panic,
    /// Produce corrupted output instead of failing: `disk.write`
    /// writes a torn record; sites with no output to corrupt treat
    /// this as [`FaultAction::Error`].
    Corrupt,
}

impl FaultAction {
    /// Stable lowercase name (the spelling [`FaultRegistry::parse`]
    /// accepts).
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Error => "error",
            FaultAction::Panic => "panic",
            FaultAction::Corrupt => "corrupt",
        }
    }
}

/// When a configured failpoint fires, as a deterministic function of
/// the site's hit count (and, for probability, a seeded RNG stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on exactly the `n`th hit (1-based), once.
    Nth(u64),
    /// Fire on every `k`th hit (`k` = 1 fires always).
    EveryKth(u64),
    /// Fire on each hit with probability `numerator / denominator`,
    /// drawn from a splitmix64 stream seeded by `seed` xor the site
    /// name hash — so two sites configured with one seed still see
    /// independent (but reproducible) streams.
    Probability {
        /// Chance numerator.
        numerator: u64,
        /// Chance denominator (>= 1).
        denominator: u64,
        /// RNG seed; same seed + same hit order = same faults.
        seed: u64,
    },
    /// Fire on every hit.
    Always,
}

/// A trigger/action pair installed at one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// When the failpoint fires.
    pub trigger: Trigger,
    /// What the site does when it fires.
    pub action: FaultAction,
}

/// The typed error a site returns for [`FaultAction::Error`].
/// Injected failures are transient by definition — the next attempt
/// may not trigger — which is what the retry classification keys on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The failpoint that fired.
    pub site: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at failpoint {}", self.site)
    }
}

impl std::error::Error for InjectedFault {}

/// Per-site bookkeeping: the installed policy plus the deterministic
/// state the trigger evolves over.
#[derive(Debug)]
struct SiteState {
    policy: FaultPolicy,
    /// Times the site was evaluated.
    hits: u64,
    /// Times the trigger fired.
    fired: u64,
    /// splitmix64 state for [`Trigger::Probability`].
    rng: u64,
}

/// One step of splitmix64: a tiny, high-quality, dependency-free PRNG
/// — exactly reproducible across platforms, which is the whole point.
/// Also the source of the retry backoff jitter in `service.rs`.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the site name, to decorrelate per-site RNG streams
/// derived from one operator-chosen seed.
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in site.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A registry of named failpoints with seeded, per-site trigger
/// policies. See the [module docs](self) for the design contract.
#[derive(Debug, Default)]
pub struct FaultRegistry {
    /// Fast-path flag: false until the first `configure`, so an
    /// attached-but-empty registry costs one relaxed load per site.
    armed: AtomicBool,
    sites: Mutex<FxHashMap<String, SiteState>>,
}

impl FaultRegistry {
    /// An empty (un-armed) registry: every [`FaultRegistry::hit`]
    /// answers `None`.
    pub fn new() -> FaultRegistry {
        FaultRegistry::default()
    }

    /// Installs (or replaces) the policy at `site`, resetting the
    /// site's hit counter and RNG stream.
    pub fn configure(&self, site: impl Into<String>, policy: FaultPolicy) {
        let site = site.into();
        let rng = match policy.trigger {
            Trigger::Probability { seed, .. } => seed ^ site_hash(&site),
            _ => 0,
        };
        self.lock().insert(
            site,
            SiteState {
                policy,
                hits: 0,
                fired: 0,
                rng,
            },
        );
        self.armed.store(true, Ordering::Release);
    }

    /// Evaluates the failpoint at `site`: counts the hit and returns
    /// the action to perform if the site's trigger fires. Sites with
    /// no configured policy (and every site of an un-armed registry)
    /// return `None`.
    pub fn hit(&self, site: &str) -> Option<FaultAction> {
        if !self.armed.load(Ordering::Acquire) {
            return None;
        }
        let mut sites = self.lock();
        let state = sites.get_mut(site)?;
        state.hits += 1;
        let fire = match state.policy.trigger {
            Trigger::Nth(n) => state.hits == n,
            Trigger::EveryKth(k) => k > 0 && state.hits % k == 0,
            Trigger::Probability {
                numerator,
                denominator,
                ..
            } => denominator > 0 && splitmix64(&mut state.rng) % denominator < numerator,
            Trigger::Always => true,
        };
        if fire {
            state.fired += 1;
            Some(state.policy.action)
        } else {
            None
        }
    }

    /// Times `site` was evaluated (whether or not it fired).
    pub fn hits(&self, site: &str) -> u64 {
        self.lock().get(site).map_or(0, |s| s.hits)
    }

    /// Times `site`'s trigger fired.
    pub fn fired(&self, site: &str) -> u64 {
        self.lock().get(site).map_or(0, |s| s.fired)
    }

    /// Total fires across all sites.
    pub fn fired_total(&self) -> u64 {
        self.lock().values().map(|s| s.fired).sum()
    }

    /// The typed error for an [`FaultAction::Error`] at `site`.
    pub fn injected(site: &str) -> InjectedFault {
        InjectedFault {
            site: site.to_owned(),
        }
    }

    /// Parses a compact schedule: `;`-separated `site=action@trigger`
    /// clauses, where `action` is `error|panic|corrupt` and `trigger`
    /// is `nth:N`, `every:K`, `always`, or `prob:N/D[:seed:S]`
    /// (seed defaults to 0). Unknown sites are rejected so schedule
    /// typos fail loudly instead of injecting nothing.
    pub fn parse(text: &str) -> Result<FaultRegistry, String> {
        let registry = FaultRegistry::new();
        for clause in text.split(';').filter(|c| !c.trim().is_empty()) {
            let (site, rest) = clause
                .trim()
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?}: expected site=action@trigger"))?;
            if !site::ALL.contains(&site) {
                return Err(format!(
                    "unknown failpoint {site:?} (expected one of {})",
                    site::ALL.join(", ")
                ));
            }
            let (action, trigger) = rest
                .split_once('@')
                .ok_or_else(|| format!("fault clause {clause:?}: expected action@trigger"))?;
            let action = match action {
                "error" => FaultAction::Error,
                "panic" => FaultAction::Panic,
                "corrupt" => FaultAction::Corrupt,
                other => return Err(format!("unknown fault action {other:?}")),
            };
            let trigger = parse_trigger(trigger)?;
            registry.configure(site, FaultPolicy { trigger, action });
        }
        Ok(registry)
    }

    /// The sites lock never guards anything that can be left torn —
    /// recover from poisoning instead of cascading a chaos panic.
    fn lock(&self) -> std::sync::MutexGuard<'_, FxHashMap<String, SiteState>> {
        self.sites.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

fn parse_trigger(text: &str) -> Result<Trigger, String> {
    if text == "always" {
        return Ok(Trigger::Always);
    }
    if let Some(n) = text.strip_prefix("nth:") {
        let n: u64 = n.parse().map_err(|e| format!("bad nth trigger: {e}"))?;
        if n == 0 {
            return Err("nth trigger is 1-based; use nth:1 for the first hit".to_owned());
        }
        return Ok(Trigger::Nth(n));
    }
    if let Some(k) = text.strip_prefix("every:") {
        let k: u64 = k.parse().map_err(|e| format!("bad every trigger: {e}"))?;
        if k == 0 {
            return Err("every trigger needs k >= 1".to_owned());
        }
        return Ok(Trigger::EveryKth(k));
    }
    if let Some(rest) = text.strip_prefix("prob:") {
        let (fraction, seed) = match rest.split_once(":seed:") {
            Some((fraction, seed)) => (
                fraction,
                seed.parse::<u64>()
                    .map_err(|e| format!("bad prob seed: {e}"))?,
            ),
            None => (rest, 0),
        };
        let (numerator, denominator) = fraction
            .split_once('/')
            .ok_or_else(|| format!("bad prob trigger {rest:?}: expected N/D"))?;
        let numerator: u64 = numerator
            .parse()
            .map_err(|e| format!("bad prob numerator: {e}"))?;
        let denominator: u64 = denominator
            .parse()
            .map_err(|e| format!("bad prob denominator: {e}"))?;
        if denominator == 0 {
            return Err("prob trigger needs a nonzero denominator".to_owned());
        }
        return Ok(Trigger::Probability {
            numerator,
            denominator,
            seed,
        });
    }
    Err(format!(
        "unknown trigger {text:?} (nth:N | every:K | always | prob:N/D[:seed:S])"
    ))
}

/// Evaluates an optional registry at `site`; the everyone-disabled
/// fast path is one `None` check.
pub(crate) fn check(faults: Option<&Arc<FaultRegistry>>, site: &str) -> Option<FaultAction> {
    faults.and_then(|f| f.hit(site))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(trigger: Trigger) -> FaultPolicy {
        FaultPolicy {
            trigger,
            action: FaultAction::Error,
        }
    }

    #[test]
    fn unarmed_registry_is_silent_and_counts_nothing() {
        let registry = FaultRegistry::new();
        for s in site::ALL {
            assert_eq!(registry.hit(s), None);
        }
        assert_eq!(registry.hits(site::DISK_READ), 0);
        assert_eq!(registry.fired_total(), 0);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let registry = FaultRegistry::new();
        registry.configure(site::DISK_WRITE, policy(Trigger::Nth(3)));
        let fired: Vec<bool> = (0..6)
            .map(|_| registry.hit(site::DISK_WRITE).is_some())
            .collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        assert_eq!(registry.hits(site::DISK_WRITE), 6);
        assert_eq!(registry.fired(site::DISK_WRITE), 1);
        // Other sites stay silent.
        assert_eq!(registry.hit(site::DISK_READ), None);
    }

    #[test]
    fn every_kth_fires_periodically_and_always_fires_always() {
        let registry = FaultRegistry::new();
        registry.configure(site::WORKER_PIPELINE, policy(Trigger::EveryKth(2)));
        let fired: Vec<bool> = (0..6)
            .map(|_| registry.hit(site::WORKER_PIPELINE).is_some())
            .collect();
        assert_eq!(fired, [false, true, false, true, false, true]);
        registry.configure(site::QUEUE_ACCEPT, policy(Trigger::Always));
        assert!(registry.hit(site::QUEUE_ACCEPT).is_some());
        assert!(registry.hit(site::QUEUE_ACCEPT).is_some());
    }

    #[test]
    fn probability_streams_are_deterministic_and_seed_sensitive() {
        let draw = |seed: u64| -> Vec<bool> {
            let registry = FaultRegistry::new();
            registry.configure(
                site::DISK_READ,
                policy(Trigger::Probability {
                    numerator: 1,
                    denominator: 2,
                    seed,
                }),
            );
            (0..64)
                .map(|_| registry.hit(site::DISK_READ).is_some())
                .collect()
        };
        assert_eq!(draw(42), draw(42), "same seed must replay identically");
        assert_ne!(draw(42), draw(43), "different seeds must diverge");
        let fires = draw(42).iter().filter(|f| **f).count();
        assert!(
            (8..=56).contains(&fires),
            "p=1/2 over 64 draws fired {fires} times"
        );
    }

    #[test]
    fn one_seed_decorrelates_across_sites() {
        let registry = FaultRegistry::new();
        for s in [site::DISK_READ, site::DISK_WRITE] {
            registry.configure(
                s,
                policy(Trigger::Probability {
                    numerator: 1,
                    denominator: 2,
                    seed: 7,
                }),
            );
        }
        let a: Vec<bool> = (0..64)
            .map(|_| registry.hit(site::DISK_READ).is_some())
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|_| registry.hit(site::DISK_WRITE).is_some())
            .collect();
        assert_ne!(a, b, "per-site streams must not mirror each other");
    }

    #[test]
    fn reconfigure_resets_site_state() {
        let registry = FaultRegistry::new();
        registry.configure(site::DISK_WRITE, policy(Trigger::Nth(1)));
        assert!(registry.hit(site::DISK_WRITE).is_some());
        registry.configure(site::DISK_WRITE, policy(Trigger::Nth(1)));
        assert!(
            registry.hit(site::DISK_WRITE).is_some(),
            "counter must reset"
        );
    }

    #[test]
    fn parse_round_trips_every_clause_form() {
        let registry = FaultRegistry::parse(
            "disk.write=corrupt@nth:1; worker.pipeline=panic@every:3;\
             queue.accept=error@prob:1/4:seed:7;cache.insert=error@always",
        )
        .unwrap();
        assert_eq!(registry.hit(site::DISK_WRITE), Some(FaultAction::Corrupt));
        assert_eq!(registry.hit(site::DISK_WRITE), None);
        assert_eq!(registry.hit(site::WORKER_PIPELINE), None);
        assert_eq!(registry.hit(site::WORKER_PIPELINE), None);
        assert_eq!(
            registry.hit(site::WORKER_PIPELINE),
            Some(FaultAction::Panic)
        );
        assert_eq!(registry.hit(site::CACHE_INSERT), Some(FaultAction::Error));
        // The empty schedule parses to an un-armed registry.
        assert_eq!(FaultRegistry::parse("").unwrap().fired_total(), 0);
    }

    #[test]
    fn parse_rejects_malformed_schedules() {
        for bad in [
            "disk.write",                       // no action
            "disk.write=error",                 // no trigger
            "disk.teleport=error@nth:1",        // unknown site
            "disk.write=explode@nth:1",         // unknown action
            "disk.write=error@nth:0",           // nth is 1-based
            "disk.write=error@every:0",         // k >= 1
            "disk.write=error@prob:1/0",        // zero denominator
            "disk.write=error@prob:1",          // not a fraction
            "disk.write=error@sometimes",       // unknown trigger
            "disk.write=error@prob:1/2:seed:x", // bad seed
        ] {
            assert!(
                FaultRegistry::parse(bad).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }
}
