//! Multiplier specification polynomials.

use aig::{Aig, Lit};

use crate::{Int, Poly};

/// What arithmetic function the netlist is supposed to implement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulSpec {
    /// Unsigned `n × n → 2n` multiplication.
    Unsigned {
        /// Operand width.
        n: usize,
    },
    /// Signed (two's complement) `n × n → 2n` multiplication.
    Signed {
        /// Operand width.
        n: usize,
    },
}

impl MulSpec {
    /// Unsigned spec of width `n`.
    pub fn unsigned(n: usize) -> MulSpec {
        MulSpec::Unsigned { n }
    }

    /// Signed spec of width `n`.
    pub fn signed(n: usize) -> MulSpec {
        MulSpec::Signed { n }
    }

    /// Operand width.
    pub fn width(&self) -> usize {
        match *self {
            MulSpec::Unsigned { n } | MulSpec::Signed { n } => n,
        }
    }

    /// Builds the specification polynomial
    /// `Σ w_i · out_i − (Σ w_i · a_i)(Σ w_j · b_j)` over the netlist's
    /// node variables, where the weights are `2^i` (with negated top
    /// weight for signed operands/results).
    ///
    /// Inputs `0..n` are operand `a`, inputs `n..2n` operand `b`
    /// (the convention of [`aig::gen`]).
    ///
    /// # Panics
    ///
    /// Panics if the netlist interface does not match the spec
    /// (`2n` inputs, `2n` outputs).
    pub fn polynomial(&self, aig: &Aig) -> Poly {
        let n = self.width();
        assert_eq!(aig.num_inputs(), 2 * n, "expected {} inputs", 2 * n);
        assert_eq!(aig.num_outputs(), 2 * n, "expected {} outputs", 2 * n);
        let signed = matches!(self, MulSpec::Signed { .. });

        // Output word.
        let mut out_word = Poly::zero();
        for (i, (_, lit)) in aig.outputs().iter().enumerate() {
            let w = weight(i, 2 * n, signed);
            out_word.add_scaled(&lit_poly(*lit), &w);
        }
        // Operand words.
        let inputs = aig.inputs();
        let mut a_word = Poly::zero();
        let mut b_word = Poly::zero();
        for i in 0..n {
            let w = weight(i, n, signed);
            a_word.add_scaled(&Poly::var(inputs[i].0), &w);
            b_word.add_scaled(&Poly::var(inputs[n + i].0), &w);
        }
        &out_word - &a_word.mul(&b_word)
    }
}

fn weight(i: usize, width: usize, signed: bool) -> Int {
    let w = Int::pow2(i);
    if signed && i == width - 1 {
        w.neg()
    } else {
        w
    }
}

/// The polynomial of an AIG literal over node variables.
pub fn lit_poly(lit: Lit) -> Poly {
    if lit == Lit::FALSE {
        return Poly::zero();
    }
    if lit == Lit::TRUE {
        return Poly::constant(Int::one());
    }
    Poly::literal(lit.var().0, lit.is_complemented())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::gen::csa_multiplier;

    #[test]
    fn spec_shape() {
        let aig = csa_multiplier(4);
        let p = MulSpec::unsigned(4).polynomial(&aig);
        // 8 output terms (distinct vars) + 16 a_i·b_j products, plus
        // possibly one constant term from complemented output literals.
        assert!((24..=25).contains(&p.num_terms()), "{}", p.num_terms());
    }

    #[test]
    fn lit_poly_constants() {
        assert!(lit_poly(Lit::FALSE).is_zero());
        assert_eq!(lit_poly(Lit::TRUE), Poly::constant(Int::one()));
    }

    #[test]
    #[should_panic(expected = "expected 8 inputs")]
    fn spec_validates_interface() {
        let aig = csa_multiplier(3);
        let _ = MulSpec::unsigned(4).polynomial(&aig);
    }
}
