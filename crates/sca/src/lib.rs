//! Symbolic computer algebra (SCA) verification backend — a
//! reproduction of the RevSCA-2.0 flow the paper integrates BoolE
//! into (Table II).
//!
//! Multiplier verification by *backward rewriting*: start from the
//! specification polynomial
//! `P = Σ 2^i out_i − (Σ 2^i a_i)(Σ 2^j b_j)` and substitute gate
//! output variables by their gate polynomials in reverse topological
//! order; the multiplier is correct iff the polynomial vanishes.
//!
//! Gate-by-gate substitution explodes on optimized netlists (vanishing
//! monomials); knowing *exact* half/full-adder blocks lets the
//! rewriter substitute each block's sum and carry with their bounded
//! closed forms (`s = a+b+c−2·maj`, `maj = ab+ac+bc−2abc`), which keeps
//! the maximum polynomial size near-linear — the effect BoolE's exact
//! FA reconstruction enables.
//!
//! # Example
//!
//! ```
//! use sca::{verify_multiplier, AdderBlocks, MulSpec, VerifyParams};
//!
//! let aig = aig::gen::csa_multiplier(4);
//! let outcome = verify_multiplier(
//!     &aig,
//!     MulSpec::unsigned(4),
//!     &AdderBlocks::default(),
//!     &VerifyParams::default(),
//! );
//! assert!(outcome.verified);
//! ```

#![warn(missing_docs)]

pub mod bigint;
pub mod blocks;
pub mod poly;
pub mod rewriter;
pub mod spec;

pub use bigint::Int;
pub use blocks::{AdderBlocks, FaBlockSpec, HaBlockSpec};
pub use poly::{Mono, Poly};
pub use rewriter::{verify_multiplier, VerifyOutcome, VerifyParams};
pub use spec::MulSpec;
