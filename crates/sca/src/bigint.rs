//! A small arbitrary-precision signed integer.
//!
//! Verification of an `n`-bit multiplier manipulates coefficients up
//! to `2^(2n)`; for the paper's 128-bit benchmarks that exceeds `i128`,
//! so we carry our own sign-magnitude bignum (the approved offline
//! crate set has no bignum crate).

use std::cmp::Ordering;
use std::fmt;

/// A signed arbitrary-precision integer (sign + little-endian `u64`
/// magnitude limbs, no leading zero limbs, zero is positive-empty).
///
/// ```
/// use sca::Int;
/// let a = Int::from(1i64) << 130;
/// let b = &a - &Int::from(1i64);
/// assert!(b < a);
/// assert_eq!((&a - &a), Int::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Int {
    negative: bool,
    limbs: Vec<u64>,
}

impl Int {
    /// Zero.
    pub const ZERO: Int = Int {
        negative: false,
        limbs: Vec::new(),
    };

    /// One.
    pub fn one() -> Int {
        Int::from(1i64)
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// `2^k`.
    pub fn pow2(k: usize) -> Int {
        Int::one() << k
    }

    /// The negation.
    pub fn neg(&self) -> Int {
        if self.is_zero() {
            Int::ZERO
        } else {
            Int {
                negative: !self.negative,
                limbs: self.limbs.clone(),
            }
        }
    }

    fn trim(mut limbs: Vec<u64>, negative: bool) -> Int {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            Int::ZERO
        } else {
            Int { negative, limbs }
        }
    }

    fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &word) in long.iter().enumerate() {
            let (s1, c1) = word.overflowing_add(*short.get(i).unwrap_or(&0));
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        out
    }

    /// `a - b` for `|a| >= |b|`.
    fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Int::mag_cmp(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &word) in a.iter().enumerate() {
            let rhs = *b.get(i).unwrap_or(&0);
            let (d1, b1) = word.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        out
    }

    /// Divides the magnitude by a small divisor, returning the
    /// remainder (used for decimal printing).
    fn mag_divmod_u64(limbs: &[u64], divisor: u64) -> (Vec<u64>, u64) {
        let mut out = vec![0u64; limbs.len()];
        let mut rem = 0u128;
        for i in (0..limbs.len()).rev() {
            let cur = (rem << 64) | limbs[i] as u128;
            out[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (out, rem as u64)
    }

    /// Number of bits in the magnitude.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }
}

impl From<i64> for Int {
    fn from(v: i64) -> Int {
        if v == 0 {
            Int::ZERO
        } else {
            Int {
                negative: v < 0,
                limbs: vec![v.unsigned_abs()],
            }
        }
    }
}

impl From<i32> for Int {
    fn from(v: i32) -> Int {
        Int::from(v as i64)
    }
}

impl std::ops::Add for &Int {
    type Output = Int;
    fn add(self, rhs: &Int) -> Int {
        if self.negative == rhs.negative {
            Int::trim(Int::mag_add(&self.limbs, &rhs.limbs), self.negative)
        } else {
            match Int::mag_cmp(&self.limbs, &rhs.limbs) {
                Ordering::Equal => Int::ZERO,
                Ordering::Greater => {
                    Int::trim(Int::mag_sub(&self.limbs, &rhs.limbs), self.negative)
                }
                Ordering::Less => Int::trim(Int::mag_sub(&rhs.limbs, &self.limbs), rhs.negative),
            }
        }
    }
}

impl std::ops::Sub for &Int {
    type Output = Int;
    // Sign-magnitude subtraction really is negate-and-add.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: &Int) -> Int {
        self + &rhs.neg()
    }
}

impl std::ops::Mul for &Int {
    type Output = Int;
    fn mul(self, rhs: &Int) -> Int {
        Int::trim(
            Int::mag_mul(&self.limbs, &rhs.limbs),
            self.negative != rhs.negative,
        )
    }
}

impl std::ops::Shl<usize> for Int {
    type Output = Int;
    fn shl(self, bits: usize) -> Int {
        if self.is_zero() {
            return Int::ZERO;
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        Int::trim(limbs, self.negative)
    }
}

impl PartialOrd for Int {
    fn partial_cmp(&self, other: &Int) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Int {
    fn cmp(&self, other: &Int) -> Ordering {
        match (self.negative, other.negative) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Int::mag_cmp(&self.limbs, &other.limbs),
            (true, true) => Int::mag_cmp(&other.limbs, &self.limbs),
        }
    }
}

impl fmt::Display for Int {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut mag = self.limbs.clone();
        while !mag.is_empty() {
            let (q, r) = Int::mag_divmod_u64(&mag, 10_000_000_000_000_000_000);
            let q = {
                let mut q = q;
                while q.last() == Some(&0) {
                    q.pop();
                }
                q
            };
            digits.push(r);
            mag = q;
        }
        if self.negative {
            write!(f, "-")?;
        }
        write!(f, "{}", digits.last().expect("non-zero"))?;
        for d in digits.iter().rev().skip(1) {
            write!(f, "{d:019}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_arithmetic() {
        let a = Int::from(42i64);
        let b = Int::from(-17i64);
        assert_eq!(&a + &b, Int::from(25i64));
        assert_eq!(&a - &b, Int::from(59i64));
        assert_eq!(&a * &b, Int::from(-714i64));
        assert_eq!(&b * &b, Int::from(289i64));
        assert_eq!(&a - &a, Int::ZERO);
    }

    #[test]
    fn large_shifts_and_products() {
        let big = Int::pow2(200);
        assert_eq!(big.bits(), 201);
        let sq = &big * &big;
        assert_eq!(sq, Int::pow2(400));
        assert_eq!(&sq - &sq, Int::ZERO);
        assert!(Int::pow2(128) > Int::pow2(127));
        assert!(Int::pow2(128).neg() < Int::ZERO);
    }

    #[test]
    fn display_decimal() {
        assert_eq!(Int::ZERO.to_string(), "0");
        assert_eq!(Int::from(-12345i64).to_string(), "-12345");
        // 2^64 = 18446744073709551616
        assert_eq!(Int::pow2(64).to_string(), "18446744073709551616");
        // 2^128 known value
        assert_eq!(
            Int::pow2(128).to_string(),
            "340282366920938463463374607431768211456"
        );
    }

    #[test]
    fn add_sub_roundtrip_random() {
        // xorshift-driven sanity over mixed signs.
        let mut state = 0x12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as i64
        };
        for _ in 0..500 {
            let a = Int::from(next());
            let b = Int::from(next());
            let sum = &a + &b;
            assert_eq!(&sum - &b, a);
            let prod = &a * &b;
            if !b.is_zero() {
                // crude check: |a*b| >= |a| unless b == 0
                assert!(prod.bits() + 1 >= a.bits());
            }
        }
    }

    #[test]
    fn pow2_shift_consistency() {
        for k in [0usize, 1, 63, 64, 65, 127, 130] {
            assert_eq!(Int::pow2(k), Int::one() << k);
            assert_eq!((&Int::pow2(k) + &Int::pow2(k)), Int::pow2(k + 1));
        }
    }
}
