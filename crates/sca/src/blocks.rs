//! Adder-block knowledge handed to the rewriter.

use aig::Lit;

/// An exact full adder over netlist signals: `sum = in0 ⊕ in1 ⊕ in2`
/// and `carry = maj(in0, in1, in2)` as *literals* (polarity included).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaBlockSpec {
    /// The three input literals.
    pub inputs: [Lit; 3],
    /// The sum literal.
    pub sum: Lit,
    /// The carry literal.
    pub carry: Lit,
}

/// An exact half adder: `sum = in0 ⊕ in1`, `carry = in0 & in1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaBlockSpec {
    /// The two input literals.
    pub inputs: [Lit; 2],
    /// The sum literal.
    pub sum: Lit,
    /// The carry literal.
    pub carry: Lit,
}

/// The exact blocks known to the verifier.
#[derive(Debug, Clone, Default)]
pub struct AdderBlocks {
    /// Full adders.
    pub fas: Vec<FaBlockSpec>,
    /// Half adders.
    pub has: Vec<HaBlockSpec>,
}

impl AdderBlocks {
    /// No block knowledge (the Table II baseline).
    pub fn none() -> AdderBlocks {
        AdderBlocks::default()
    }

    /// Total number of blocks.
    pub fn len(&self) -> usize {
        self.fas.len() + self.has.len()
    }

    /// Returns `true` if no blocks are known.
    pub fn is_empty(&self) -> bool {
        self.fas.is_empty() && self.has.is_empty()
    }
}
