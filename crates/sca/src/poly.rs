//! Multilinear polynomials over Boolean (0/1) variables with [`Int`]
//! coefficients.

use std::collections::BTreeMap;
use std::fmt;

use crate::Int;

/// A monomial: a sorted product of distinct Boolean variables
/// (`x² = x` is applied on construction).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Mono(Box<[u32]>);

impl Mono {
    /// The constant monomial `1`.
    pub fn one() -> Mono {
        Mono(Box::new([]))
    }

    /// A single variable.
    pub fn var(v: u32) -> Mono {
        Mono(Box::new([v]))
    }

    /// Builds from variables (sorted, de-duplicated — Booleanness).
    pub fn from_vars(mut vars: Vec<u32>) -> Mono {
        vars.sort_unstable();
        vars.dedup();
        Mono(vars.into_boxed_slice())
    }

    /// The variables of the monomial.
    pub fn vars(&self) -> &[u32] {
        &self.0
    }

    /// Degree (number of variables).
    pub fn degree(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the monomial contains `v`.
    pub fn contains(&self, v: u32) -> bool {
        self.0.binary_search(&v).is_ok()
    }

    /// The product of two monomials (union of variables).
    pub fn mul(&self, other: &Mono) -> Mono {
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (a, b) = (&self.0, &other.0);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Mono(out.into_boxed_slice())
    }

    /// The monomial with `v` removed.
    pub fn without(&self, v: u32) -> Mono {
        Mono(
            self.0
                .iter()
                .copied()
                .filter(|&x| x != v)
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        )
    }
}

/// A polynomial: a map from monomials to non-zero coefficients.
///
/// ```
/// use sca::{Poly, Mono, Int};
/// let x = Poly::var(1);
/// let one = Poly::constant(Int::one());
/// let not_x = &one - &x;
/// // x * (1 - x) == x - x² == x - x == 0 over Booleans
/// assert!(x.mul(&not_x).is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<Mono, Int>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: Int) -> Poly {
        let mut p = Poly::zero();
        p.add_term(Mono::one(), c);
        p
    }

    /// The polynomial `v`.
    pub fn var(v: u32) -> Poly {
        let mut p = Poly::zero();
        p.add_term(Mono::var(v), Int::one());
        p
    }

    /// The polynomial of a Boolean literal: `v` or `1 − v`.
    pub fn literal(v: u32, negated: bool) -> Poly {
        if negated {
            let mut p = Poly::constant(Int::one());
            p.add_term(Mono::var(v), Int::from(-1i64));
            p
        } else {
            Poly::var(v)
        }
    }

    /// Returns `true` if the polynomial is zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of monomials (the paper's "poly size" metric).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterates `(monomial, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Mono, &Int)> {
        self.terms.iter()
    }

    /// Adds `coeff · mono` in place.
    pub fn add_term(&mut self, mono: Mono, coeff: Int) {
        if coeff.is_zero() {
            return;
        }
        match self.terms.entry(mono) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(coeff);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let new = e.get() + &coeff;
                if new.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = new;
                }
            }
        }
    }

    /// Adds another polynomial scaled by `scale`.
    pub fn add_scaled(&mut self, other: &Poly, scale: &Int) {
        for (m, c) in &other.terms {
            self.add_term(m.clone(), c * scale);
        }
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                out.add_term(ma.mul(mb), ca * cb);
            }
        }
        out
    }

    /// Substitutes variable `v` by `replacement`, returning the new
    /// polynomial. Monomials not containing `v` are untouched.
    pub fn substitute(&self, v: u32, replacement: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            if m.contains(v) {
                let rest = m.without(v);
                for (rm, rc) in &replacement.terms {
                    out.add_term(rest.mul(rm), c * rc);
                }
            } else {
                out.add_term(m.clone(), c.clone());
            }
        }
        out
    }

    /// Returns `true` if variable `v` occurs in any monomial.
    pub fn uses_var(&self, v: u32) -> bool {
        self.terms.keys().any(|m| m.contains(v))
    }

    /// The set of variables used.
    pub fn support(&self) -> Vec<u32> {
        let mut vars: Vec<u32> = self
            .terms
            .keys()
            .flat_map(|m| m.vars().iter().copied())
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }
}

impl std::ops::Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        out.add_scaled(rhs, &Int::one());
        out
    }
}

impl std::ops::Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        out.add_scaled(rhs, &Int::from(-1i64));
        out
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
            for v in m.vars() {
                write!(f, "·x{v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn booleanness_squares() {
        let x = Poly::var(3);
        let sq = x.mul(&x);
        assert_eq!(sq, x);
    }

    #[test]
    fn literal_complement_annihilates() {
        let x = Poly::var(5);
        let nx = Poly::literal(5, true);
        assert!(x.mul(&nx).is_zero());
        assert_eq!(&x + &nx, Poly::constant(Int::one()));
    }

    #[test]
    fn substitution_eliminates_var() {
        // p = 2·x·y + z; x := a + b - a·b (i.e. a OR b)
        let mut p = Poly::zero();
        p.add_term(Mono::from_vars(vec![1, 2]), Int::from(2i64));
        p.add_term(Mono::var(3), Int::one());
        let mut or_ab = Poly::var(10);
        or_ab.add_term(Mono::var(11), Int::one());
        or_ab.add_term(Mono::from_vars(vec![10, 11]), Int::from(-1i64));
        let q = p.substitute(1, &or_ab);
        assert!(!q.uses_var(1));
        assert!(q.uses_var(10));
        // Evaluate both sides on all assignments to check equality.
        for bits in 0u32..16 {
            let assign = |v: u32| -> i64 {
                match v {
                    10 => (bits & 1) as i64,
                    11 => ((bits >> 1) & 1) as i64,
                    2 => ((bits >> 2) & 1) as i64,
                    3 => ((bits >> 3) & 1) as i64,
                    1 => {
                        let a = (bits & 1) as i64;
                        let b = ((bits >> 1) & 1) as i64;
                        a + b - a * b
                    }
                    _ => unreachable!(),
                }
            };
            let eval = |poly: &Poly| -> i64 {
                poly.iter()
                    .map(|(m, c)| {
                        let prod: i64 = m.vars().iter().map(|&v| assign(v)).product();
                        // coefficients fit in i64 in this test
                        let cs = c.to_string().parse::<i64>().unwrap();
                        cs * prod
                    })
                    .sum()
            };
            assert_eq!(eval(&p), eval(&q), "bits={bits}");
        }
    }

    #[test]
    fn xor_identity_vanishes() {
        // s = a + b - 2ab  (XOR);  s - a - b + 2ab == 0
        let a = Poly::var(1);
        let b = Poly::var(2);
        let mut s = &a + &b;
        s.add_scaled(&a.mul(&b), &Int::from(-2i64));
        let mut check = s.clone();
        check.add_scaled(&a, &Int::from(-1i64));
        check.add_scaled(&b, &Int::from(-1i64));
        check.add_scaled(&a.mul(&b), &Int::from(2i64));
        assert!(check.is_zero());
    }

    #[test]
    fn num_terms_counts_monomials() {
        let mut p = Poly::zero();
        for v in 0..10u32 {
            p.add_term(Mono::var(v), Int::one());
        }
        assert_eq!(p.num_terms(), 10);
        for v in 0..10u32 {
            p.add_term(Mono::var(v), Int::from(-1i64));
        }
        assert!(p.is_zero());
    }
}
