//! Backward rewriting — the RevSCA-2.0 style verification engine.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use aig::{Aig, Node, Var};

use crate::spec::lit_poly;
use crate::{AdderBlocks, Int, MulSpec, Poly};

/// Parameters for [`verify_multiplier`].
#[derive(Debug, Clone, Copy)]
pub struct VerifyParams {
    /// Abort (declare time-out) once the polynomial exceeds this many
    /// monomials — the stand-in for the paper's 72-hour wall-clock TO.
    pub max_terms: usize,
    /// Wall-clock limit.
    pub time_limit: Duration,
}

impl Default for VerifyParams {
    fn default() -> Self {
        Self {
            max_terms: 2_000_000,
            time_limit: Duration::from_secs(600),
        }
    }
}

/// The outcome of a verification run.
#[derive(Debug, Clone)]
pub struct VerifyOutcome {
    /// `true` if the polynomial reduced to zero (netlist correct).
    pub verified: bool,
    /// `true` if the run aborted on the term/time budget.
    pub timed_out: bool,
    /// Maximum number of monomials observed during backward rewriting
    /// (the paper's "Max Poly Size").
    pub max_poly_size: usize,
    /// Number of variable substitutions performed.
    pub substitutions: usize,
    /// Wall-clock time.
    pub runtime: Duration,
}

/// `a + b + c − 2(ab + ac + bc) + 4abc` — the closed form of a
/// full-adder sum over literal polynomials.
fn xor3_poly(l: &[Poly; 3]) -> Poly {
    let ab = l[0].mul(&l[1]);
    let ac = l[0].mul(&l[2]);
    let bc = l[1].mul(&l[2]);
    let abc = ab.mul(&l[2]);
    let mut p = &(&l[0] + &l[1]) + &l[2];
    p.add_scaled(&ab, &Int::from(-2i64));
    p.add_scaled(&ac, &Int::from(-2i64));
    p.add_scaled(&bc, &Int::from(-2i64));
    p.add_scaled(&abc, &Int::from(4i64));
    p
}

/// `ab + ac + bc − 2abc` — the closed form of a full-adder carry.
fn maj_poly(l: &[Poly; 3]) -> Poly {
    let ab = l[0].mul(&l[1]);
    let ac = l[0].mul(&l[2]);
    let bc = l[1].mul(&l[2]);
    let abc = ab.mul(&l[2]);
    let mut p = &(&ab + &ac) + &bc;
    p.add_scaled(&abc, &Int::from(-2i64));
    p
}

/// `a + b − 2ab` — half-adder sum.
fn xor2_poly(l: &[Poly; 2]) -> Poly {
    let ab = l[0].mul(&l[1]);
    let mut p = &l[0] + &l[1];
    p.add_scaled(&ab, &Int::from(-2i64));
    p
}

/// Flips a polynomial `p` to `1 − p` when the defining literal is
/// complemented (so the replacement is for the *variable*).
fn for_var(defining_lit: aig::Lit, signal_poly: Poly) -> Poly {
    if defining_lit.is_complemented() {
        &Poly::constant(Int::one()) - &signal_poly
    } else {
        signal_poly
    }
}

/// Verifies a multiplier netlist against `spec` by backward rewriting.
///
/// With an empty [`AdderBlocks`] every gate is substituted by its gate
/// polynomial (the Table II *baseline*); with exact FA/HA blocks the
/// block outputs are substituted by their bounded closed forms, which
/// is what keeps the maximum polynomial size small.
pub fn verify_multiplier(
    aig: &Aig,
    spec: MulSpec,
    blocks: &AdderBlocks,
    params: &VerifyParams,
) -> VerifyOutcome {
    let start = Instant::now();

    // Replacement plan per variable: block closed forms take priority
    // over plain gate polynomials.
    let mut plan: HashMap<Var, Poly> = HashMap::new();
    for fa in &blocks.fas {
        let l = [
            lit_poly(fa.inputs[0]),
            lit_poly(fa.inputs[1]),
            lit_poly(fa.inputs[2]),
        ];
        plan.entry(fa.sum.var())
            .or_insert_with(|| for_var(fa.sum, xor3_poly(&l)));
        plan.entry(fa.carry.var())
            .or_insert_with(|| for_var(fa.carry, maj_poly(&l)));
    }
    for ha in &blocks.has {
        let l = [lit_poly(ha.inputs[0]), lit_poly(ha.inputs[1])];
        plan.entry(ha.sum.var())
            .or_insert_with(|| for_var(ha.sum, xor2_poly(&l)));
        plan.entry(ha.carry.var())
            .or_insert_with(|| for_var(ha.carry, l[0].mul(&l[1])));
    }

    let mut poly = spec.polynomial(aig);
    let mut max_poly_size = poly.num_terms();
    let mut substitutions = 0;

    // Reverse topological order = decreasing variable index.
    for idx in (0..aig.num_nodes()).rev() {
        let var = Var(idx as u32);
        let Node::And(a, b) = aig.node(var) else {
            continue;
        };
        if !poly.uses_var(var.0) {
            continue;
        }
        let replacement = plan
            .get(&var)
            .cloned()
            .unwrap_or_else(|| lit_poly(a).mul(&lit_poly(b)));
        poly = poly.substitute(var.0, &replacement);
        substitutions += 1;
        max_poly_size = max_poly_size.max(poly.num_terms());
        if poly.num_terms() > params.max_terms || start.elapsed() > params.time_limit {
            return VerifyOutcome {
                verified: false,
                timed_out: true,
                max_poly_size,
                substitutions,
                runtime: start.elapsed(),
            };
        }
    }

    VerifyOutcome {
        verified: poly.is_zero(),
        timed_out: false,
        max_poly_size,
        substitutions,
        runtime: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::gen::{booth_multiplier, csa_multiplier, full_adder};
    use aig::Lit;

    #[test]
    fn verifies_small_unsigned_multipliers() {
        for n in [2usize, 3, 4, 6] {
            let aig = csa_multiplier(n);
            let outcome = verify_multiplier(
                &aig,
                MulSpec::unsigned(n),
                &AdderBlocks::none(),
                &VerifyParams::default(),
            );
            assert!(outcome.verified, "n={n}: {outcome:?}");
            assert!(!outcome.timed_out);
        }
    }

    #[test]
    fn verifies_signed_booth() {
        for n in [4usize, 6] {
            let aig = booth_multiplier(n);
            let outcome = verify_multiplier(
                &aig,
                MulSpec::signed(n),
                &AdderBlocks::none(),
                &VerifyParams::default(),
            );
            assert!(outcome.verified, "n={n}: {outcome:?}");
        }
    }

    #[test]
    fn rejects_buggy_multiplier() {
        // Swap two outputs of a correct multiplier.
        let aig = csa_multiplier(3);
        let mut broken = aig::Aig::new();
        let ins = broken.add_inputs(6);
        let _ = ins;
        // Rebuild by copying through aiger round trip then swapping.
        let mut text = aig::aiger::to_aag(&aig);
        // Swap the first two output lines (lines 8 and 9 after header+inputs).
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(7, 8);
        text = lines.join("\n");
        let broken = aig::aiger::from_aag(&text).unwrap();
        let outcome = verify_multiplier(
            &broken,
            MulSpec::unsigned(3),
            &AdderBlocks::none(),
            &VerifyParams::default(),
        );
        assert!(!outcome.verified);
        assert!(!outcome.timed_out);
    }

    /// Ground-truth blocks straight from the generator.
    fn generator_blocks(m: &aig::gen::Multiplier) -> AdderBlocks {
        AdderBlocks {
            fas: m
                .fas
                .iter()
                .map(|fa| crate::FaBlockSpec {
                    inputs: fa.inputs,
                    sum: fa.sum,
                    carry: fa.carry,
                })
                .collect(),
            has: m
                .has
                .iter()
                .map(|ha| crate::HaBlockSpec {
                    inputs: ha.inputs,
                    sum: ha.sum,
                    carry: ha.carry,
                })
                .collect(),
        }
    }

    #[test]
    fn fa_blocks_reduce_max_poly_size() {
        let n = 8;
        let m = aig::gen::csa_multiplier_with_stats(n);
        let base = verify_multiplier(
            &m.aig,
            MulSpec::unsigned(n),
            &AdderBlocks::none(),
            &VerifyParams::default(),
        );
        assert!(base.verified, "{base:?}");
        let blocks = generator_blocks(&m);
        assert!(!blocks.is_empty());
        let assisted = verify_multiplier(
            &m.aig,
            MulSpec::unsigned(n),
            &blocks,
            &VerifyParams::default(),
        );
        assert!(assisted.verified, "{assisted:?}");
        assert!(
            assisted.max_poly_size < base.max_poly_size,
            "blocks must shrink the max poly size: {} vs {}",
            assisted.max_poly_size,
            base.max_poly_size
        );
    }

    #[test]
    fn blocked_verification_scales_where_baseline_grows() {
        // On the generator netlists the baseline still succeeds (the
        // blow-up needs dch-style optimization, exercised in the bench
        // harness) but the block-assisted max size grows much slower.
        let mut ratios = Vec::new();
        for n in [4usize, 6, 8] {
            let m = aig::gen::csa_multiplier_with_stats(n);
            let blocks = generator_blocks(&m);
            let base = verify_multiplier(
                &m.aig,
                MulSpec::unsigned(n),
                &AdderBlocks::none(),
                &VerifyParams::default(),
            );
            let assisted = verify_multiplier(
                &m.aig,
                MulSpec::unsigned(n),
                &blocks,
                &VerifyParams::default(),
            );
            assert!(base.verified && assisted.verified);
            ratios.push(base.max_poly_size as f64 / assisted.max_poly_size as f64);
        }
        assert!(
            ratios.windows(2).all(|w| w[1] >= w[0] * 0.8),
            "advantage should not collapse: {ratios:?}"
        );
    }

    #[test]
    fn single_fa_block_closed_forms_are_sound() {
        let mut fa_aig = Aig::new();
        let x = fa_aig.add_input();
        let y = fa_aig.add_input();
        let z = fa_aig.add_input();
        let (s, c) = full_adder(&mut fa_aig, x, y, z);
        fa_aig.add_output("s", s);
        fa_aig.add_output("c", c);
        // Spec: s + 2c - (x + y + z) == 0.
        let mut p = crate::spec::lit_poly(s);
        p.add_scaled(&crate::spec::lit_poly(c), &Int::from(2i64));
        for lit in [x, y, z] {
            p.add_scaled(&crate::spec::lit_poly(lit), &Int::from(-1i64));
        }
        let blocks = AdderBlocks {
            fas: vec![crate::FaBlockSpec {
                inputs: [x, y, z],
                sum: s,
                carry: c,
            }],
            has: vec![],
        };
        // Manually run the rewriting loop.
        let outcome = rewrite_poly(&fa_aig, p, &blocks, &VerifyParams::default());
        assert!(outcome.verified, "{outcome:?}");
        let _ = Lit::FALSE;
    }

    /// Exposes the core loop on an arbitrary start polynomial for
    /// tests.
    fn rewrite_poly(
        aig: &Aig,
        mut poly: crate::Poly,
        blocks: &AdderBlocks,
        _params: &VerifyParams,
    ) -> VerifyOutcome {
        let start = Instant::now();
        let mut plan: HashMap<Var, crate::Poly> = HashMap::new();
        for fa in &blocks.fas {
            let l = [
                lit_poly(fa.inputs[0]),
                lit_poly(fa.inputs[1]),
                lit_poly(fa.inputs[2]),
            ];
            plan.insert(fa.sum.var(), for_var(fa.sum, xor3_poly(&l)));
            plan.insert(fa.carry.var(), for_var(fa.carry, maj_poly(&l)));
        }
        let mut max_poly_size = poly.num_terms();
        for idx in (0..aig.num_nodes()).rev() {
            let var = Var(idx as u32);
            let Node::And(a, b) = aig.node(var) else {
                continue;
            };
            if !poly.uses_var(var.0) {
                continue;
            }
            let replacement = plan
                .get(&var)
                .cloned()
                .unwrap_or_else(|| lit_poly(a).mul(&lit_poly(b)));
            poly = poly.substitute(var.0, &replacement);
            max_poly_size = max_poly_size.max(poly.num_terms());
        }
        VerifyOutcome {
            verified: poly.is_zero(),
            timed_out: false,
            max_poly_size,
            substitutions: 0,
            runtime: start.elapsed(),
        }
    }
}
