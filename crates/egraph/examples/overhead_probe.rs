//! Micro-probe for the shared-trie matcher's two regimes: rulesets
//! with heavy structural overlap (where one trie walk replaces many
//! per-pattern walks) and match-dense rulesets with little overlap
//! (where emission work dominates and sharing cannot help). Run with
//!
//! ```sh
//! cargo run --release -p egraph --example overhead_probe
//! ```
//!
//! to sanity-check that executor overhead has not regressed: the
//! `identical` ruleset should be an integer factor faster shared than
//! solo, and the `disjoint` ruleset should sit near parity.

use egraph::{CancelToken, EGraph, Pattern, RuleDirective, RuleSetProgram, SymbolLang};
use std::time::Instant;

fn build_graph(classes: usize, width: usize) -> EGraph<SymbolLang> {
    // Classes of f-nodes over a pool of leaves, two e-nodes per class
    // (the second referencing the previous class, so patterns nest).
    let mut eg: EGraph<SymbolLang> = EGraph::default();
    let leaves: Vec<_> = (0..width)
        .map(|k| eg.add(SymbolLang::leaf(format!("x{k}"))))
        .collect();
    let mut prev = leaves[0];
    for c in 0..classes {
        let a = leaves[c % width];
        let b = leaves[(c / width) % width];
        let n1 = eg.add(SymbolLang::new("f", vec![a, b]));
        let n2 = eg.add(SymbolLang::new("f", vec![b, prev]));
        eg.union(n1, n2);
        prev = n1;
    }
    eg.rebuild();
    eg
}

fn main() {
    let eg = build_graph(2000, 40);
    let cancel = CancelToken::new();

    // Maximum sharing: every rule compiles to the same program, so
    // the trie is a single path emitting for all fifty.
    let identical: Vec<Pattern<SymbolLang>> = (0..50)
        .map(|_| "(f (f ?a ?b) ?c)".parse().unwrap())
        .collect();
    // Five shapes diverging right after the root: sharing is shallow
    // and the per-rule match emission dominates either way.
    let disjoint: Vec<Pattern<SymbolLang>> = (0..50)
        .map(|k| match k % 5 {
            0 => "(f (f ?a ?b) (f ?b ?c))".parse().unwrap(),
            1 => "(f (f ?a ?a) ?c)".parse().unwrap(),
            2 => "(f ?a (f ?b ?c))".parse().unwrap(),
            3 => "(f (f (f ?a ?b) ?c) ?d)".parse().unwrap(),
            _ => "(f ?a (f ?b (f ?c ?d)))".parse().unwrap(),
        })
        .collect();

    for (name, pats) in [("identical", &identical), ("disjoint", &disjoint)] {
        let refs: Vec<&Pattern<SymbolLang>> = pats.iter().collect();
        let prog = RuleSetProgram::compile(&refs);
        let directives = vec![RuleDirective::Limit(usize::MAX); refs.len()];
        let _ = prog.search(&eg, &directives, &cancel, None, 1); // warmup
        let t = Instant::now();
        for _ in 0..5 {
            let _ = prog.search(&eg, &directives, &cancel, None, 1);
        }
        let shared = t.elapsed();
        let t = Instant::now();
        for _ in 0..5 {
            for p in &refs {
                let _ = p.search(&eg);
            }
        }
        let solo = t.elapsed();
        println!(
            "{name:10} shared {:8.1}ms  solo {:8.1}ms  speedup {:.2}x  (trie nodes {} vs {} solo instructions)",
            shared.as_secs_f64() * 1e3,
            solo.as_secs_f64() * 1e3,
            solo.as_secs_f64() / shared.as_secs_f64(),
            prog.n_trie_nodes(),
            prog.total_rule_instructions()
        );
    }
}
