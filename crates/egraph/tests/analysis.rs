//! Integration test: a constant-folding e-class analysis over
//! `SymbolLang`, exercising `Analysis::{make, merge, modify}` and the
//! analysis-repair path of `EGraph::rebuild`.

use egraph::{Analysis, DidMerge, EGraph, Id, Language, RecExpr, Rewrite, Runner, SymbolLang};

/// Folds integer arithmetic over `+` and `*`.
#[derive(Debug, Clone, Default)]
struct ConstFold;

fn parse_const(node: &SymbolLang) -> Option<i64> {
    if node.is_leaf() {
        node.op.as_str().parse().ok()
    } else {
        None
    }
}

impl Analysis<SymbolLang> for ConstFold {
    type Data = Option<i64>;

    fn make(egraph: &mut EGraph<SymbolLang, Self>, enode: &SymbolLang) -> Self::Data {
        if let Some(c) = parse_const(enode) {
            return Some(c);
        }
        let child = |i: usize| -> Option<i64> { egraph.eclass(enode.children()[i]).data };
        match enode.op.as_str() {
            "+" => Some(child(0)? + child(1)?),
            "*" => Some(child(0)? * child(1)?),
            _ => None,
        }
    }

    fn merge(&mut self, to: &mut Self::Data, from: Self::Data) -> DidMerge {
        match (&to, from) {
            (None, Some(c)) => {
                *to = Some(c);
                DidMerge(true, false)
            }
            (Some(a), Some(b)) => {
                assert_eq!(*a, b, "constant folding contradiction");
                DidMerge(false, false)
            }
            (_, None) => DidMerge(false, true),
        }
    }

    fn modify(egraph: &mut EGraph<SymbolLang, Self>, id: Id) {
        if let Some(c) = egraph.eclass(id).data {
            let const_id = egraph.add(SymbolLang::leaf(c.to_string()));
            egraph.union(id, const_id);
        }
    }
}

#[test]
fn folds_constants_bottom_up() {
    let mut eg: EGraph<SymbolLang, ConstFold> = EGraph::default();
    let expr: RecExpr<SymbolLang> = "(+ (* 2 3) (* 4 5))".parse().unwrap();
    let root = eg.add_expr(&expr);
    eg.rebuild();
    let c26 = eg.lookup(&SymbolLang::leaf("26")).expect("26 materialized");
    assert_eq!(eg.find(root), eg.find(c26));
}

#[test]
fn analysis_data_propagates_through_unions() {
    let mut eg: EGraph<SymbolLang, ConstFold> = EGraph::default();
    let x = eg.add(SymbolLang::leaf("x"));
    let two = eg.add(SymbolLang::leaf("2"));
    let sum = eg.add(SymbolLang::new("+", vec![x, two]));
    eg.rebuild();
    assert_eq!(eg.eclass(sum).data, None);
    // Learn that x = 3: the sum class must fold to 5.
    let three = eg.add(SymbolLang::leaf("3"));
    eg.union(x, three);
    eg.rebuild();
    assert_eq!(eg.eclass(sum).data, Some(5));
    let five = eg.lookup(&SymbolLang::leaf("5")).expect("5 materialized");
    assert_eq!(eg.find(sum), eg.find(five));
}

#[test]
fn analysis_composes_with_rewriting() {
    let rules: Vec<Rewrite<SymbolLang, ConstFold>> = vec![
        Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
        Rewrite::parse("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
    ];
    // (x + 1) + 2: after re-association, 1 + 2 folds to 3.
    let expr: RecExpr<SymbolLang> = "(+ (+ x 1) 2)".parse().unwrap();
    let runner = Runner::new(ConstFold).with_expr(&expr).run(&rules);
    let want: RecExpr<SymbolLang> = "(+ x 3)".parse().unwrap();
    let found = runner
        .egraph
        .lookup_expr(&want)
        .expect("folded form exists");
    assert_eq!(
        runner.egraph.find(found),
        runner.egraph.find(runner.roots[0])
    );
}
