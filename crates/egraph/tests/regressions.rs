//! Regression tests for issues found while developing the BoolE
//! pipeline on top of this engine.

use egraph::{
    BackoffScheduler, EGraph, Pattern, RecExpr, Rewrite, Runner, StopReason, SymbolLang,
    MAX_SUBSTS_PER_CLASS,
};

type EG = EGraph<SymbolLang, ()>;
type RW = Rewrite<SymbolLang, ()>;

/// The matcher must not blow up on wide e-classes: a class with many
/// equivalent binary nodes used to make deep patterns explore the
/// cross product of every level.
#[test]
fn matcher_work_is_bounded_on_wide_classes() {
    let mut eg = EG::default();
    // Build a class with many `+` nodes by unioning `(+ x_i x_j)` pairs.
    let leaves: Vec<_> = (0..24)
        .map(|i| eg.add(SymbolLang::leaf(format!("x{i}"))))
        .collect();
    let mut first = None;
    for w in leaves.windows(2) {
        let node = eg.add(SymbolLang::new("+", vec![w[0], w[1]]));
        match first {
            None => first = Some(node),
            Some(f) => {
                eg.union(f, node);
            }
        }
    }
    eg.rebuild();
    // Nest it: (+ class class) so a 3-level pattern multiplies choices.
    let root = eg.add(SymbolLang::new("+", vec![first.unwrap(), first.unwrap()]));
    eg.rebuild();
    let deep: Pattern<SymbolLang> = "(+ (+ (+ ?a ?b) (+ ?c ?d)) (+ ?e ?f))".parse().unwrap();
    let start = std::time::Instant::now();
    let matches = deep.search_eclass(&eg, root);
    assert!(start.elapsed() < std::time::Duration::from_secs(2));
    if let Some(m) = matches {
        assert!(m.substs.len() <= MAX_SUBSTS_PER_CLASS);
    }
}

/// The node limit must also hold *within* one iteration: a single rule
/// with thousands of matches must not overshoot by more than one
/// rule's worth of applications.
#[test]
fn node_limit_is_enforced_mid_iteration() {
    // Chain of `+` so associativity/commutativity explode.
    let mut expr = String::from("a");
    for i in 0..40 {
        expr = format!("(+ {expr} b{i})");
    }
    let expr: RecExpr<SymbolLang> = expr.parse().unwrap();
    let rules = vec![
        RW::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
        RW::parse("assoc", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
    ];
    let runner = Runner::default()
        .with_expr(&expr)
        .with_node_limit(500)
        .with_iter_limit(50)
        .with_scheduler(BackoffScheduler::new(100_000, 1))
        .run(&rules);
    assert!(matches!(runner.stop_reason, Some(StopReason::NodeLimit(_))));
    // Allow bounded overshoot (one rule's applications), not unbounded.
    assert!(
        runner.egraph.total_number_of_nodes() < 500 + 100_000,
        "graph exploded to {}",
        runner.egraph.total_number_of_nodes()
    );
}

/// An aborted apply phase (node limit hit before any rule ran) must
/// not be misreported as saturation.
#[test]
fn aborted_apply_is_not_saturation() {
    let mut expr = String::from("a");
    for i in 0..20 {
        expr = format!("(+ {expr} b{i})");
    }
    let expr: RecExpr<SymbolLang> = expr.parse().unwrap();
    let rules = vec![RW::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)").unwrap()];
    // Node limit below the initial size: the very first apply aborts.
    let runner = Runner::default()
        .with_expr(&expr)
        .with_node_limit(5)
        .run(&rules);
    assert!(matches!(runner.stop_reason, Some(StopReason::NodeLimit(5))));
}

/// Unions performed by congruence repair during rebuild must be
/// reflected in lookups immediately afterwards (memo canonicity).
#[test]
fn congruence_repair_updates_memo() {
    let mut eg = EG::default();
    let a = eg.add(SymbolLang::leaf("a"));
    let b = eg.add(SymbolLang::leaf("b"));
    let mut level_a = a;
    let mut level_b = b;
    for _ in 0..10 {
        level_a = eg.add(SymbolLang::new("f", vec![level_a]));
        level_b = eg.add(SymbolLang::new("f", vec![level_b]));
    }
    eg.union(a, b);
    eg.rebuild();
    eg.check_invariants();
    assert_eq!(eg.find(level_a), eg.find(level_b));
    // A fresh add of the canonical form must hit the merged class.
    let again = eg.add(SymbolLang::new("f", vec![eg.find(level_a)]));
    let expect = eg.add(SymbolLang::new("f", vec![eg.find(level_b)]));
    assert_eq!(eg.find(again), eg.find(expect));
}

/// `retain_nodes` keeps lookups coherent: removed nodes miss, kept
/// nodes still hit their classes.
#[test]
fn retain_nodes_memo_coherence() {
    let mut eg = EG::default();
    let a = eg.add(SymbolLang::leaf("a"));
    let b = eg.add(SymbolLang::leaf("b"));
    let ab = eg.add(SymbolLang::new("f", vec![a, b]));
    let ba = eg.add(SymbolLang::new("f", vec![b, a]));
    eg.union(ab, ba);
    eg.rebuild();
    eg.retain_nodes(|_, node| node.children != [b, a]);
    assert_eq!(eg.lookup(&SymbolLang::new("f", vec![b, a])), None);
    assert_eq!(
        eg.lookup(&SymbolLang::new("f", vec![a, b]))
            .map(|i| eg.find(i)),
        Some(eg.find(ab))
    );
    // Rewriting continues to work on the pruned graph.
    let rules = vec![RW::parse("wrap", "(f ?x ?y)", "(g ?x ?y)").unwrap()];
    let runner = Runner::default().with_egraph(eg).run(&rules);
    let g = runner
        .egraph
        .lookup(&SymbolLang::new("g", vec![a, b]))
        .expect("rule fired");
    assert_eq!(runner.egraph.find(g), runner.egraph.find(ab));
}
