//! A fast, non-cryptographic hasher for the e-graph's hot maps.
//!
//! `std`'s default SipHash is DoS-resistant but costs real time on the
//! e-graph's hottest paths (`memo` hash-consing, the `by_op` operator
//! index, extractor and scheduler tables), where keys are small and
//! attacker-controlled input is not a concern. This module hand-rolls
//! the well-known FxHash function (a multiply-and-rotate mix used by
//! rustc's `FxHashMap`) — the build environment is offline, so the
//! `rustc-hash` crate cannot be pulled in.
//!
//! ```
//! use egraph::hash::FxHashMap;
//! let mut m: FxHashMap<u32, &str> = FxHashMap::default();
//! m.insert(1, "one");
//! assert_eq!(m.get(&1), Some(&"one"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative mixing constant (from Firefox/rustc FxHash):
/// `floor(2^64 / golden_ratio)`, forced odd.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

const ROTATE: u32 = 5;

/// A fast, insecure [`Hasher`] (FxHash): each word is folded in with a
/// rotate, xor, and multiply. Quality is plenty for pointer-sized and
/// small composite keys; do not use where hash-flooding matters.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(buf)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`std::collections::HashMap`] keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A [`std::collections::HashSet`] keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        FxBuildHasher::default().hash_one(t)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(
            hash_of(&(1u64, vec![1u8, 2, 3])),
            hash_of(&(1u64, vec![1u8, 2, 3]))
        );
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        // Distinguishes byte strings of every length class handled by
        // `write` (8/4/2/1-byte tails).
        for len in 1..=17usize {
            let a: Vec<u8> = (0..len as u8).collect();
            let mut b = a.clone();
            b[len - 1] ^= 1;
            assert_ne!(hash_of(&a), hash_of(&b), "length {len}");
        }
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(vec![i, i + 1], i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&vec![7, 8]], 7);
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&99));
    }

    #[test]
    fn zero_prefix_sensitivity() {
        // A classic weak-hasher failure: leading zeros wiping state.
        assert_ne!(hash_of(&[0u64, 1]), hash_of(&[0u64, 2]));
        assert_ne!(hash_of(&[0u64, 0, 1]), hash_of(&[0u64, 1, 0]));
    }
}
