//! A union-find (disjoint set) over [`Id`]s.

use crate::Id;

/// A union-find data structure over dense [`Id`]s.
///
/// Roots are canonical representatives. [`UnionFind::find`] works on a
/// shared reference (no path compression) so it can be used while
/// iterating an e-graph; [`UnionFind::find_mut`] performs path halving.
///
/// ```
/// use egraph::UnionFind;
/// let mut uf = UnionFind::default();
/// let a = uf.make_set();
/// let b = uf.make_set();
/// assert_ne!(uf.find(a), uf.find(b));
/// uf.union_roots(a, b);
/// assert_eq!(uf.find(a), uf.find(b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnionFind {
    parents: Vec<Id>,
}

impl UnionFind {
    /// Creates an empty union-find.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh singleton set and returns its id.
    pub fn make_set(&mut self) -> Id {
        let id = Id::from_index(self.parents.len());
        self.parents.push(id);
        id
    }

    /// Number of ids ever created (not the number of distinct sets).
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Returns `true` if no set was ever created.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    fn parent(&self, id: Id) -> Id {
        self.parents[id.index()]
    }

    /// Finds the canonical representative of `id` without mutating.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this union-find.
    pub fn find(&self, mut id: Id) -> Id {
        while id != self.parent(id) {
            id = self.parent(id);
        }
        id
    }

    /// Finds the canonical representative of `id`, compressing paths.
    pub fn find_mut(&mut self, mut id: Id) -> Id {
        while id != self.parent(id) {
            let grandparent = self.parent(self.parent(id));
            self.parents[id.index()] = grandparent;
            id = grandparent;
        }
        id
    }

    /// Unions two sets given their *roots*, making `to` the new root.
    ///
    /// Returns `to`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `to` or `from` are not roots.
    pub fn union_roots(&mut self, to: Id, from: Id) -> Id {
        debug_assert_eq!(to, self.find(to), "`to` must be a root");
        debug_assert_eq!(from, self.find(from), "`from` must be a root");
        self.parents[from.index()] = to;
        to
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> (UnionFind, Vec<Id>) {
        let mut uf = UnionFind::new();
        let ids = (0..n).map(|_| uf.make_set()).collect();
        (uf, ids)
    }

    #[test]
    fn fresh_sets_are_distinct() {
        let (uf, ids) = ids(8);
        for (i, &a) in ids.iter().enumerate() {
            assert_eq!(uf.find(a), a);
            for &b in &ids[i + 1..] {
                assert_ne!(uf.find(a), uf.find(b));
            }
        }
    }

    #[test]
    fn union_merges_classes() {
        let (mut uf, ids) = ids(6);
        uf.union_roots(ids[0], ids[1]);
        uf.union_roots(ids[2], ids[3]);
        assert_eq!(uf.find(ids[1]), ids[0]);
        assert_eq!(uf.find(ids[3]), ids[2]);
        assert_ne!(uf.find(ids[0]), uf.find(ids[2]));
        let r0 = uf.find(ids[0]);
        let r2 = uf.find(ids[2]);
        uf.union_roots(r0, r2);
        assert_eq!(uf.find(ids[3]), uf.find(ids[1]));
        // untouched element remains alone
        assert_eq!(uf.find(ids[5]), ids[5]);
    }

    #[test]
    fn find_mut_compresses() {
        let (mut uf, ids) = ids(4);
        uf.union_roots(ids[0], ids[1]);
        uf.union_roots(ids[1].into_root(&uf), ids[2]);
        let root = uf.find_mut(ids[2]);
        assert_eq!(root, ids[0]);
        assert_eq!(uf.find(ids[2]), ids[0]);
    }

    trait IntoRoot {
        fn into_root(self, uf: &UnionFind) -> Id;
    }
    impl IntoRoot for Id {
        fn into_root(self, uf: &UnionFind) -> Id {
            uf.find(self)
        }
    }
}
