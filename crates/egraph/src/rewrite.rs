//! Rewrite rules: a searcher [`Pattern`] plus an [`Applier`].

use std::fmt;
use std::sync::Arc;

use crate::{Analysis, EGraph, FromOp, Id, Language, ParsePatternError, Pattern, Subst, Symbol};

/// The right-hand side of a [`Rewrite`]: given a match, mutate the
/// e-graph (usually by instantiating a pattern and unioning).
pub trait Applier<L: Language, N: Analysis<L>>: Send + Sync {
    /// Applies the rule at one matched e-class under one substitution.
    ///
    /// Returns the ids that changed (used to count applications); an
    /// empty vec means nothing changed.
    fn apply_one(&self, egraph: &mut EGraph<L, N>, eclass: Id, subst: &Subst) -> Vec<Id>;

    /// Describes the applier (for logs).
    fn describe(&self) -> String {
        "<applier>".to_owned()
    }
}

impl<L: Language + Send + Sync, N: Analysis<L>> Applier<L, N> for Pattern<L>
where
    L::Discriminant: Send + Sync,
{
    fn apply_one(&self, egraph: &mut EGraph<L, N>, eclass: Id, subst: &Subst) -> Vec<Id> {
        let new_id = self.instantiate(egraph, subst);
        let (id, did) = egraph.union(eclass, new_id);
        if did {
            vec![id]
        } else {
            vec![]
        }
    }

    fn describe(&self) -> String {
        self.to_string()
    }
}

/// A predicate deciding whether a matched substitution is eligible.
pub trait Condition<L: Language, N: Analysis<L>>: Send + Sync {
    /// Returns `true` if the rule may fire for this match.
    fn check(&self, egraph: &mut EGraph<L, N>, eclass: Id, subst: &Subst) -> bool;
}

impl<L, N, F> Condition<L, N> for F
where
    L: Language,
    N: Analysis<L>,
    F: Fn(&mut EGraph<L, N>, Id, &Subst) -> bool + Send + Sync,
{
    fn check(&self, egraph: &mut EGraph<L, N>, eclass: Id, subst: &Subst) -> bool {
        self(egraph, eclass, subst)
    }
}

/// An [`Applier`] that fires only when a [`Condition`] holds.
pub struct ConditionalApplier<L: Language, N: Analysis<L>> {
    /// The condition to check before applying.
    pub condition: Arc<dyn Condition<L, N>>,
    /// The underlying applier.
    pub applier: Arc<dyn Applier<L, N>>,
}

impl<L: Language, N: Analysis<L>> Applier<L, N> for ConditionalApplier<L, N> {
    fn apply_one(&self, egraph: &mut EGraph<L, N>, eclass: Id, subst: &Subst) -> Vec<Id> {
        if self.condition.check(egraph, eclass, subst) {
            self.applier.apply_one(egraph, eclass, subst)
        } else {
            vec![]
        }
    }

    fn describe(&self) -> String {
        format!("{} if <condition>", self.applier.describe())
    }
}

/// A named rewrite rule `lhs => rhs`.
///
/// ```
/// use egraph::{Rewrite, SymbolLang};
/// let rw: Rewrite<SymbolLang, ()> =
///     Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap();
/// assert_eq!(rw.name().as_str(), "comm-add");
/// ```
pub struct Rewrite<L: Language, N: Analysis<L>> {
    name: Symbol,
    searcher: Pattern<L>,
    applier: Arc<dyn Applier<L, N>>,
}

impl<L: Language, N: Analysis<L>> Clone for Rewrite<L, N> {
    fn clone(&self) -> Self {
        Self {
            name: self.name,
            searcher: self.searcher.clone(),
            applier: Arc::clone(&self.applier),
        }
    }
}

impl<L: Language, N: Analysis<L>> fmt::Debug for Rewrite<L, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Rewrite {{ {}: {} => {} }}",
            self.name,
            self.searcher,
            self.applier.describe()
        )
    }
}

impl<L: Language + Send + Sync + 'static, N: Analysis<L>> Rewrite<L, N>
where
    L::Discriminant: Send + Sync,
{
    /// Parses a rewrite from pattern strings.
    ///
    /// # Errors
    ///
    /// Returns an error if either side fails to parse, or if the
    /// right-hand side uses a variable the left-hand side does not bind.
    pub fn parse(name: &str, lhs: &str, rhs: &str) -> Result<Self, ParsePatternError>
    where
        L: FromOp,
    {
        let searcher: Pattern<L> = lhs.parse()?;
        let applier: Pattern<L> = rhs.parse()?;
        for v in applier.vars() {
            if !searcher.vars().contains(v) {
                return Err(ParsePatternError::from(crate::ParseRecExprError::new(
                    format!("rewrite {name}: rhs variable {v} is unbound in lhs"),
                )));
            }
        }
        Ok(Self::new(name, searcher, applier))
    }

    /// Creates a rewrite from a searcher pattern and a pattern applier.
    pub fn new(name: &str, searcher: Pattern<L>, applier: Pattern<L>) -> Self {
        Self {
            name: Symbol::new(name),
            searcher,
            applier: Arc::new(applier),
        }
    }
}

impl<L: Language, N: Analysis<L>> Rewrite<L, N> {
    /// Creates a rewrite with a custom applier.
    pub fn with_applier(name: &str, searcher: Pattern<L>, applier: Arc<dyn Applier<L, N>>) -> Self {
        Self {
            name: Symbol::new(name),
            searcher,
            applier,
        }
    }

    /// The rule name.
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// The left-hand-side pattern.
    pub fn searcher(&self) -> &Pattern<L> {
        &self.searcher
    }

    /// Searches the e-graph for matches of the left-hand side.
    pub fn search(&self, egraph: &EGraph<L, N>) -> Vec<crate::SearchMatches> {
        self.searcher.search(egraph)
    }

    /// Applies the rule to previously found matches, returning the
    /// number of applications that changed the e-graph.
    pub fn apply(&self, egraph: &mut EGraph<L, N>, matches: &[crate::SearchMatches]) -> usize {
        let mut applied = 0;
        for m in matches {
            for subst in &m.substs {
                applied += usize::from(!self.applier.apply_one(egraph, m.eclass, subst).is_empty());
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RecExpr, SymbolLang};

    type EG = EGraph<SymbolLang, ()>;
    type RW = Rewrite<SymbolLang, ()>;

    #[test]
    fn parse_checks_unbound_vars() {
        assert!(RW::parse("bad", "(+ ?a ?b)", "(+ ?a ?c)").is_err());
        assert!(RW::parse("ok", "(+ ?a ?b)", "?a").is_ok());
    }

    #[test]
    fn apply_unions_lhs_and_rhs() {
        let mut eg = EG::default();
        let expr: RecExpr<SymbolLang> = "(+ x 0)".parse().unwrap();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let rw = RW::parse("add-zero", "(+ ?a 0)", "?a").unwrap();
        let matches = rw.search(&eg);
        let n = rw.apply(&mut eg, &matches);
        eg.rebuild();
        assert_eq!(n, 1);
        let x = eg.lookup(&SymbolLang::leaf("x")).unwrap();
        assert_eq!(eg.find(root), eg.find(x));
    }

    #[test]
    fn conditional_applier_gates_application() {
        let mut eg = EG::default();
        let root = eg.add_expr(&"(+ x 0)".parse().unwrap());
        eg.rebuild();
        let searcher: Pattern<SymbolLang> = "(+ ?a 0)".parse().unwrap();
        let inner: Pattern<SymbolLang> = "?a".parse().unwrap();
        let never = ConditionalApplier {
            condition: Arc::new(|_: &mut EG, _, _: &Subst| false),
            applier: Arc::new(inner),
        };
        let rw = RW::with_applier("never", searcher, Arc::new(never));
        let matches = rw.search(&eg);
        assert_eq!(rw.apply(&mut eg, &matches), 0);
        eg.rebuild();
        let x = eg.lookup(&SymbolLang::leaf("x")).unwrap();
        assert_ne!(eg.find(root), eg.find(x));
    }
}
