//! Pluggable search backends: one abstraction over every e-matching
//! strategy the engine knows.
//!
//! A [`SearchBackend`] takes an immutable (clean) e-graph, the
//! per-rule [`RuleDirective`] envelope a scheduler produced, a
//! [`CancelToken`], an optional deadline, and a thread budget, and
//! returns per-rule match sets **in rule-index order** with per-rule
//! timings — exactly the slot shape the [`Runner`](crate::Runner)'s
//! serial merge phase consumes. Four strategies implement it:
//!
//! * [`SearchBackendKind::PerPatternVm`] — one compiled VM
//!   [`Program`](crate::machine::Program) per rule, fanned out over a
//!   work-stealing thread pool (the pre-trie default, kept as the
//!   differential baseline).
//! * [`SearchBackendKind::SharedTrie`] — the whole ruleset compiled
//!   into one [`RuleSetProgram`] trie over canonicalized instruction
//!   prefixes, executed once per root-op bucket.
//! * [`SearchBackendKind::Relational`] — generic-join relational
//!   e-matching (the crate-private `relational` module): per-operator
//!   relations
//!   shared by all rules, each pattern solved as a conjunctive query.
//! * `SearchBackendKind::Oracle` — the legacy recursive matcher
//!   (tests and the `oracle` feature only), driven with the same
//!   limit/class-order discipline.
//!
//! All backends are **match-set-equal**: on an uncancelled search they
//! produce byte-identical slots (proven by `crate::differential` and
//! the full-ruleset suite in the `boole` crate), so the choice is a
//! pure performance knob and is excluded from result-cache
//! fingerprints.

use std::str::FromStr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::machine::{past, RuleDirective, RuleSetProgram};
use crate::relational::RelationalBackend;
use crate::{Analysis, CancelToken, EGraph, Language, Pattern, SearchMatches};

/// Which strategy executes the per-iteration rule search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchBackendKind {
    /// One compiled VM program per rule (work-stealing fan-out).
    PerPatternVm,
    /// Shared-prefix multi-pattern trie (the default).
    #[default]
    SharedTrie,
    /// Generic-join relational e-matching over per-operator relations.
    Relational,
    /// The legacy recursive matcher, retained purely as a
    /// differential-testing oracle (requires the `oracle` feature).
    #[cfg(any(test, feature = "oracle"))]
    Oracle,
}

impl SearchBackendKind {
    /// Stable lowercase name (CLI flag values, benchmark JSON).
    pub fn name(self) -> &'static str {
        match self {
            SearchBackendKind::PerPatternVm => "per-pattern",
            SearchBackendKind::SharedTrie => "shared-trie",
            SearchBackendKind::Relational => "relational",
            #[cfg(any(test, feature = "oracle"))]
            SearchBackendKind::Oracle => "oracle",
        }
    }

    /// Every backend selectable in this build, in a stable order.
    pub fn all() -> &'static [SearchBackendKind] {
        &[
            SearchBackendKind::PerPatternVm,
            SearchBackendKind::SharedTrie,
            SearchBackendKind::Relational,
            #[cfg(any(test, feature = "oracle"))]
            SearchBackendKind::Oracle,
        ]
    }
}

impl std::fmt::Display for SearchBackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SearchBackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "per-pattern" | "per-pattern-vm" => Ok(SearchBackendKind::PerPatternVm),
            "shared-trie" | "trie" => Ok(SearchBackendKind::SharedTrie),
            "relational" => Ok(SearchBackendKind::Relational),
            #[cfg(any(test, feature = "oracle"))]
            "oracle" => Ok(SearchBackendKind::Oracle),
            other => Err(format!(
                "unknown search backend `{other}` (expected per-pattern, shared-trie, or relational)"
            )),
        }
    }
}

/// The result of one backend search: per-rule slots in rule-index
/// order (`Some((matches, elapsed))` for searched rules — empty for
/// [`RuleDirective::Skip`] — `None` for rules skipped by a mid-search
/// cancel/deadline trip), plus the time this call spent building
/// shared index structures (per-operator relations; zero for backends
/// without a build step).
pub struct BackendSearch {
    /// Per-rule match sets and timings, in rule-index order.
    pub slots: Vec<Option<(Vec<SearchMatches>, Duration)>>,
    /// Time spent (re)building shared relations/indexes this call.
    pub relation_build: Duration,
}

/// One e-matching strategy driving a whole iteration's rule search.
///
/// `search` may be called repeatedly (once per iteration) against
/// successive e-graph states; implementations may cache compiled or
/// derived structures across calls (`&mut self`) as long as staleness
/// is detected — the relational backend keys its tuple store on
/// [`EGraph::version`].
pub trait SearchBackend<L: Language, N: Analysis<L>> {
    /// Searches every rule against a clean e-graph under the given
    /// directive/cancel/deadline envelope, fanning out across at most
    /// `threads` workers. Slots are byte-identical at any thread count
    /// (short of mid-search cancel/deadline trips, where the *set* of
    /// skipped rules may differ).
    fn search(
        &mut self,
        egraph: &EGraph<L, N>,
        directives: &[RuleDirective],
        cancel: &CancelToken,
        deadline: Option<Instant>,
        threads: usize,
    ) -> BackendSearch;
}

/// Instantiates the backend for `kind` over the given rule LHS
/// patterns (one per rule, in rule-index order). Compilation work —
/// VM programs already live in the patterns; the trie and the
/// relational query plans are built here — happens once per returned
/// backend, not per search.
pub fn make_backend<'a, L, N>(
    kind: SearchBackendKind,
    patterns: Vec<&'a Pattern<L>>,
) -> Box<dyn SearchBackend<L, N> + 'a>
where
    L: Language + Sync,
    L::Discriminant: Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    match kind {
        SearchBackendKind::PerPatternVm => Box::new(PerPatternBackend { patterns }),
        SearchBackendKind::SharedTrie => Box::new(SharedTrieBackend {
            program: RuleSetProgram::compile(&patterns),
        }),
        SearchBackendKind::Relational => Box::new(RelationalBackend::new(patterns)),
        #[cfg(any(test, feature = "oracle"))]
        SearchBackendKind::Oracle => Box::new(OracleBackend { patterns }),
    }
}

/// Shared work-stealing driver for backends that search rule-by-rule:
/// claims rule indices from an atomic counter, checks the cancel
/// token and deadline before every claim, and merges results into
/// rule-index slots. `search_one` returns `None` when its rule's
/// search was cut short (the slot stays `None` = skipped, and the
/// worker stops claiming). Panics from workers are re-raised exactly
/// once after *all* workers joined (see the runner's parallel search
/// for why).
pub(crate) fn search_rules_slots<F>(
    n_rules: usize,
    threads: usize,
    cancel: &CancelToken,
    deadline: Option<Instant>,
    search_one: F,
) -> Vec<Option<(Vec<SearchMatches>, Duration)>>
where
    F: Fn(usize) -> Option<(Vec<SearchMatches>, Duration)> + Sync,
{
    let mut slots: Vec<Option<(Vec<SearchMatches>, Duration)>> = Vec::new();
    slots.resize_with(n_rules, || None);
    if threads <= 1 || n_rules <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            if cancel.is_cancelled() || past(deadline) {
                break;
            }
            match search_one(i) {
                Some(result) => *slot = Some(result),
                None => break,
            }
        }
        return slots;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(n_rules))
            .map(|_| {
                let (next, search_one) = (&next, &search_one);
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_rules {
                            break;
                        }
                        if cancel.is_cancelled() || past(deadline) {
                            break;
                        }
                        match search_one(i) {
                            Some(result) => done.push((i, result)),
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        // Join every worker before reacting to any panic — a second
        // panic during unwind would abort the process.
        let mut panicked = None;
        for handle in handles {
            match handle.join() {
                Ok(done) => {
                    for (i, result) in done {
                        slots[i] = Some(result);
                    }
                }
                Err(payload) => panicked = panicked.or(Some(payload)),
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
    });
    slots
}

/// The pre-trie default: each rule searched by its own compiled VM
/// program, exactly as [`Pattern::search_with_limit_and_token`] does,
/// with rules fanned out over work-stealing threads.
struct PerPatternBackend<'a, L> {
    patterns: Vec<&'a Pattern<L>>,
}

impl<L, N> SearchBackend<L, N> for PerPatternBackend<'_, L>
where
    L: Language + Sync,
    L::Discriminant: Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    fn search(
        &mut self,
        egraph: &EGraph<L, N>,
        directives: &[RuleDirective],
        cancel: &CancelToken,
        deadline: Option<Instant>,
        threads: usize,
    ) -> BackendSearch {
        assert_eq!(directives.len(), self.patterns.len());
        let patterns = &self.patterns;
        let slots =
            search_rules_slots(
                patterns.len(),
                threads,
                cancel,
                deadline,
                |i| match directives[i] {
                    RuleDirective::Skip => Some((Vec::new(), Duration::ZERO)),
                    RuleDirective::Limit(limit) => {
                        let start = Instant::now();
                        let matches =
                            patterns[i].search_with_limit_and_token(egraph, limit, cancel);
                        Some((matches, start.elapsed()))
                    }
                },
            );
        BackendSearch {
            slots,
            relation_build: Duration::ZERO,
        }
    }
}

/// The shared-prefix multi-pattern trie (see [`RuleSetProgram`]).
struct SharedTrieBackend<L: Language> {
    program: RuleSetProgram<L>,
}

impl<L, N> SearchBackend<L, N> for SharedTrieBackend<L>
where
    L: Language + Sync,
    L::Discriminant: Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    fn search(
        &mut self,
        egraph: &EGraph<L, N>,
        directives: &[RuleDirective],
        cancel: &CancelToken,
        deadline: Option<Instant>,
        threads: usize,
    ) -> BackendSearch {
        BackendSearch {
            slots: self
                .program
                .search(egraph, directives, cancel, deadline, threads),
            relation_build: Duration::ZERO,
        }
    }
}

/// The legacy recursive matcher driven with the per-pattern limit and
/// class-order discipline (differential-testing only).
#[cfg(any(test, feature = "oracle"))]
struct OracleBackend<'a, L> {
    patterns: Vec<&'a Pattern<L>>,
}

#[cfg(any(test, feature = "oracle"))]
impl<L, N> SearchBackend<L, N> for OracleBackend<'_, L>
where
    L: Language + Sync,
    L::Discriminant: Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    fn search(
        &mut self,
        egraph: &EGraph<L, N>,
        directives: &[RuleDirective],
        cancel: &CancelToken,
        deadline: Option<Instant>,
        threads: usize,
    ) -> BackendSearch {
        assert_eq!(directives.len(), self.patterns.len());
        let patterns = &self.patterns;
        let slots =
            search_rules_slots(
                patterns.len(),
                threads,
                cancel,
                deadline,
                |i| match directives[i] {
                    RuleDirective::Skip => Some((Vec::new(), Duration::ZERO)),
                    RuleDirective::Limit(limit) => {
                        oracle_search_with_limit(patterns[i], egraph, limit, cancel, deadline)
                    }
                },
            );
        BackendSearch {
            slots,
            relation_build: Duration::ZERO,
        }
    }
}

/// Whole-e-graph oracle search with the per-pattern driver's limit
/// semantics: classes in `classes_with_op` order, the boundary class
/// kept whole, `None` on a mid-rule cancel/deadline trip.
#[cfg(any(test, feature = "oracle"))]
fn oracle_search_with_limit<L: Language, N: Analysis<L>>(
    pattern: &Pattern<L>,
    egraph: &EGraph<L, N>,
    limit: usize,
    cancel: &CancelToken,
    deadline: Option<Instant>,
) -> Option<(Vec<SearchMatches>, Duration)> {
    use crate::pattern::ENodeOrVar;
    let start = Instant::now();
    let mut out = Vec::new();
    let mut total = 0usize;
    match &pattern.ast[pattern.ast.root()] {
        ENodeOrVar::ENode(root) => {
            for &id in egraph.classes_with_op(&root.discriminant()) {
                if cancel.is_cancelled() || past(deadline) {
                    return None;
                }
                if let Some(m) = pattern.search_eclass_oracle(egraph, id) {
                    total += m.substs.len();
                    out.push(m);
                }
                if total > limit {
                    break;
                }
            }
        }
        ENodeOrVar::Var(_) => {
            for class in egraph.classes() {
                if cancel.is_cancelled() || past(deadline) {
                    return None;
                }
                if let Some(m) = pattern.search_eclass_oracle(egraph, class.id) {
                    out.push(m);
                }
                total += 1;
                if total > limit {
                    break;
                }
            }
        }
    }
    Some((out, start.elapsed()))
}
