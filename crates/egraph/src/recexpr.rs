//! [`RecExpr`]: a flattened recursive expression (term DAG).

use std::fmt;
use std::str::FromStr;

use crate::{FromOp, Id, Language};

/// A recursive expression stored as a post-order array of e-nodes.
///
/// Node children always refer to *earlier* indices, so index `len - 1`
/// is the root. `RecExpr` is the concrete-term counterpart of an
/// e-class: [`crate::EGraph::add_expr`] inserts one, and
/// [`crate::Extractor`] produces one.
///
/// ```
/// use egraph::{RecExpr, SymbolLang};
/// let expr: RecExpr<SymbolLang> = "(f (g x) y)".parse().unwrap();
/// assert_eq!(expr.to_string(), "(f (g x) y)");
/// assert_eq!(expr.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RecExpr<L> {
    nodes: Vec<L>,
}

impl<L> Default for RecExpr<L> {
    fn default() -> Self {
        Self { nodes: vec![] }
    }
}

impl<L: Language> RecExpr<L> {
    /// Creates an empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `node` (whose children must already be in the expression)
    /// and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a child id is out of bounds.
    pub fn add(&mut self, node: L) -> Id {
        for &child in node.children() {
            assert!(
                child.index() < self.nodes.len(),
                "RecExpr::add: child {child} out of bounds"
            );
        }
        self.nodes.push(node);
        Id::from_index(self.nodes.len() - 1)
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the expression has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root id (last node).
    ///
    /// # Panics
    ///
    /// Panics if the expression is empty.
    pub fn root(&self) -> Id {
        assert!(!self.nodes.is_empty(), "RecExpr::root on empty expression");
        Id::from_index(self.nodes.len() - 1)
    }

    /// Iterates over the nodes in post-order.
    pub fn iter(&self) -> std::slice::Iter<'_, L> {
        self.nodes.iter()
    }

    /// The nodes as a slice, children-before-parents.
    pub fn as_slice(&self) -> &[L] {
        &self.nodes
    }

    /// Builds an expression by recursively expanding `root` with
    /// `get_node`, sharing structurally equal subterms.
    pub fn from_root_and_fn<F: FnMut(Id) -> L>(root: Id, mut get_node: F) -> Self
    where
        L: Language,
    {
        let mut expr = RecExpr::default();
        let mut memo: std::collections::HashMap<Id, Id> = Default::default();
        // iterative post-order to avoid recursion depth limits
        enum Frame {
            Visit(Id),
            Emit(Id),
        }
        let mut stack = vec![Frame::Visit(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Visit(id) => {
                    if memo.contains_key(&id) {
                        continue;
                    }
                    stack.push(Frame::Emit(id));
                    for &c in get_node(id).children() {
                        stack.push(Frame::Visit(c));
                    }
                }
                Frame::Emit(id) => {
                    if memo.contains_key(&id) {
                        continue;
                    }
                    let node = get_node(id).map_children(|c| memo[&c]);
                    let new_id = expr.add(node);
                    memo.insert(id, new_id);
                }
            }
        }
        expr
    }
}

impl<L> std::ops::Index<Id> for RecExpr<L> {
    type Output = L;
    fn index(&self, id: Id) -> &L {
        &self.nodes[id.index()]
    }
}

impl<L: Language> fmt::Display for RecExpr<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nodes.is_empty() {
            return write!(f, "()");
        }
        fn fmt_node<L: Language>(
            expr: &RecExpr<L>,
            id: Id,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let node = &expr[id];
            if node.is_leaf() {
                write!(f, "{node}")
            } else {
                write!(f, "({node}")?;
                for &c in node.children() {
                    write!(f, " ")?;
                    fmt_node(expr, c, f)?;
                }
                write!(f, ")")
            }
        }
        fmt_node(self, self.root(), f)
    }
}

/// Error from parsing a [`RecExpr`] from an s-expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRecExprError {
    message: String,
}

impl ParseRecExprError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseRecExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ParseRecExprError {}

/// A parsed s-expression tree, shared by [`RecExpr`] and
/// [`crate::Pattern`] parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Sexp {
    Atom(String),
    List(Vec<Sexp>),
}

pub(crate) fn parse_sexp(s: &str) -> Result<Sexp, ParseRecExprError> {
    let mut tokens = tokenize(s);
    let sexp = parse_tokens(&mut tokens)?;
    if let Some(extra) = tokens.next() {
        return Err(ParseRecExprError::new(format!(
            "trailing input starting at `{extra}`"
        )));
    }
    Ok(sexp)
}

fn tokenize(s: &str) -> std::vec::IntoIter<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens.into_iter()
}

fn parse_tokens(tokens: &mut std::vec::IntoIter<String>) -> Result<Sexp, ParseRecExprError> {
    match tokens.next() {
        None => Err(ParseRecExprError::new("unexpected end of input")),
        Some(tok) if tok == "(" => {
            let mut items = Vec::new();
            loop {
                match tokens.as_slice().first() {
                    None => return Err(ParseRecExprError::new("unclosed `(`")),
                    Some(t) if t == ")" => {
                        tokens.next();
                        break;
                    }
                    Some(_) => items.push(parse_tokens(tokens)?),
                }
            }
            if items.is_empty() {
                return Err(ParseRecExprError::new("empty list `()`"));
            }
            Ok(Sexp::List(items))
        }
        Some(tok) if tok == ")" => Err(ParseRecExprError::new("unexpected `)`")),
        Some(atom) => Ok(Sexp::Atom(atom)),
    }
}

pub(crate) fn sexp_into_recexpr<L: FromOp>(
    sexp: &Sexp,
    expr: &mut RecExpr<L>,
) -> Result<Id, ParseRecExprError> {
    match sexp {
        Sexp::Atom(op) => {
            let node = L::from_op(op, vec![]).map_err(|e| ParseRecExprError::new(e.to_string()))?;
            Ok(expr.add(node))
        }
        Sexp::List(items) => {
            let op = match &items[0] {
                Sexp::Atom(op) => op,
                Sexp::List(_) => {
                    return Err(ParseRecExprError::new("operator position must be an atom"))
                }
            };
            let children = items[1..]
                .iter()
                .map(|s| sexp_into_recexpr(s, expr))
                .collect::<Result<Vec<Id>, _>>()?;
            let node =
                L::from_op(op, children).map_err(|e| ParseRecExprError::new(e.to_string()))?;
            Ok(expr.add(node))
        }
    }
}

impl<L: FromOp> FromStr for RecExpr<L> {
    type Err = ParseRecExprError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let sexp = parse_sexp(s)?;
        let mut expr = RecExpr::default();
        sexp_into_recexpr(&sexp, &mut expr)?;
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["x", "(f x)", "(f (g x y) (h z))", "(+ 0 (+ x 0))"] {
            let expr: RecExpr<SymbolLang> = s.parse().unwrap();
            assert_eq!(expr.to_string(), s);
        }
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("(".parse::<RecExpr<SymbolLang>>().is_err());
        assert!(")".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("()".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("(f x) y".parse::<RecExpr<SymbolLang>>().is_err());
        assert!("((f) x)".parse::<RecExpr<SymbolLang>>().is_err());
    }

    #[test]
    fn from_root_and_fn_shares_subterms() {
        // Build (f g g) where both children are the same node.
        let nodes = [
            SymbolLang::leaf("g"),
            SymbolLang::new("f", vec![Id::from_index(0), Id::from_index(0)]),
        ];
        let expr = RecExpr::from_root_and_fn(Id::from_index(1), |id| nodes[id.index()].clone());
        assert_eq!(expr.len(), 2);
        assert_eq!(expr.to_string(), "(f g g)");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_validates_children() {
        let mut expr: RecExpr<SymbolLang> = RecExpr::default();
        expr.add(SymbolLang::new("f", vec![Id::from_index(3)]));
    }
}
