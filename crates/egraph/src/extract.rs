//! Cost-based extraction of a best term per e-class.

use std::fmt;

use crate::hash::FxHashMap;
use crate::{Analysis, EGraph, Id, Language, RecExpr};

/// A cost function over e-nodes.
///
/// `cost` receives the e-node and a callback giving the cost of each
/// child *e-class*; tree-cost extraction then selects, per class, the
/// node minimizing the total.
pub trait CostFunction<L: Language> {
    /// The cost type; must be totally ordered on the values produced.
    type Cost: PartialOrd + Clone + fmt::Debug;

    /// Computes the cost of `enode` given child-class costs.
    fn cost<C>(&mut self, enode: &L, costs: C) -> Self::Cost
    where
        C: FnMut(Id) -> Self::Cost;
}

/// Counts AST nodes (smaller is better).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstSize;

impl<L: Language> CostFunction<L> for AstSize {
    type Cost = usize;
    fn cost<C>(&mut self, enode: &L, mut costs: C) -> usize
    where
        C: FnMut(Id) -> usize,
    {
        enode
            .children()
            .iter()
            .fold(1usize, |acc, &c| acc.saturating_add(costs(c)))
    }
}

/// Measures AST depth (smaller is better).
#[derive(Debug, Clone, Copy, Default)]
pub struct AstDepth;

impl<L: Language> CostFunction<L> for AstDepth {
    type Cost = usize;
    fn cost<C>(&mut self, enode: &L, mut costs: C) -> usize
    where
        C: FnMut(Id) -> usize,
    {
        1 + enode
            .children()
            .iter()
            .map(|&c| costs(c))
            .max()
            .unwrap_or(0)
    }
}

/// Extracts the minimum-cost term of each e-class under a
/// [`CostFunction`], via bottom-up fixpoint.
///
/// ```
/// use egraph::{EGraph, Extractor, AstSize, SymbolLang, RecExpr};
/// let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
/// let big = eg.add_expr(&"(+ x (* y 0))".parse().unwrap());
/// let small = eg.add_expr(&"x".parse().unwrap());
/// eg.union(big, small);
/// eg.rebuild();
/// let extractor = Extractor::new(&eg, AstSize);
/// let (cost, best) = extractor.find_best(big);
/// assert_eq!(cost, 1);
/// assert_eq!(best.to_string(), "x");
/// ```
pub struct Extractor<'a, CF: CostFunction<L>, L: Language, N: Analysis<L>> {
    egraph: &'a EGraph<L, N>,
    cost_fn: CF,
    costs: FxHashMap<Id, (CF::Cost, L)>,
}

impl<'a, CF: CostFunction<L>, L: Language, N: Analysis<L>> Extractor<'a, CF, L, N> {
    /// Computes best costs for every e-class of `egraph`.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is not clean.
    pub fn new(egraph: &'a EGraph<L, N>, cost_fn: CF) -> Self {
        assert!(egraph.is_clean(), "extraction requires a clean e-graph");
        let mut extractor = Self {
            egraph,
            cost_fn,
            costs: FxHashMap::default(),
        };
        extractor.find_costs();
        extractor
    }

    /// Returns the best (lowest-cost) e-node of `eclass` and its cost.
    ///
    /// # Panics
    ///
    /// Panics if the class contains no extractable term (e.g. all nodes
    /// cyclic without a base case).
    pub fn find_best_node(&self, eclass: Id) -> &L {
        let id = self.egraph.find(eclass);
        &self
            .costs
            .get(&id)
            .unwrap_or_else(|| panic!("no extractable term for e-class {id}"))
            .1
    }

    /// Returns the best cost and term rooted at `eclass`.
    ///
    /// # Panics
    ///
    /// Panics if the class contains no extractable term.
    pub fn find_best(&self, eclass: Id) -> (CF::Cost, RecExpr<L>) {
        let id = self.egraph.find(eclass);
        let cost = self
            .costs
            .get(&id)
            .unwrap_or_else(|| panic!("no extractable term for e-class {id}"))
            .0
            .clone();
        let expr = RecExpr::from_root_and_fn(id, |class| {
            self.find_best_node(class)
                .map_children(|c| self.egraph.find(c))
        });
        (cost, expr)
    }

    /// Returns the computed cost of an e-class, if extractable.
    pub fn cost_of(&self, eclass: Id) -> Option<CF::Cost> {
        self.costs
            .get(&self.egraph.find(eclass))
            .map(|(c, _)| c.clone())
    }

    fn node_total_cost(&mut self, enode: &L) -> Option<CF::Cost> {
        // All children must already have costs.
        let costs = &self.costs;
        let egraph = self.egraph;
        if enode
            .children()
            .iter()
            .all(|&c| costs.contains_key(&egraph.find(c)))
        {
            Some(
                self.cost_fn
                    .cost(enode, |c| costs[&egraph.find(c)].0.clone()),
            )
        } else {
            None
        }
    }

    fn find_costs(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            for class in self.egraph.classes() {
                let id = class.id;
                let mut best: Option<(CF::Cost, L)> = self.costs.get(&id).cloned();
                for node in class.iter() {
                    if let Some(cost) = self.node_total_cost(node) {
                        let better = match &best {
                            None => true,
                            Some((c, _)) => cost < *c,
                        };
                        if better {
                            best = Some((cost, node.clone()));
                            changed = true;
                        }
                    }
                }
                if let Some(b) = best {
                    self.costs.insert(id, b);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    type EG = EGraph<SymbolLang, ()>;

    #[test]
    fn ast_size_prefers_smaller() {
        let mut eg = EG::default();
        let a = eg.add_expr(&"(f (g x))".parse().unwrap());
        let b = eg.add_expr(&"y".parse().unwrap());
        eg.union(a, b);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(a);
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "y");
    }

    #[test]
    fn ast_depth_prefers_shallow() {
        let mut eg = EG::default();
        let deep = eg.add_expr(&"(f (f (f x)))".parse().unwrap());
        let wide = eg.add_expr(&"(g x x x x)".parse().unwrap());
        eg.union(deep, wide);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstDepth);
        let (cost, best) = ex.find_best(deep);
        assert_eq!(cost, 2);
        assert!(best.to_string().starts_with("(g"));
    }

    #[test]
    fn extraction_handles_cycles() {
        // x = f(x) union x = a: must pick the acyclic `a`.
        let mut eg = EG::default();
        let a = eg.add(SymbolLang::leaf("a"));
        let fx = eg.add(SymbolLang::new("f", vec![a]));
        eg.union(a, fx);
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (cost, best) = ex.find_best(fx);
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "a");
    }

    #[test]
    fn extraction_shares_subterms() {
        let mut eg = EG::default();
        let x = eg.add(SymbolLang::leaf("x"));
        let g = eg.add(SymbolLang::new("g", vec![x]));
        let f = eg.add(SymbolLang::new("f", vec![g, g]));
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        let (_, best) = ex.find_best(f);
        // RecExpr shares the subterm g(x): 3 unique nodes.
        assert_eq!(best.len(), 3);
    }

    #[test]
    fn cost_of_missing_class_is_none_only_for_unextractable() {
        let mut eg = EG::default();
        let x = eg.add(SymbolLang::leaf("x"));
        eg.rebuild();
        let ex = Extractor::new(&eg, AstSize);
        assert_eq!(ex.cost_of(x), Some(1));
    }
}
