//! The [`EGraph`] data structure.

use std::fmt;

use crate::hash::FxHashMap;
use crate::{Analysis, Id, Language, RecExpr, UnionFind};

/// An equivalence class of e-nodes.
#[derive(Debug, Clone)]
pub struct EClass<L, D> {
    /// The canonical id of this class at the time of the last rebuild.
    pub id: Id,
    /// The e-nodes in this class (canonicalized on rebuild).
    pub nodes: Vec<L>,
    /// Parent e-nodes (and the class they live in) that reference this
    /// class; used for congruence repair. Entries may be stale between
    /// rebuilds.
    pub(crate) parents: Vec<(L, Id)>,
    /// The analysis data for this class.
    pub data: D,
}

impl<L: Language, D> EClass<L, D> {
    /// Number of e-nodes in the class.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the class has no e-nodes (never happens for a
    /// live class).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over the e-nodes in this class.
    pub fn iter(&self) -> std::slice::Iter<'_, L> {
        self.nodes.iter()
    }
}

/// An e-graph: a congruence-closed union of term DAGs.
///
/// The implementation follows `egg`'s design: hash-consing via `memo`,
/// a [`UnionFind`] over class ids, and *deferred* congruence repair —
/// [`EGraph::union`] only records work, and [`EGraph::rebuild`] restores
/// the congruence invariant. Search operations require a clean e-graph.
///
/// ```
/// use egraph::{EGraph, SymbolLang};
/// let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
/// let a = eg.add(SymbolLang::leaf("a"));
/// let b = eg.add(SymbolLang::leaf("b"));
/// let fa = eg.add(SymbolLang::new("f", vec![a]));
/// let fb = eg.add(SymbolLang::new("f", vec![b]));
/// eg.union(a, b);
/// eg.rebuild();
/// assert_eq!(eg.find(fa), eg.find(fb)); // congruence
/// ```
pub struct EGraph<L: Language, N: Analysis<L> = ()> {
    /// The analysis (user state).
    pub analysis: N,
    unionfind: UnionFind,
    memo: FxHashMap<L, Id>,
    classes: Vec<Option<EClass<L, N::Data>>>,
    /// Parents that need congruence re-processing.
    pending: Vec<(L, Id)>,
    analysis_pending: Vec<(L, Id)>,
    /// Classes containing at least one e-node with a given operator;
    /// rebuilt by [`EGraph::rebuild`] and used to speed up searches.
    by_op: FxHashMap<L::Discriminant, Vec<Id>>,
    clean: bool,
    n_unions: usize,
    /// Live-class count, maintained incrementally (`add` +1, merging
    /// `union` -1) so [`EGraph::num_classes`] is O(1).
    n_live_classes: usize,
    /// Total e-node count across live classes (sum of `nodes.len()`),
    /// maintained incrementally so [`EGraph::total_number_of_nodes`]
    /// is O(1): `add` +1, dedup during rebuild and
    /// [`EGraph::retain_nodes`] subtract.
    n_nodes: usize,
    /// Scratch buffer reused across [`EGraph::rebuild`] calls to avoid
    /// re-allocating the live-id worklist every iteration.
    scratch_ids: Vec<Id>,
    /// Mutation epoch: incremented by every state change ([`EGraph::add`]
    /// of a new node, a merging [`EGraph::union`], node removal in
    /// [`EGraph::retain_nodes`]). Derived read-side structures — the
    /// relational backend's per-operator tuple stores — key their caches
    /// on this counter so a merge invalidates them.
    version: u64,
}

impl<L: Language, N: Analysis<L> + Default> Default for EGraph<L, N> {
    fn default() -> Self {
        Self::new(N::default())
    }
}

impl<L: Language, N: Analysis<L> + Clone> Clone for EGraph<L, N>
where
    N::Data: Clone,
{
    fn clone(&self) -> Self {
        Self {
            analysis: self.analysis.clone(),
            unionfind: self.unionfind.clone(),
            memo: self.memo.clone(),
            classes: self.classes.clone(),
            pending: self.pending.clone(),
            analysis_pending: self.analysis_pending.clone(),
            by_op: self.by_op.clone(),
            clean: self.clean,
            n_unions: self.n_unions,
            n_live_classes: self.n_live_classes,
            n_nodes: self.n_nodes,
            scratch_ids: Vec::new(),
            version: self.version,
        }
    }
}

impl<L: Language, N: Analysis<L>> fmt::Debug for EGraph<L, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EGraph")
            .field("classes", &self.num_classes())
            .field("nodes", &self.total_number_of_nodes())
            .field("clean", &self.clean)
            .finish()
    }
}

impl<L: Language, N: Analysis<L>> EGraph<L, N> {
    /// Creates an empty e-graph with the given analysis.
    pub fn new(analysis: N) -> Self {
        Self {
            analysis,
            unionfind: UnionFind::default(),
            memo: FxHashMap::default(),
            classes: Vec::new(),
            pending: Vec::new(),
            analysis_pending: Vec::new(),
            by_op: FxHashMap::default(),
            clean: true,
            n_unions: 0,
            n_live_classes: 0,
            n_nodes: 0,
            scratch_ids: Vec::new(),
            version: 0,
        }
    }

    /// The mutation epoch: a counter bumped by every state change (new
    /// e-node, merging union, node removal). Two reads of the same
    /// version observe an identical e-graph, so derived structures (the
    /// relational backend's tuple stores) can be cached keyed on it and
    /// are automatically invalidated by any merge.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The classes containing at least one e-node with `op`'s
    /// discriminant (valid on a clean e-graph).
    pub fn classes_with_op(&self, op: &L::Discriminant) -> &[Id] {
        self.by_op.get(op).map_or(&[], |v| v.as_slice())
    }

    /// Number of live e-classes. O(1): the count is maintained
    /// incrementally across adds and unions.
    pub fn num_classes(&self) -> usize {
        self.n_live_classes
    }

    /// Total number of e-nodes across all classes. O(1): the count is
    /// maintained incrementally (the saturation runner polls this
    /// between every rule application to enforce its node limit).
    pub fn total_number_of_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Total number of unions performed so far.
    pub fn number_of_unions(&self) -> usize {
        self.n_unions
    }

    /// Returns `true` if the congruence invariant holds (no pending
    /// work).
    pub fn is_clean(&self) -> bool {
        self.clean
    }

    /// Finds the canonical id of `id`.
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Finds the canonical id of `id`, compressing union-find paths.
    pub fn find_mut(&mut self, id: Id) -> Id {
        self.unionfind.find_mut(id)
    }

    /// Iterates over the live e-classes. The [`ExactSizeIterator`]
    /// length comes from the O(1) live-class counter (no pre-scan of
    /// the class table).
    pub fn classes(&self) -> impl ExactSizeIterator<Item = &EClass<L, N::Data>> {
        ClassIter {
            inner: self.classes.iter(),
            remaining: self.n_live_classes,
        }
    }

    /// Returns the e-class of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid id for this e-graph.
    pub fn eclass(&self, id: Id) -> &EClass<L, N::Data> {
        let id = self.find(id);
        self.classes[id.index()]
            .as_ref()
            .expect("canonical id must have a class")
    }

    /// Mutable access to the e-class of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid id for this e-graph.
    pub fn eclass_mut(&mut self, id: Id) -> &mut EClass<L, N::Data> {
        let id = self.find_mut(id);
        self.classes[id.index()]
            .as_mut()
            .expect("canonical id must have a class")
    }

    /// Canonicalizes the children of `enode`.
    pub fn canonicalize(&self, enode: &L) -> L {
        enode.map_children(|c| self.find(c))
    }

    /// Looks up an e-node without inserting; returns its canonical class
    /// if present.
    pub fn lookup(&self, enode: &L) -> Option<Id> {
        let enode = self.canonicalize(enode);
        self.memo.get(&enode).map(|&id| self.find(id))
    }

    /// Looks up a whole expression without inserting.
    pub fn lookup_expr(&self, expr: &RecExpr<L>) -> Option<Id> {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.iter() {
            let node = node.map_children(|c| ids[c.index()]);
            ids.push(self.lookup(&node)?);
        }
        ids.last().copied()
    }

    /// Adds an e-node, returning its (possibly pre-existing) class id.
    pub fn add(&mut self, enode: L) -> Id {
        let enode = self.canonicalize(&enode);
        if let Some(&id) = self.memo.get(&enode) {
            return self.find(id);
        }
        let id = self.unionfind.make_set();
        debug_assert_eq!(id.index(), self.classes.len());
        let data = N::make(self, &enode);
        for &child in enode.children() {
            let child = self.find(child);
            let child_class = self.classes[child.index()]
                .as_mut()
                .expect("child class must exist");
            child_class.parents.push((enode.clone(), id));
        }
        self.classes.push(Some(EClass {
            id,
            nodes: vec![enode.clone()],
            parents: Vec::new(),
            data,
        }));
        self.n_live_classes += 1;
        self.n_nodes += 1;
        self.version += 1;
        self.memo.insert(enode, id);
        self.clean = false;
        N::modify(self, id);
        id
    }

    /// Adds a whole expression, returning the class of its root.
    pub fn add_expr(&mut self, expr: &RecExpr<L>) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(expr.len());
        for node in expr.iter() {
            let node = node.map_children(|c| ids[c.index()]);
            ids.push(self.add(node));
        }
        *ids.last().expect("cannot add an empty expression")
    }

    /// Unions two e-classes, returning the canonical id and whether
    /// anything changed. Congruence is restored lazily by
    /// [`EGraph::rebuild`].
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.find_mut(a);
        let b = self.find_mut(b);
        if a == b {
            return (a, false);
        }
        // Keep the class with more parents as the root to move less data.
        let a_parents = self.classes[a.index()]
            .as_ref()
            .map_or(0, |c| c.parents.len());
        let b_parents = self.classes[b.index()]
            .as_ref()
            .map_or(0, |c| c.parents.len());
        let (to, from) = if a_parents >= b_parents {
            (a, b)
        } else {
            (b, a)
        };

        self.unionfind.union_roots(to, from);
        self.n_unions += 1;
        self.n_live_classes -= 1;
        self.version += 1;
        self.clean = false;

        let from_class = self.classes[from.index()]
            .take()
            .expect("from class must exist");
        self.pending.extend(from_class.parents.iter().cloned());

        let to_class = self.classes[to.index()]
            .as_mut()
            .expect("to class must exist");
        to_class.id = to;
        to_class.nodes.extend(from_class.nodes);
        to_class.parents.extend(from_class.parents);

        let did = self.analysis.merge(&mut to_class.data, from_class.data);
        if did.0 {
            // `to`'s data changed: re-make parents' data.
            let parents = to_class.parents.clone();
            self.analysis_pending.extend(parents);
        }
        N::modify(self, to);
        (to, true)
    }

    /// Restores the congruence invariant, returning the number of
    /// unions applied during repair.
    pub fn rebuild(&mut self) -> usize {
        let mut n_repairs = 0;
        while !self.pending.is_empty() || !self.analysis_pending.is_empty() {
            while let Some((mut node, class)) = self.pending.pop() {
                let class = self.find_mut(class);
                node.update_children(|c| self.unionfind.find_mut(c));
                if let Some(old) = self.memo.insert(node, class) {
                    let (_, did) = self.union(old, class);
                    n_repairs += usize::from(did);
                }
            }
            while let Some((node, class)) = self.analysis_pending.pop() {
                let class = self.find_mut(class);
                let node = self.canonicalize(&node);
                let data = N::make(self, &node);
                let to_class = self.classes[class.index()]
                    .as_mut()
                    .expect("class must exist");
                let did = self.analysis.merge(&mut to_class.data, data);
                if did.0 {
                    let parents = to_class.parents.clone();
                    self.analysis_pending.extend(parents);
                    N::modify(self, class);
                }
            }
        }
        self.rebuild_classes();
        self.clean = true;
        n_repairs
    }

    fn rebuild_classes(&mut self) {
        // Canonicalize and dedup the node lists of every live class,
        // and rebuild the operator index. Clearing the index's buckets
        // in place (rather than dropping them) keeps their allocations
        // across rebuilds.
        for bucket in self.by_op.values_mut() {
            bucket.clear();
        }
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        ids.extend(
            (0..self.classes.len())
                .map(Id::from_index)
                .filter(|id| self.classes[id.index()].is_some()),
        );
        for &id in &ids {
            let mut nodes =
                std::mem::take(&mut self.classes[id.index()].as_mut().expect("live class").nodes);
            for node in &mut nodes {
                node.update_children(|c| self.unionfind.find_mut(c));
            }
            let before = nodes.len();
            nodes.sort_unstable();
            nodes.dedup();
            self.n_nodes -= before - nodes.len();
            for node in &nodes {
                let entry = self.by_op.entry(node.discriminant()).or_default();
                if entry.last() != Some(&id) {
                    entry.push(id);
                }
            }
            self.classes[id.index()].as_mut().expect("live class").nodes = nodes;
        }
        self.scratch_ids = ids;
    }

    /// Removes e-nodes for which `keep` returns `false`.
    ///
    /// This implements BoolE's redundant e-node pruning: after
    /// saturation, semantically duplicated e-nodes (e.g. commuted copies
    /// of a symmetric operator) can be dropped to save memory without
    /// affecting the equivalence relation. The e-graph must be clean.
    /// E-nodes are never removed if they are the last node of their
    /// class.
    ///
    /// Returns the number of removed e-nodes.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is not clean (call [`EGraph::rebuild`]).
    pub fn retain_nodes<F: FnMut(&EClass<L, N::Data>, &L) -> bool>(
        &mut self,
        mut keep: F,
    ) -> usize {
        assert!(self.clean, "retain_nodes requires a clean e-graph");
        let mut removed = 0;
        let ids: Vec<Id> = (0..self.classes.len())
            .map(Id::from_index)
            .filter(|id| self.classes[id.index()].is_some())
            .collect();
        for id in ids {
            let class = self.classes[id.index()].take().expect("live class");
            let mut kept: Vec<L> = Vec::with_capacity(class.nodes.len());
            let mut dropped: Vec<L> = Vec::new();
            for node in &class.nodes {
                if keep(&class, node) {
                    kept.push(node.clone());
                } else {
                    dropped.push(node.clone());
                }
            }
            if kept.is_empty() {
                // Never empty a class: keep the first node.
                let first = dropped.remove(0);
                kept.push(first);
            }
            removed += dropped.len();
            for node in dropped {
                self.memo.remove(&node);
            }
            self.classes[id.index()] = Some(EClass {
                nodes: kept,
                ..class
            });
        }
        self.n_nodes -= removed;
        if removed > 0 {
            self.version += 1;
        }
        removed
    }

    /// Checks internal invariants (memo canonicity, congruence); used by
    /// tests. Cheap enough for debug assertions on small graphs.
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn check_invariants(&self) {
        assert!(self.clean, "e-graph must be clean");
        assert_eq!(
            self.n_live_classes,
            self.classes.iter().filter(|c| c.is_some()).count(),
            "live-class counter must match the class table"
        );
        assert_eq!(
            self.n_nodes,
            self.classes
                .iter()
                .flatten()
                .map(|c| c.len())
                .sum::<usize>(),
            "node counter must match the class node lists"
        );
        for class in self.classes() {
            assert_eq!(class.id, self.find(class.id), "class id must be canonical");
            for node in &class.nodes {
                let canon = self.canonicalize(node);
                assert_eq!(&canon, node, "class nodes must be canonical");
                let memo_id = self
                    .memo
                    .get(&canon)
                    .map(|&id| self.find(id))
                    .unwrap_or_else(|| panic!("node {node:?} missing from memo"));
                assert_eq!(
                    memo_id,
                    self.find(class.id),
                    "memo must map node to its class"
                );
            }
        }
        // The operator index must be compact: each bucket holds exactly
        // the live canonical classes containing that operator, once
        // each, in ascending id order (Scan passes and relation builds
        // rely on never revisiting a merged class).
        let mut expected: FxHashMap<L::Discriminant, Vec<Id>> = FxHashMap::default();
        for class in self.classes() {
            for node in &class.nodes {
                let bucket = expected.entry(node.discriminant()).or_default();
                if bucket.last() != Some(&class.id) {
                    bucket.push(class.id);
                }
            }
        }
        assert_eq!(
            self.by_op.values().filter(|b| !b.is_empty()).count(),
            expected.len(),
            "by_op must have exactly one non-empty bucket per live operator"
        );
        for (disc, bucket) in &expected {
            assert_eq!(
                self.by_op.get(disc),
                Some(bucket),
                "by_op bucket must list each live canonical class once, ascending"
            );
        }
    }
}

struct ClassIter<'a, L, D> {
    inner: std::slice::Iter<'a, Option<EClass<L, D>>>,
    remaining: usize,
}

impl<'a, L, D> Iterator for ClassIter<'a, L, D> {
    type Item = &'a EClass<L, D>;
    fn next(&mut self) -> Option<Self::Item> {
        if let Some(class) = self.inner.by_ref().flatten().next() {
            self.remaining -= 1;
            return Some(class);
        }
        None
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<L, D> ExactSizeIterator for ClassIter<'_, L, D> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    type EG = EGraph<SymbolLang, ()>;

    #[test]
    fn add_is_hash_consed() {
        let mut eg = EG::default();
        let a1 = eg.add(SymbolLang::leaf("a"));
        let a2 = eg.add(SymbolLang::leaf("a"));
        assert_eq!(a1, a2);
        let f1 = eg.add(SymbolLang::new("f", vec![a1]));
        let f2 = eg.add(SymbolLang::new("f", vec![a2]));
        assert_eq!(f1, f2);
        assert_eq!(eg.num_classes(), 2);
    }

    #[test]
    fn union_and_congruence() {
        let mut eg = EG::default();
        let a = eg.add(SymbolLang::leaf("a"));
        let b = eg.add(SymbolLang::leaf("b"));
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        assert_ne!(eg.find(fa), eg.find(fb));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(fa), eg.find(fb));
        eg.check_invariants();
    }

    #[test]
    fn congruence_propagates_upward() {
        let mut eg = EG::default();
        let a = eg.add(SymbolLang::leaf("a"));
        let b = eg.add(SymbolLang::leaf("b"));
        let fa = eg.add(SymbolLang::new("f", vec![a]));
        let fb = eg.add(SymbolLang::new("f", vec![b]));
        let gfa = eg.add(SymbolLang::new("g", vec![fa]));
        let gfb = eg.add(SymbolLang::new("g", vec![fb]));
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(gfa), eg.find(gfb));
        eg.check_invariants();
    }

    #[test]
    fn lookup_and_lookup_expr() {
        let mut eg = EG::default();
        let expr: RecExpr<SymbolLang> = "(f (g x) y)".parse().unwrap();
        assert_eq!(eg.lookup_expr(&expr), None);
        let id = eg.add_expr(&expr);
        assert_eq!(eg.lookup_expr(&expr), Some(eg.find(id)));
        let missing: RecExpr<SymbolLang> = "(f (g y) y)".parse().unwrap();
        assert_eq!(eg.lookup_expr(&missing), None);
    }

    #[test]
    fn union_counts() {
        let mut eg = EG::default();
        let a = eg.add(SymbolLang::leaf("a"));
        let b = eg.add(SymbolLang::leaf("b"));
        let (_, did) = eg.union(a, b);
        assert!(did);
        let (_, did) = eg.union(a, b);
        assert!(!did);
        assert_eq!(eg.number_of_unions(), 1);
    }

    #[test]
    fn retain_nodes_prunes_but_keeps_classes() {
        let mut eg = EG::default();
        let a = eg.add(SymbolLang::leaf("a"));
        let b = eg.add(SymbolLang::leaf("b"));
        let ab = eg.add(SymbolLang::new("+", vec![a, b]));
        let ba = eg.add(SymbolLang::new("+", vec![b, a]));
        eg.union(ab, ba);
        eg.rebuild();
        let class_nodes = eg.eclass(ab).len();
        assert_eq!(class_nodes, 2);
        let removed = eg.retain_nodes(|_, node| node.children() != [b, a]);
        assert_eq!(removed, 1);
        assert_eq!(eg.eclass(ab).len(), 1);
        // Lookup for the removed node now misses.
        assert_eq!(eg.lookup(&SymbolLang::new("+", vec![b, a])), None);
        assert!(eg.lookup(&SymbolLang::new("+", vec![a, b])).is_some());
    }

    #[test]
    fn by_op_buckets_stay_compact_after_merges() {
        // Merge-heavy workload: many `f`/`g` applications collapsing
        // into few classes. After every rebuild, each `by_op` bucket
        // must list exactly the *live canonical* classes containing the
        // operator — once each — or Scan passes and relation builds
        // would revisit merged classes.
        let mut eg = EG::default();
        let leaves: Vec<Id> = (0..8)
            .map(|i| eg.add(SymbolLang::leaf(format!("x{i}"))))
            .collect();
        let mut apps = Vec::new();
        for &a in &leaves {
            for &b in &leaves {
                apps.push(eg.add(SymbolLang::new("f", vec![a, b])));
                apps.push(eg.add(SymbolLang::new("g", vec![b, a])));
            }
        }
        eg.rebuild();
        // Collapse all leaves into one class, then all apps into one.
        for w in leaves.windows(2) {
            eg.union(w[0], w[1]);
        }
        eg.rebuild();
        eg.check_invariants();
        for op in ["f", "g"] {
            let disc = SymbolLang::leaf(op).discriminant();
            let bucket = eg.classes_with_op(&disc);
            let live: Vec<Id> = eg
                .classes()
                .filter(|c| c.iter().any(|n| n.discriminant() == disc))
                .map(|c| c.id)
                .collect();
            assert_eq!(bucket, live.as_slice(), "op {op}");
        }
        eg.union(apps[0], apps[1]);
        eg.rebuild();
        eg.check_invariants();
        // One class holds all `f` and all `g` nodes now; each bucket
        // must mention it exactly once.
        let f = SymbolLang::leaf("f").discriminant();
        assert_eq!(eg.classes_with_op(&f).len(), 1);
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut eg = EG::default();
        let v0 = eg.version();
        let a = eg.add(SymbolLang::leaf("a"));
        let b = eg.add(SymbolLang::leaf("b"));
        assert!(eg.version() > v0);
        let v_add = eg.version();
        // Re-adding an existing node is a no-op: version unchanged.
        eg.add(SymbolLang::leaf("a"));
        assert_eq!(eg.version(), v_add);
        eg.union(a, b);
        assert!(eg.version() > v_add);
        let v_union = eg.version();
        // A no-op union leaves the version alone.
        eg.union(a, b);
        assert_eq!(eg.version(), v_union);
        eg.rebuild();
        let v_clean = eg.version();
        eg.rebuild();
        assert_eq!(eg.version(), v_clean, "idle rebuild must not bump");
    }

    #[test]
    fn deep_chain_unions() {
        // Chain f^n(a); union a with b and ensure the whole chain merges
        // with f^n(b).
        let mut eg = EG::default();
        let a = eg.add(SymbolLang::leaf("a"));
        let b = eg.add(SymbolLang::leaf("b"));
        let mut fa = a;
        let mut fb = b;
        for _ in 0..50 {
            fa = eg.add(SymbolLang::new("f", vec![fa]));
            fb = eg.add(SymbolLang::new("f", vec![fb]));
        }
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(eg.find(fa), eg.find(fb));
        eg.check_invariants();
    }
}
