//! The saturation driver: [`Runner`], schedulers, and per-iteration
//! statistics.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::backend::{make_backend, SearchBackend, SearchBackendKind};
use crate::hash::FxHashMap;
use crate::machine::RuleDirective;
use crate::{Analysis, CancelToken, EGraph, Id, Language, RecExpr, Rewrite, SearchMatches, Symbol};

/// Why a [`Runner`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// No rule produced a change: the e-graph is saturated.
    Saturated,
    /// The iteration limit was reached.
    IterLimit(usize),
    /// The e-graph grew past the node limit.
    NodeLimit(usize),
    /// The time limit was exceeded.
    TimeLimit(Duration),
    /// A [`CancelToken`] requested cooperative cancellation.
    Cancelled,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Saturated => write!(f, "saturated"),
            StopReason::IterLimit(n) => write!(f, "hit iteration limit {n}"),
            StopReason::NodeLimit(n) => write!(f, "hit node limit {n}"),
            StopReason::TimeLimit(d) => write!(f, "hit time limit {d:?}"),
            StopReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Cumulative per-rule accounting over one [`Runner::run`], maintained
/// by the driver for every rule regardless of scheduler: how long the
/// rule's searches took, how many substitutions they yielded (after
/// scheduling caps), and how many applications changed the e-graph.
/// The numbers are the rule-granular view of the aggregate
/// [`Iteration`] statistics, and feed per-rule saturation profiles
/// (`satbench`'s `top_rules`, the telemetry metrics registry).
#[derive(Debug, Clone, Default)]
pub struct RuleProfile {
    /// Wall-clock time spent searching this rule, summed over all
    /// iterations.
    pub search_time: Duration,
    /// Substitutions the searcher yielded (post-scheduling), summed.
    pub matches: usize,
    /// Applications that changed the e-graph, summed.
    pub applications: usize,
}

impl RuleProfile {
    /// Folds another profile (e.g. the same rule's profile from a
    /// later saturation phase) into this one.
    pub fn merge(&mut self, other: &RuleProfile) {
        self.search_time += other.search_time;
        self.matches += other.matches;
        self.applications += other.applications;
    }
}

/// Observer invoked by [`Runner::run`] after each completed iteration
/// with `(iteration_index, &Iteration)` — the hook live progress
/// reporting (telemetry event streams) attaches to.
pub type IterationHook = Box<dyn Fn(usize, &Iteration)>;

/// Statistics for one saturation iteration.
#[derive(Debug, Clone)]
pub struct Iteration {
    /// Number of e-nodes after this iteration.
    pub egraph_nodes: usize,
    /// Number of e-classes after this iteration.
    pub egraph_classes: usize,
    /// Applications per rule that changed the e-graph.
    pub applied: FxHashMap<Symbol, usize>,
    /// Total substitutions found across all rules this iteration
    /// (after scheduling caps, before application).
    pub total_matches: usize,
    /// Time spent searching for matches — the search fan-out only.
    /// The serial post-join merge (`RewriteScheduler::finish_rewrite`
    /// accounting plus [`RuleProfile`] bookkeeping) is reported
    /// separately as [`Iteration::merge_time`]; earlier versions
    /// folded it into `search_time`, silently inflating it.
    pub search_time: Duration,
    /// Time spent merging search results serially in rule-index order
    /// (scheduler accounting and per-rule profile updates) after the
    /// search fan-out joined.
    pub merge_time: Duration,
    /// Time spent applying rules.
    pub apply_time: Duration,
    /// Time spent rebuilding.
    pub rebuild_time: Duration,
    /// Time the search backend spent (re)building shared index
    /// structures this iteration — the relational backend's
    /// per-operator tuple stores. Zero for backends without a build
    /// step and on iterations served from a still-valid cache. Counted
    /// inside [`Iteration::search_time`] (the build happens in the
    /// search phase); reported separately so backend comparisons can
    /// attribute it.
    pub relation_build_time: Duration,
    /// Unions performed by congruence repair during rebuild.
    pub n_rebuilds: usize,
    /// Rules *not* searched this iteration because the time limit or a
    /// cancel request tripped mid-search. Skipped rules contribute no
    /// matches and leave their [`RuleProfile`]s untouched, so per-rule
    /// accounting only reflects searches that actually ran. Under the
    /// shared multi-pattern search, a trip *mid-trie* reports every
    /// rule of each not-fully-searched branch as skipped (partial
    /// branch results are discarded), so the count never under-reports
    /// which rules missed their search.
    pub rules_skipped: usize,
}

/// Limits configuring a [`Runner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerLimits {
    /// Maximum number of iterations (default 30).
    pub iter_limit: usize,
    /// Maximum number of e-nodes (default 10 000).
    pub node_limit: usize,
    /// Wall-clock limit (default 5 s).
    pub time_limit: Duration,
}

impl Default for RunnerLimits {
    fn default() -> Self {
        Self {
            iter_limit: 30,
            node_limit: 10_000,
            time_limit: Duration::from_secs(5),
        }
    }
}

/// Controls how often each rule is searched — the hook that implements
/// backoff scheduling.
///
/// The protocol is split into a read-only search and a mutable
/// post-merge accounting step so the runner can fan
/// [`RewriteScheduler::search_rewrite`] calls out across threads (the
/// search phase only reads the e-graph): every rule of an iteration is
/// searched first, then [`RewriteScheduler::finish_rewrite`] runs
/// serially in rule-index order over the collected results. The split
/// is behavior-preserving because each rule only consults its own
/// stats, and a ban recorded during iteration `i` cannot start before
/// iteration `i + 1`. `Send + Sync` is a supertrait so scheduler
/// objects can be shared with the search workers.
pub trait RewriteScheduler<L: Language, N: Analysis<L>>: Send + Sync {
    /// Searches `rewrite` during `iteration`, possibly skipping or
    /// truncating matches. `cancel` is the runner's cancellation
    /// token; implementations should thread it into the search so a
    /// request interrupts even a single explosive rule. Takes `&self`:
    /// the runner may call this concurrently for different rules.
    fn search_rewrite(
        &self,
        iteration: usize,
        egraph: &EGraph<L, N>,
        rewrite: &Rewrite<L, N>,
        cancel: &CancelToken,
    ) -> Vec<SearchMatches> {
        let _ = iteration;
        rewrite
            .searcher()
            .search_with_limit_and_token(egraph, usize::MAX, cancel)
    }

    /// Records the outcome of one rule's search and returns the match
    /// set the apply phase should use (possibly discarding it — e.g. a
    /// backoff ban). Called exactly once per searched rule per
    /// iteration, serially, in rule-index order — regardless of how
    /// many threads ran the searches — so scheduler state updates stay
    /// deterministic.
    fn finish_rewrite(
        &mut self,
        iteration: usize,
        rewrite: &Rewrite<L, N>,
        matches: Vec<SearchMatches>,
    ) -> Vec<SearchMatches> {
        let _ = (iteration, rewrite);
        matches
    }

    /// Returns `true` if saturation can be trusted (no rule was banned
    /// or truncated this iteration).
    fn can_stop(&mut self, iteration: usize) -> bool {
        let _ = iteration;
        true
    }

    /// Describes this scheduler's search of one rule this iteration,
    /// *if* it is expressible as "skip, or search with a substitution
    /// limit". When every rule answers `Some`, the runner may drive
    /// the shared multi-pattern trie ([`RuleSetProgram`]) instead of
    /// per-rule [`RewriteScheduler::search_rewrite`] calls — the match
    /// sets handed to [`RewriteScheduler::finish_rewrite`] are
    /// identical either way (see [`RuleSetProgram`]'s exactness
    /// notes). Schedulers with bespoke search logic keep the default
    /// `None`, which forces the per-rule path.
    fn search_directive(&self, iteration: usize, rewrite: &Rewrite<L, N>) -> Option<RuleDirective> {
        let _ = (iteration, rewrite);
        None
    }
}

/// A scheduler that always searches every rule exhaustively.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleScheduler;

impl<L: Language, N: Analysis<L>> RewriteScheduler<L, N> for SimpleScheduler {
    fn search_directive(
        &self,
        _iteration: usize,
        _rewrite: &Rewrite<L, N>,
    ) -> Option<RuleDirective> {
        Some(RuleDirective::Limit(usize::MAX))
    }
}

/// Exponential-backoff scheduler (like `egg`'s `BackoffScheduler`).
///
/// A rule that yields more than `match_limit` total substitutions in one
/// iteration is banned for `ban_length` iterations; each subsequent ban
/// doubles both numbers for that rule. This keeps explosive rules (e.g.
/// associativity) from starving the rest.
#[derive(Debug, Clone)]
pub struct BackoffScheduler {
    default_match_limit: usize,
    default_ban_length: usize,
    stats: FxHashMap<Symbol, RuleStats>,
}

#[derive(Debug, Clone)]
struct RuleStats {
    times_banned: usize,
    banned_until: usize,
    match_limit: usize,
    ban_length: usize,
}

impl BackoffScheduler {
    /// Creates a scheduler with the given initial match limit and ban
    /// length.
    pub fn new(match_limit: usize, ban_length: usize) -> Self {
        Self {
            default_match_limit: match_limit,
            default_ban_length: ban_length,
            stats: FxHashMap::default(),
        }
    }

    fn rule_stats(&mut self, name: Symbol) -> &mut RuleStats {
        self.stats.entry(name).or_insert(RuleStats {
            times_banned: 0,
            banned_until: 0,
            match_limit: self.default_match_limit,
            ban_length: self.default_ban_length,
        })
    }

    /// Read-only view of a rule's current (banned_until, allowed match
    /// budget) — for the concurrent search phase, which must not touch
    /// the stats table. Absent entries read as the defaults
    /// `rule_stats` would install.
    fn limits(&self, name: Symbol) -> (usize, usize) {
        match self.stats.get(&name) {
            Some(s) => (s.banned_until, s.match_limit << s.times_banned),
            None => (0, self.default_match_limit),
        }
    }
}

impl Default for BackoffScheduler {
    fn default() -> Self {
        Self::new(1_000, 5)
    }
}

impl<L: Language, N: Analysis<L>> RewriteScheduler<L, N> for BackoffScheduler {
    fn search_rewrite(
        &self,
        iteration: usize,
        egraph: &EGraph<L, N>,
        rewrite: &Rewrite<L, N>,
        cancel: &CancelToken,
    ) -> Vec<SearchMatches> {
        let (banned_until, allowed) = self.limits(rewrite.name());
        if iteration < banned_until {
            return vec![];
        }
        // Bounded search: an explosive rule costs at most `allowed`
        // substitutions before `finish_rewrite` bans it.
        rewrite
            .searcher()
            .search_with_limit_and_token(egraph, allowed, cancel)
    }

    fn finish_rewrite(
        &mut self,
        iteration: usize,
        rewrite: &Rewrite<L, N>,
        matches: Vec<SearchMatches>,
    ) -> Vec<SearchMatches> {
        let stats = self.rule_stats(rewrite.name());
        if iteration < stats.banned_until {
            // The search phase saw the same ban and returned nothing.
            return vec![];
        }
        let allowed = stats.match_limit << stats.times_banned;
        let total: usize = matches.iter().map(|m| m.substs.len()).sum();
        if total > allowed {
            let ban = stats.ban_length << stats.times_banned;
            stats.times_banned += 1;
            stats.banned_until = iteration + ban;
            return vec![];
        }
        matches
    }

    fn can_stop(&mut self, iteration: usize) -> bool {
        self.stats.values().all(|s| iteration >= s.banned_until)
    }

    fn search_directive(&self, iteration: usize, rewrite: &Rewrite<L, N>) -> Option<RuleDirective> {
        let (banned_until, allowed) = self.limits(rewrite.name());
        Some(if iteration < banned_until {
            RuleDirective::Skip
        } else {
            RuleDirective::Limit(allowed)
        })
    }
}

/// Drives equality saturation: repeatedly search all rules, apply the
/// matches, and rebuild, until saturation or a limit is hit.
///
/// ```
/// use egraph::{Runner, Rewrite, SymbolLang, RecExpr};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rules: Vec<Rewrite<SymbolLang, ()>> =
///     vec![Rewrite::parse("comm", "(+ ?a ?b)", "(+ ?b ?a)")?];
/// let expr: RecExpr<SymbolLang> = "(+ x y)".parse()?;
/// let runner = Runner::default().with_expr(&expr).run(&rules);
/// assert!(runner.egraph.lookup_expr(&"(+ y x)".parse()?).is_some());
/// # Ok(())
/// # }
/// ```
pub struct Runner<L: Language, N: Analysis<L> = ()> {
    /// The e-graph being saturated.
    pub egraph: EGraph<L, N>,
    /// Root e-classes registered via [`Runner::with_expr`].
    pub roots: Vec<Id>,
    /// Per-iteration statistics.
    pub iterations: Vec<Iteration>,
    /// Why the run stopped (`None` until [`Runner::run`] is called).
    pub stop_reason: Option<StopReason>,
    /// Cumulative per-rule search/match/application accounting (filled
    /// in by [`Runner::run`]).
    pub rule_profiles: FxHashMap<Symbol, RuleProfile>,
    limits: RunnerLimits,
    scheduler: Box<dyn RewriteScheduler<L, N>>,
    cancel: CancelToken,
    iteration_hook: Option<IterationHook>,
    search_threads: usize,
    backend: SearchBackendKind,
}

impl<L: Language, N: Analysis<L> + Default> Default for Runner<L, N> {
    fn default() -> Self {
        Self::new(N::default())
    }
}

impl<L: Language, N: Analysis<L>> fmt::Debug for Runner<L, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runner")
            .field("egraph", &self.egraph)
            .field("roots", &self.roots)
            .field("iterations", &self.iterations.len())
            .field("stop_reason", &self.stop_reason)
            .finish()
    }
}

impl<L: Language, N: Analysis<L>> Runner<L, N> {
    /// Creates a runner with the given analysis and a
    /// [`BackoffScheduler`].
    pub fn new(analysis: N) -> Self {
        Self {
            egraph: EGraph::new(analysis),
            roots: vec![],
            iterations: vec![],
            stop_reason: None,
            rule_profiles: FxHashMap::default(),
            limits: RunnerLimits::default(),
            scheduler: Box::new(BackoffScheduler::default()),
            cancel: CancelToken::new(),
            iteration_hook: None,
            search_threads: 1,
            backend: SearchBackendKind::default(),
        }
    }

    /// Replaces the e-graph (e.g. to continue saturating an existing
    /// graph with a different ruleset — BoolE's two-phase flow).
    pub fn with_egraph(mut self, egraph: EGraph<L, N>) -> Self {
        self.egraph = egraph;
        self
    }

    /// Adds `expr` and registers its root.
    pub fn with_expr(mut self, expr: &RecExpr<L>) -> Self {
        let id = self.egraph.add_expr(expr);
        self.roots.push(id);
        self
    }

    /// Registers an existing e-class as a root.
    pub fn with_root(mut self, root: Id) -> Self {
        self.roots.push(root);
        self
    }

    /// Sets the iteration limit.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.limits.iter_limit = limit;
        self
    }

    /// Sets the e-node limit.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.limits.node_limit = limit;
        self
    }

    /// Sets the wall-clock limit.
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.limits.time_limit = limit;
        self
    }

    /// Replaces the scheduler.
    pub fn with_scheduler(mut self, scheduler: impl RewriteScheduler<L, N> + 'static) -> Self {
        self.scheduler = Box::new(scheduler);
        self
    }

    /// Attaches a shared cancellation flag. When another thread sets it,
    /// the run stops with [`StopReason::Cancelled`] at the next check
    /// point (iteration boundary or between rules within an iteration).
    pub fn with_cancellation(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = CancelToken::from_flag(flag);
        self
    }

    /// Attaches a [`CancelToken`] (equivalent to [`Runner::with_cancellation`]).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Registers an observer invoked after every completed iteration
    /// with the iteration index and its statistics (from the thread
    /// running saturation). Used to stream live progress events.
    pub fn with_iteration_hook(mut self, hook: impl Fn(usize, &Iteration) + 'static) -> Self {
        self.iteration_hook = Some(Box::new(hook));
        self
    }

    /// Sets how many threads the per-iteration rule search fans out
    /// across. `1` (the default) searches serially on the calling
    /// thread — the determinism oracle; `0` means one thread per
    /// available CPU. Any value produces identical results: the search
    /// phase is read-only over the e-graph, and the match sets are
    /// merged (and scheduler state updated) in rule-index order before
    /// the apply phase, so batch output is byte-identical to serial.
    pub fn with_search_threads(mut self, threads: usize) -> Self {
        self.search_threads = threads;
        self
    }

    /// Selects the e-matching strategy driving each iteration's rule
    /// search (default [`SearchBackendKind::SharedTrie`]). The backend
    /// is only engaged when the scheduler answers
    /// `RewriteScheduler::search_directive` for every rule;
    /// schedulers with bespoke search logic fall back to per-rule
    /// `RewriteScheduler::search_rewrite` calls regardless of the
    /// selection. Match sets are byte-identical across backends, so
    /// this is a pure performance knob.
    pub fn with_search_backend(mut self, backend: SearchBackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Enables or disables the shared multi-pattern search.
    ///
    /// Deprecated alias (since the search-backend refactor; will be
    /// removed one release later): forwards to
    /// [`Runner::with_search_backend`] with
    /// [`SearchBackendKind::SharedTrie`] (`true`, the default) or
    /// [`SearchBackendKind::PerPatternVm`] (`false`), which preserve
    /// this knob's two historical behaviors byte for byte.
    pub fn with_shared_search(self, enabled: bool) -> Self {
        self.with_search_backend(if enabled {
            SearchBackendKind::SharedTrie
        } else {
            SearchBackendKind::PerPatternVm
        })
    }

    /// Runs saturation with `rules` until a stop condition; returns
    /// `self` with statistics filled in.
    pub fn run(mut self, rules: &[Rewrite<L, N>]) -> Self
    where
        L: Sync,
        L::Discriminant: Sync,
        N: Sync,
        N::Data: Sync,
    {
        let start = Instant::now();
        self.egraph.rebuild();
        let threads = match self.search_threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
        .min(rules.len().max(1));
        // The selected backend is instantiated lazily, once per run,
        // the first iteration the scheduler's directives allow it
        // (compiling the trie / relational query plans exactly once).
        let mut backend: Option<Box<dyn SearchBackend<L, N> + '_>> = None;
        for iteration in 0..self.limits.iter_limit {
            if self.cancel.is_cancelled() {
                self.stop_reason = Some(StopReason::Cancelled);
                return self;
            }
            let search_start = Instant::now();
            // Search phase (time limit and cancellation enforced per
            // rule — or per trie branch and class under the shared
            // search — not only per iteration, so one explosive rule
            // cannot stall the run or delay a cancel request). The
            // searches only read the e-graph; scheduler state and
            // profiles are updated afterwards, serially, in rule-index
            // order, so the fan-out below never changes results.
            let directives: Option<Vec<RuleDirective>> = rules
                .iter()
                .map(|r| self.scheduler.search_directive(iteration, r))
                .collect();
            let (searched, relation_build_time) = match directives {
                Some(directives) => {
                    let backend = backend.get_or_insert_with(|| {
                        let patterns: Vec<_> = rules.iter().map(|r| r.searcher()).collect();
                        make_backend(self.backend, patterns)
                    });
                    let deadline = start.checked_add(self.limits.time_limit);
                    let result =
                        backend.search(&self.egraph, &directives, &self.cancel, deadline, threads);
                    (result.slots, result.relation_build)
                }
                // A scheduler with bespoke search logic (any rule's
                // directive is `None`) forces the legacy per-rule
                // scheduler-driven path, whatever backend is selected.
                None if threads > 1 => (
                    self.search_parallel(rules, iteration, start, threads),
                    Duration::ZERO,
                ),
                None => (self.search_serial(rules, iteration, start), Duration::ZERO),
            };
            let search_time = search_start.elapsed();

            // Merge phase: serial, rule-index order, regardless of how
            // the searches fanned out. Timed separately from the
            // search — scheduler accounting is not match finding.
            let merge_start = Instant::now();
            let mut all_matches = Vec::with_capacity(rules.len());
            let mut rules_skipped = 0usize;
            for (rule, slot) in rules.iter().zip(searched) {
                match slot {
                    Some((matches, elapsed)) => {
                        let matches = self.scheduler.finish_rewrite(iteration, rule, matches);
                        let profile = self.rule_profiles.entry(rule.name()).or_default();
                        profile.search_time += elapsed;
                        profile.matches += matches.iter().map(|m| m.substs.len()).sum::<usize>();
                        all_matches.push(matches);
                    }
                    // Skipped by a mid-search time-limit/cancel trip:
                    // no matches, and the rule's profile is untouched.
                    None => {
                        rules_skipped += 1;
                        all_matches.push(vec![]);
                    }
                }
            }
            let total_matches = all_matches.iter().flatten().map(|m| m.substs.len()).sum();
            let merge_time = merge_start.elapsed();

            // Apply phase. The node limit is also enforced *between*
            // rules so a single explosive iteration cannot overshoot by
            // more than one rule's worth of matches.
            let apply_start = Instant::now();
            let mut applied: FxHashMap<Symbol, usize> = FxHashMap::default();
            let mut apply_aborted = false;
            for (rule, matches) in rules.iter().zip(&all_matches) {
                if self.egraph.total_number_of_nodes() > self.limits.node_limit
                    || start.elapsed() > self.limits.time_limit
                    || self.cancel.is_cancelled()
                {
                    apply_aborted = true;
                    break;
                }
                let n = rule.apply(&mut self.egraph, matches);
                if n > 0 {
                    *applied.entry(rule.name()).or_insert(0) += n;
                    self.rule_profiles
                        .entry(rule.name())
                        .or_default()
                        .applications += n;
                }
            }
            let apply_time = apply_start.elapsed();

            // Rebuild phase.
            let rebuild_start = Instant::now();
            let n_rebuilds = self.egraph.rebuild();
            let rebuild_time = rebuild_start.elapsed();

            let saturated =
                applied.is_empty() && !apply_aborted && self.scheduler.can_stop(iteration + 1);
            self.iterations.push(Iteration {
                egraph_nodes: self.egraph.total_number_of_nodes(),
                egraph_classes: self.egraph.num_classes(),
                applied,
                total_matches,
                search_time,
                merge_time,
                apply_time,
                rebuild_time,
                relation_build_time,
                n_rebuilds,
                rules_skipped,
            });
            if let Some(hook) = &self.iteration_hook {
                hook(iteration, self.iterations.last().unwrap());
            }

            if self.cancel.is_cancelled() {
                self.stop_reason = Some(StopReason::Cancelled);
                return self;
            }
            if saturated {
                self.stop_reason = Some(StopReason::Saturated);
                return self;
            }
            if self.egraph.total_number_of_nodes() > self.limits.node_limit {
                self.stop_reason = Some(StopReason::NodeLimit(self.limits.node_limit));
                return self;
            }
            if start.elapsed() > self.limits.time_limit {
                self.stop_reason = Some(StopReason::TimeLimit(self.limits.time_limit));
                return self;
            }
        }
        self.stop_reason = Some(StopReason::IterLimit(self.limits.iter_limit));
        self
    }

    /// Serial search phase: one rule at a time on the calling thread.
    /// Breaks out as soon as the time limit or a cancel request trips —
    /// the remaining rules stay `None` (skipped), instead of being
    /// scanned just to push empty match vecs.
    fn search_serial(
        &self,
        rules: &[Rewrite<L, N>],
        iteration: usize,
        start: Instant,
    ) -> Vec<Option<(Vec<SearchMatches>, Duration)>> {
        let mut searched: Vec<Option<(Vec<SearchMatches>, Duration)>> = Vec::new();
        searched.resize_with(rules.len(), || None);
        for (slot, rule) in searched.iter_mut().zip(rules) {
            if start.elapsed() > self.limits.time_limit || self.cancel.is_cancelled() {
                break;
            }
            let rule_start = Instant::now();
            let matches =
                self.scheduler
                    .search_rewrite(iteration, &self.egraph, rule, &self.cancel);
            *slot = Some((matches, rule_start.elapsed()));
        }
        searched
    }

    /// Parallel search phase: `threads` scoped workers pull rule
    /// indices from a shared atomic counter (work stealing — rule
    /// costs vary by orders of magnitude) and search against the
    /// shared immutable e-graph. Results land in per-rule slots, so
    /// the caller's merge runs in rule-index order no matter which
    /// worker searched what. Each worker checks the time limit and the
    /// cancel token before every rule it claims.
    fn search_parallel(
        &self,
        rules: &[Rewrite<L, N>],
        iteration: usize,
        start: Instant,
        threads: usize,
    ) -> Vec<Option<(Vec<SearchMatches>, Duration)>>
    where
        L: Sync,
        L::Discriminant: Sync,
        N: Sync,
        N::Data: Sync,
    {
        let next = AtomicUsize::new(0);
        let egraph = &self.egraph;
        let scheduler = &*self.scheduler;
        let cancel = &self.cancel;
        let time_limit = self.limits.time_limit;
        let mut searched: Vec<Option<(Vec<SearchMatches>, Duration)>> = Vec::new();
        searched.resize_with(rules.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut found = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= rules.len() {
                                break;
                            }
                            if start.elapsed() > time_limit || cancel.is_cancelled() {
                                break;
                            }
                            let rule_start = Instant::now();
                            let matches =
                                scheduler.search_rewrite(iteration, egraph, &rules[i], cancel);
                            found.push((i, matches, rule_start.elapsed()));
                        }
                        found
                    })
                })
                .collect();
            // Join *every* worker before reacting to any panic.
            // Unwinding out of this loop on the first Err would hit
            // the scope's implicit join of the remaining threads; if
            // one of those also panicked, panic-during-unwind aborts
            // the whole process. Collect first, then re-raise one
            // payload cleanly — the layer above (the service's
            // per-job catch_unwind) turns it into a typed outcome.
            let mut panicked = None;
            for handle in handles {
                match handle.join() {
                    Ok(found) => {
                        for (i, matches, elapsed) in found {
                            searched[i] = Some((matches, elapsed));
                        }
                    }
                    Err(payload) => panicked = panicked.or(Some(payload)),
                }
            }
            if let Some(payload) = panicked {
                std::panic::resume_unwind(payload);
            }
        });
        searched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AstSize, Extractor, SymbolLang};

    type RW = Rewrite<SymbolLang, ()>;

    fn math_rules() -> Vec<RW> {
        vec![
            RW::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            RW::parse("comm-mul", "(* ?a ?b)", "(* ?b ?a)").unwrap(),
            RW::parse("assoc-add", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))").unwrap(),
            RW::parse("add-zero", "(+ ?a 0)", "?a").unwrap(),
            RW::parse("mul-one", "(* ?a 1)", "?a").unwrap(),
            RW::parse("mul-zero", "(* ?a 0)", "0").unwrap(),
            RW::parse("distr", "(* ?a (+ ?b ?c))", "(+ (* ?a ?b) (* ?a ?c))").unwrap(),
        ]
    }

    #[test]
    fn saturates_simple_identity() {
        let expr = "(+ 0 (* 1 x))".parse().unwrap();
        let runner = Runner::default().with_expr(&expr).run(&math_rules());
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
        let extractor = Extractor::new(&runner.egraph, AstSize);
        let (cost, best) = extractor.find_best(runner.roots[0]);
        assert_eq!(cost, 1);
        assert_eq!(best.to_string(), "x");
    }

    #[test]
    fn node_limit_stops_explosive_rules() {
        let expr = "(+ a (+ b (+ c (+ d (+ e f)))))".parse().unwrap();
        let runner = Runner::default()
            .with_expr(&expr)
            .with_node_limit(50)
            .with_scheduler(SimpleScheduler)
            .run(&math_rules());
        assert!(matches!(runner.stop_reason, Some(StopReason::NodeLimit(_))));
    }

    #[test]
    fn iter_limit_respected() {
        let expr = "(+ a (+ b (+ c d)))".parse().unwrap();
        let runner = Runner::default()
            .with_expr(&expr)
            .with_iter_limit(1)
            .run(&math_rules());
        assert!(matches!(
            runner.stop_reason,
            Some(StopReason::IterLimit(1)) | Some(StopReason::Saturated)
        ));
        assert!(runner.iterations.len() <= 1);
    }

    #[test]
    fn iterations_record_applications() {
        let expr = "(+ x 0)".parse().unwrap();
        let runner = Runner::default().with_expr(&expr).run(&math_rules());
        let total: usize = runner
            .iterations
            .iter()
            .flat_map(|i| i.applied.values())
            .sum();
        assert!(total >= 1);
    }

    #[test]
    fn pre_cancelled_run_stops_before_first_iteration() {
        let token = crate::CancelToken::new();
        token.cancel();
        let expr = "(+ a (+ b (+ c d)))".parse().unwrap();
        let runner = Runner::default()
            .with_expr(&expr)
            .with_cancellation(token.flag())
            .run(&math_rules());
        assert_eq!(runner.stop_reason, Some(StopReason::Cancelled));
        assert!(runner.iterations.is_empty());
    }

    #[test]
    fn uncancelled_token_does_not_change_behavior() {
        let expr = "(+ 0 (* 1 x))".parse().unwrap();
        let runner = Runner::default()
            .with_expr(&expr)
            .with_cancel_token(crate::CancelToken::new())
            .run(&math_rules());
        assert_eq!(runner.stop_reason, Some(StopReason::Saturated));
    }

    #[test]
    fn two_phase_continuation() {
        // Phase 1: only commutativity. Phase 2: add-zero on the same
        // e-graph, mirroring BoolE's incremental R1/R2 flow.
        let expr = "(+ 0 x)".parse().unwrap();
        let phase1 = vec![RW::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap()];
        let phase2 = vec![RW::parse("add-zero", "(+ ?a 0)", "?a").unwrap()];
        let r1 = Runner::default().with_expr(&expr).run(&phase1);
        let roots = r1.roots.clone();
        let r2 = Runner::new(())
            .with_egraph(r1.egraph)
            .with_root(roots[0])
            .run(&phase2);
        let x = r2.egraph.lookup(&SymbolLang::leaf("x")).unwrap();
        assert_eq!(r2.egraph.find(roots[0]), r2.egraph.find(x));
    }

    #[test]
    fn expired_time_limit_skips_search_and_leaves_profiles_untouched() {
        let expr = "(+ a (+ b (+ c d)))".parse().unwrap();
        let rules = math_rules();
        let runner = Runner::default()
            .with_expr(&expr)
            .with_time_limit(Duration::ZERO)
            .run(&rules);
        assert!(matches!(runner.stop_reason, Some(StopReason::TimeLimit(_))));
        assert_eq!(runner.iterations.len(), 1);
        // The search loop must break out, not scan the remaining rules:
        // every rule counts as skipped and none acquires a profile.
        assert_eq!(runner.iterations[0].rules_skipped, rules.len());
        assert_eq!(runner.iterations[0].total_matches, 0);
        assert!(runner.rule_profiles.is_empty());
    }

    #[test]
    fn parallel_search_is_identical_to_serial() {
        let expr: RecExpr<SymbolLang> = "(* (+ a (+ b (+ c (+ d 0)))) 1)".parse().unwrap();
        // A tight backoff so bans actually fire: the parallel merge
        // must reproduce the serial ban schedule exactly.
        let run_with = |threads: usize| {
            Runner::default()
                .with_expr(&expr)
                .with_scheduler(BackoffScheduler::new(4, 2))
                .with_iter_limit(12)
                .with_node_limit(20_000)
                .with_search_threads(threads)
                .run(&math_rules())
        };
        let serial = run_with(1);
        for threads in [2, 4, 7] {
            let par = run_with(threads);
            assert_eq!(par.stop_reason, serial.stop_reason, "threads={threads}");
            assert_eq!(par.iterations.len(), serial.iterations.len());
            for (p, s) in par.iterations.iter().zip(&serial.iterations) {
                assert_eq!(p.egraph_nodes, s.egraph_nodes);
                assert_eq!(p.egraph_classes, s.egraph_classes);
                assert_eq!(p.applied, s.applied);
                assert_eq!(p.total_matches, s.total_matches);
                assert_eq!(p.rules_skipped, 0);
            }
            assert_eq!(
                par.egraph.total_number_of_nodes(),
                serial.egraph.total_number_of_nodes()
            );
            assert_eq!(par.egraph.num_classes(), serial.egraph.num_classes());
            let (serial_cost, serial_best) =
                Extractor::new(&serial.egraph, AstSize).find_best(serial.roots[0]);
            let (par_cost, par_best) = Extractor::new(&par.egraph, AstSize).find_best(par.roots[0]);
            assert_eq!(par_cost, serial_cost);
            assert_eq!(par_best.to_string(), serial_best.to_string());
        }
    }

    /// Cancels the shared token partway through an iteration's search
    /// phase (after `after` rule searches), from inside a worker.
    struct CancelMidSearch {
        token: crate::CancelToken,
        after: usize,
        searches: AtomicUsize,
    }

    impl<L: Language, N: Analysis<L>> RewriteScheduler<L, N> for CancelMidSearch {
        fn search_rewrite(
            &self,
            _iteration: usize,
            egraph: &EGraph<L, N>,
            rewrite: &Rewrite<L, N>,
            cancel: &CancelToken,
        ) -> Vec<SearchMatches> {
            if self.searches.fetch_add(1, Ordering::Relaxed) + 1 >= self.after {
                self.token.cancel();
            }
            rewrite
                .searcher()
                .search_with_limit_and_token(egraph, usize::MAX, cancel)
        }
    }

    #[test]
    fn parallel_mid_search_cancellation_stops_the_run() {
        let token = crate::CancelToken::new();
        let expr = "(+ a (+ b (+ c (+ d (+ e f)))))".parse().unwrap();
        let runner = Runner::default()
            .with_expr(&expr)
            .with_scheduler(CancelMidSearch {
                token: token.clone(),
                after: 2,
                searches: AtomicUsize::new(0),
            })
            .with_iter_limit(50)
            .with_node_limit(1_000_000)
            .with_cancellation(token.flag())
            .with_search_threads(4)
            .run(&math_rules());
        assert_eq!(runner.stop_reason, Some(StopReason::Cancelled));
        assert!(runner.iterations.len() <= 1);
        if let Some(iter) = runner.iterations.first() {
            // At least the rules claimed after the trip were skipped
            // (workers check the token before every claim, so with 7
            // rules and a trip after 2 searches some must remain).
            assert!(iter.rules_skipped > 0, "expected skipped rules");
        }
    }

    /// Panics from inside one worker's rule search after `after`
    /// searches, leaving the other workers running normally.
    struct PanicMidSearch {
        after: usize,
        searches: AtomicUsize,
    }

    impl<L: Language, N: Analysis<L>> RewriteScheduler<L, N> for PanicMidSearch {
        fn search_rewrite(
            &self,
            _iteration: usize,
            egraph: &EGraph<L, N>,
            rewrite: &Rewrite<L, N>,
            cancel: &CancelToken,
        ) -> Vec<SearchMatches> {
            if self.searches.fetch_add(1, Ordering::Relaxed) + 1 >= self.after {
                panic!("scheduler exploded on purpose");
            }
            rewrite
                .searcher()
                .search_with_limit_and_token(egraph, usize::MAX, cancel)
        }
    }

    #[test]
    fn panicking_search_worker_propagates_its_payload_cleanly() {
        // The join loop must collect *all* workers before re-raising:
        // unwinding mid-join while another scoped worker has also
        // panicked would abort the process (panic during unwind), and
        // an aborted test binary is exactly what this guards against.
        // Run the single- and many-thread shapes; in both, the caller
        // must observe an unwind carrying the original payload.
        for threads in [1, 4] {
            let result = std::panic::catch_unwind(|| {
                let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c (+ d (+ e f)))))".parse().unwrap();
                Runner::default()
                    .with_expr(&expr)
                    .with_scheduler(PanicMidSearch {
                        after: 2,
                        searches: AtomicUsize::new(0),
                    })
                    .with_search_threads(threads)
                    .run(&math_rules())
            });
            let payload = result.expect_err("the scheduler panic must propagate");
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .expect("payload should be the original &str");
            assert_eq!(
                message, "scheduler exploded on purpose",
                "threads={threads}"
            );
        }
    }

    #[test]
    fn shared_search_is_identical_to_per_pattern() {
        let expr: RecExpr<SymbolLang> = "(* (+ a (+ b (+ c (+ d 0)))) 1)".parse().unwrap();
        // Tight backoff so bans fire: the shared trie must reproduce
        // the per-pattern ban schedule (and everything downstream of
        // it) exactly, at every thread count.
        let run_with = |shared: bool, threads: usize| {
            Runner::default()
                .with_expr(&expr)
                .with_scheduler(BackoffScheduler::new(4, 2))
                .with_iter_limit(12)
                .with_node_limit(20_000)
                .with_shared_search(shared)
                .with_search_threads(threads)
                .run(&math_rules())
        };
        let baseline = run_with(false, 1);
        for (shared, threads) in [(true, 1), (true, 2), (true, 4)] {
            let candidate = run_with(shared, threads);
            assert_eq!(
                candidate.stop_reason, baseline.stop_reason,
                "shared={shared} threads={threads}"
            );
            assert_eq!(candidate.iterations.len(), baseline.iterations.len());
            for (c, b) in candidate.iterations.iter().zip(&baseline.iterations) {
                assert_eq!(c.egraph_nodes, b.egraph_nodes);
                assert_eq!(c.egraph_classes, b.egraph_classes);
                assert_eq!(c.applied, b.applied);
                assert_eq!(c.total_matches, b.total_matches);
                assert_eq!(c.rules_skipped, 0);
            }
            let (b_cost, b_best) =
                Extractor::new(&baseline.egraph, AstSize).find_best(baseline.roots[0]);
            let (c_cost, c_best) =
                Extractor::new(&candidate.egraph, AstSize).find_best(candidate.roots[0]);
            assert_eq!(c_cost, b_cost);
            assert_eq!(c_best.to_string(), b_best.to_string());
        }
    }

    #[test]
    fn shared_search_matches_simple_scheduler_too() {
        let expr: RecExpr<SymbolLang> = "(+ a (+ b (+ c 0)))".parse().unwrap();
        let run_with = |shared: bool| {
            Runner::default()
                .with_expr(&expr)
                .with_scheduler(SimpleScheduler)
                .with_iter_limit(4)
                .with_node_limit(50_000)
                .with_shared_search(shared)
                .run(&math_rules())
        };
        let per_pattern = run_with(false);
        let shared = run_with(true);
        assert_eq!(shared.stop_reason, per_pattern.stop_reason);
        assert_eq!(shared.iterations.len(), per_pattern.iterations.len());
        for (s, p) in shared.iterations.iter().zip(&per_pattern.iterations) {
            assert_eq!(s.egraph_nodes, p.egraph_nodes);
            assert_eq!(s.applied, p.applied);
            assert_eq!(s.total_matches, p.total_matches);
        }
    }

    #[test]
    fn per_rule_search_times_sum_to_at_most_search_phase_time() {
        // The honest-timing regression test: per-rule search slots are
        // disjoint shares of the search fan-out, so their sum can never
        // exceed the reported search phase time (it used to, because
        // `search_time` silently included the post-join merge loop).
        let expr: RecExpr<SymbolLang> = "(* (+ a (+ b (+ c (+ d 0)))) 1)".parse().unwrap();
        for shared in [true, false] {
            let runner = Runner::default()
                .with_expr(&expr)
                .with_iter_limit(8)
                .with_node_limit(20_000)
                .with_shared_search(shared)
                .run(&math_rules());
            let phase_total: Duration = runner.iterations.iter().map(|i| i.search_time).sum();
            let rule_total: Duration = runner.rule_profiles.values().map(|p| p.search_time).sum();
            assert!(
                rule_total <= phase_total,
                "shared={shared}: per-rule search times ({rule_total:?}) exceed the \
                 search phase total ({phase_total:?})"
            );
        }
    }

    #[test]
    fn backoff_bans_explosive_rule_but_allows_progress() {
        let expr = "(+ a (+ b (+ c (+ d 0))))".parse().unwrap();
        let runner = Runner::default()
            .with_expr(&expr)
            .with_scheduler(BackoffScheduler::new(2, 2))
            .with_iter_limit(20)
            .with_node_limit(100_000)
            .run(&math_rules());
        // add-zero must still have fired despite comm/assoc being banned.
        let simplified = runner
            .egraph
            .lookup_expr(&"(+ a (+ b (+ c d)))".parse().unwrap());
        assert!(simplified.is_some());
    }
}
