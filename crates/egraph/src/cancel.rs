//! Cooperative cancellation for long-running saturation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cheaply clonable cancellation token.
///
/// All clones share one flag: once any clone calls [`cancel`], every
/// holder observes [`is_cancelled`] as `true`. The [`Runner`] checks
/// its token between iterations and between rules, so cancellation
/// latency is bounded by a single rule search/apply step, not by a
/// whole saturation run.
///
/// [`cancel`]: CancelToken::cancel
/// [`is_cancelled`]: CancelToken::is_cancelled
/// [`Runner`]: crate::Runner
///
/// ```
/// use egraph::CancelToken;
/// let token = CancelToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_cancelled());
/// token.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing shared flag (e.g. one owned by a service's
    /// job table).
    pub fn from_flag(flag: Arc<AtomicBool>) -> Self {
        CancelToken { flag }
    }

    /// The shared flag backing this token.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Returns `true` once any clone has requested cancellation.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        // Idempotent.
        b.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn from_flag_aliases_the_arc() {
        let flag = Arc::new(AtomicBool::new(false));
        let token = CancelToken::from_flag(Arc::clone(&flag));
        flag.store(true, Ordering::Relaxed);
        assert!(token.is_cancelled());
    }

    #[test]
    fn cross_thread_cancellation() {
        let token = CancelToken::new();
        let remote = token.clone();
        let handle = std::thread::spawn(move || remote.cancel());
        handle.join().unwrap();
        assert!(token.is_cancelled());
    }
}
