//! The compiled e-matching virtual machine.
//!
//! Following the abstract-machine design of egg (Willsey et al., POPL
//! 2021), every [`Pattern`](crate::Pattern) is compiled **once** (at
//! construction) into a linear [`Program`] of instructions executed
//! against a bank of registers holding e-class [`Id`]s:
//!
//! * [`Instruction::Bind`] — iterate the e-nodes of the class in
//!   register `i` that match a pattern operator, writing each node's
//!   children into fresh registers (the only backtracking point);
//! * [`Instruction::Compare`] — require two registers to name the same
//!   e-class (non-linear patterns, e.g. `(& ?a ?a)`);
//! * [`Instruction::Lookup`] — require the register to be the class of
//!   a *ground* (variable-free) subterm, resolved once per search via
//!   the e-graph's hash-cons `memo` instead of structural scanning;
//! * [`Instruction::Scan`] — enumerate every e-class (emitted only for
//!   root-variable patterns like `?x`, where the driver loop performs
//!   the enumeration).
//!
//! Unlike the classic backtracking matcher this replaces, the VM never
//! allocates or clones a substitution while searching: bindings live in
//! the register bank, and a [`Subst`] is materialized only for each
//! *surviving* match. The work budget
//! ([`MATCH_WORK_BUDGET`](crate::MATCH_WORK_BUDGET)), the per-class
//! match cap ([`MAX_SUBSTS_PER_CLASS`](crate::MAX_SUBSTS_PER_CLASS)),
//! and a cooperative [`CancelToken`] are all enforced *inside* the VM
//! loop, so cancellation latency is bounded by
//! [`CANCEL_CHECK_QUANTUM`] e-node visits rather than by a whole rule
//! search.

use crate::pattern::ENodeOrVar;
use crate::{Analysis, CancelToken, EGraph, Id, Language, RecExpr, Subst, Var};

/// A register index in the VM's register bank.
pub type Reg = u16;

/// One instruction of a compiled pattern program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction<L> {
    /// Iterate the e-nodes of class `regs[i]` whose operator and arity
    /// match `node`; for each, write the children into
    /// `regs[out..out + arity]` and continue (backtracking point).
    Bind {
        /// The pattern e-node to match (only its operator and arity
        /// are consulted; its child ids index the pattern AST).
        node: L,
        /// Register holding the class to scan.
        i: Reg,
        /// First output register for the matched node's children.
        out: Reg,
    },
    /// Continue only if `regs[i]` and `regs[j]` are the same class.
    Compare {
        /// First register.
        i: Reg,
        /// Second register.
        j: Reg,
    },
    /// Continue only if `regs[i]` is the class of the ground term
    /// `ground_terms[term]` (resolved through the hash-cons memo once
    /// per search).
    Lookup {
        /// Index into [`Program`]'s ground-term table.
        term: usize,
        /// Register to compare against.
        i: Reg,
    },
    /// Enumerate all e-classes into register `out`. Emitted only as
    /// the first (and sole) instruction of root-variable patterns; the
    /// search driver performs the class enumeration.
    Scan {
        /// Register receiving each class.
        out: Reg,
    },
}

/// How often (in e-node visits) the VM polls its [`CancelToken`]: a
/// cancellation request stops the search within one such quantum.
pub const CANCEL_CHECK_QUANTUM: usize = 256;

/// Why a program run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The whole match space was enumerated.
    Complete,
    /// The per-class substitution cap was reached.
    SubstLimit,
    /// The work budget was exhausted.
    BudgetExhausted,
    /// The [`CancelToken`] was set; the driver should stop the whole
    /// search, not just this class.
    Cancelled,
}

/// A pattern compiled to VM instructions (see the module docs).
#[derive(Debug, Clone)]
pub struct Program<L> {
    instructions: Vec<Instruction<L>>,
    ground_terms: Vec<RecExpr<L>>,
    /// `(var, register)` pairs in first-occurrence order; materializing
    /// a match reads these registers into a [`Subst`].
    subst_template: Vec<(Var, Reg)>,
    n_regs: usize,
}

impl<L: Language> Program<L> {
    /// Compiles a pattern AST. Instructions follow the pattern's
    /// depth-first preorder (root first, children left to right), which
    /// keeps the VM's match enumeration order aligned with the
    /// classic recursive matcher.
    pub fn compile(ast: &RecExpr<ENodeOrVar<L>>) -> Self {
        let ground = ground_map(ast);
        let mut prog = Program {
            instructions: Vec::new(),
            ground_terms: Vec::new(),
            subst_template: Vec::new(),
            n_regs: 1,
        };
        let root = ast.root();
        if let ENodeOrVar::Var(v) = &ast[root] {
            prog.instructions.push(Instruction::Scan { out: 0 });
            prog.subst_template.push((*v, 0));
            return prog;
        }
        prog.compile_node(ast, &ground, root, 0);
        prog
    }

    fn compile_node(&mut self, ast: &RecExpr<ENodeOrVar<L>>, ground: &[bool], pat: Id, reg: Reg) {
        match &ast[pat] {
            ENodeOrVar::Var(v) => {
                if let Some(&(_, first)) = self.subst_template.iter().find(|(u, _)| u == v) {
                    self.instructions
                        .push(Instruction::Compare { i: reg, j: first });
                } else {
                    self.subst_template.push((*v, reg));
                }
            }
            ENodeOrVar::ENode(_) if ground[pat.index()] => {
                let term = self.ground_terms.len();
                self.ground_terms.push(extract_ground_term(ast, pat));
                self.instructions.push(Instruction::Lookup { term, i: reg });
            }
            ENodeOrVar::ENode(node) => {
                let arity = node.children().len();
                // Guard the *last* output register too, not just the
                // base: `out + arity - 1` must stay within `Reg`.
                assert!(
                    self.n_regs + arity <= usize::from(Reg::MAX) + 1,
                    "pattern too large for register file"
                );
                let out = self.n_regs as Reg;
                self.n_regs += arity;
                self.instructions.push(Instruction::Bind {
                    node: node.clone(),
                    i: reg,
                    out,
                });
                for (k, &child) in node.children().iter().enumerate() {
                    self.compile_node(ast, ground, child, out + k as Reg);
                }
            }
        }
    }

    /// Returns `true` if this program starts with a [`Instruction::Scan`]
    /// (i.e. the pattern is a bare variable and every class matches).
    pub fn is_scan(&self) -> bool {
        matches!(self.instructions.first(), Some(Instruction::Scan { .. }))
    }

    /// Number of registers the VM needs.
    pub fn n_regs(&self) -> usize {
        self.n_regs
    }

    /// The compiled instructions (for inspection and tests).
    pub fn instructions(&self) -> &[Instruction<L>] {
        &self.instructions
    }

    /// Resolves every ground subterm through the e-graph's hash-cons
    /// memo. Returns `None` if some ground subterm does not exist in
    /// the e-graph — the pattern then has no matches at all and the
    /// whole search can stop before scanning a single class.
    pub fn resolve_ground_terms<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Option<Vec<Id>> {
        self.ground_terms
            .iter()
            .map(|t| egraph.lookup_expr(t).map(|id| egraph.find(id)))
            .collect()
    }

    /// Runs the program against one candidate e-class, appending a
    /// [`Subst`] to `substs` for every match found. `ground` must come
    /// from [`Program::resolve_ground_terms`] on the same (clean)
    /// e-graph; `regs` is the reusable register bank (resized here, so
    /// one allocation serves a whole multi-class search). `budget` is
    /// decremented once per e-node visited; matching stops when it
    /// reaches zero, when `substs` has grown by `max_substs`, or
    /// within [`CANCEL_CHECK_QUANTUM`] visits of `cancel` being set.
    #[allow(clippy::too_many_arguments)]
    pub fn run<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        eclass: Id,
        ground: &[Id],
        regs: &mut Vec<Id>,
        substs: &mut Vec<Subst>,
        budget: &mut usize,
        max_substs: usize,
        cancel: &CancelToken,
    ) -> RunOutcome {
        debug_assert!(!self.is_scan(), "Scan programs are driven by the caller");
        regs.clear();
        regs.resize(self.n_regs, Id::from_index(0));
        regs[0] = egraph.find(eclass);
        let mut machine = Machine {
            regs,
            found: 0,
            max_substs,
            cancel,
        };
        machine.exec(egraph, self, ground, 0, budget, substs)
    }

    /// Materializes the current register bank into a substitution (used
    /// by the driver for [`Instruction::Scan`] patterns, where the sole
    /// register already holds the class).
    pub(crate) fn subst_for_class(&self, eclass: Id) -> Subst {
        Subst::from_pairs(
            self.subst_template
                .iter()
                .map(|&(v, _)| (v, eclass))
                .collect(),
        )
    }
}

struct Machine<'a> {
    regs: &'a mut Vec<Id>,
    found: usize,
    max_substs: usize,
    cancel: &'a CancelToken,
}

impl Machine<'_> {
    /// Executes instructions from `pc` on, backtracking over
    /// [`Instruction::Bind`] choices; complete register banks are
    /// materialized into `out`.
    fn exec<L: Language, N: Analysis<L>>(
        &mut self,
        egraph: &EGraph<L, N>,
        prog: &Program<L>,
        ground: &[Id],
        pc: usize,
        budget: &mut usize,
        out: &mut Vec<Subst>,
    ) -> RunOutcome {
        let Some(instruction) = prog.instructions.get(pc) else {
            out.push(Subst::from_pairs(
                prog.subst_template
                    .iter()
                    .map(|&(v, r)| (v, self.regs[r as usize]))
                    .collect(),
            ));
            self.found += 1;
            return if self.found >= self.max_substs {
                RunOutcome::SubstLimit
            } else {
                RunOutcome::Complete
            };
        };
        match instruction {
            Instruction::Bind {
                node,
                i,
                out: out_reg,
            } => {
                let class = egraph.eclass(self.regs[*i as usize]);
                for enode in class.iter() {
                    if *budget == 0 {
                        return RunOutcome::BudgetExhausted;
                    }
                    *budget -= 1;
                    if budget.is_multiple_of(CANCEL_CHECK_QUANTUM) && self.cancel.is_cancelled() {
                        return RunOutcome::Cancelled;
                    }
                    if !node.matches(enode) {
                        continue;
                    }
                    let base = *out_reg as usize;
                    for (k, &child) in enode.children().iter().enumerate() {
                        self.regs[base + k] = child;
                    }
                    match self.exec(egraph, prog, ground, pc + 1, budget, out) {
                        RunOutcome::Complete => {}
                        stop => return stop,
                    }
                }
                RunOutcome::Complete
            }
            Instruction::Compare { i, j } => {
                if egraph.find(self.regs[*i as usize]) == egraph.find(self.regs[*j as usize]) {
                    self.exec(egraph, prog, ground, pc + 1, budget, out)
                } else {
                    RunOutcome::Complete
                }
            }
            Instruction::Lookup { term, i } => {
                if ground[*term] == egraph.find(self.regs[*i as usize]) {
                    self.exec(egraph, prog, ground, pc + 1, budget, out)
                } else {
                    RunOutcome::Complete
                }
            }
            Instruction::Scan { .. } => unreachable!("Scan only occurs at pc 0 of var patterns"),
        }
    }
}

/// Computes, for each pattern node, whether its subtree is ground
/// (contains no variables).
fn ground_map<L: Language>(ast: &RecExpr<ENodeOrVar<L>>) -> Vec<bool> {
    let mut ground = vec![false; ast.len()];
    for (i, node) in ast.iter().enumerate() {
        ground[i] = match node {
            ENodeOrVar::Var(_) => false,
            ENodeOrVar::ENode(n) => n.children().iter().all(|c| ground[c.index()]),
        };
    }
    ground
}

/// Copies the ground subtree rooted at `pat` out of the pattern AST
/// into a standalone [`RecExpr`] suitable for
/// [`EGraph::lookup_expr`].
fn extract_ground_term<L: Language>(ast: &RecExpr<ENodeOrVar<L>>, pat: Id) -> RecExpr<L> {
    RecExpr::from_root_and_fn(pat, |id| match &ast[id] {
        ENodeOrVar::ENode(n) => n.clone(),
        ENodeOrVar::Var(_) => unreachable!("ground subterms contain no variables"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pattern, SymbolLang};

    fn pat(s: &str) -> Pattern<SymbolLang> {
        s.parse().unwrap()
    }

    #[test]
    fn compiles_bind_and_compare() {
        let p = pat("(f ?x ?x)");
        let prog = p.program();
        assert_eq!(prog.instructions().len(), 2);
        assert!(matches!(prog.instructions()[0], Instruction::Bind { .. }));
        assert!(matches!(
            prog.instructions()[1],
            Instruction::Compare { .. }
        ));
    }

    #[test]
    fn compiles_ground_subterm_to_lookup() {
        let p = pat("(f ?x (g a b))");
        let prog = p.program();
        assert!(prog
            .instructions()
            .iter()
            .any(|i| matches!(i, Instruction::Lookup { .. })));
        // The variable-free subtree must not emit any Bind beyond the
        // root's.
        let binds = prog
            .instructions()
            .iter()
            .filter(|i| matches!(i, Instruction::Bind { .. }))
            .count();
        assert_eq!(binds, 1);
    }

    #[test]
    fn root_var_compiles_to_scan() {
        let p = pat("?x");
        assert!(p.program().is_scan());
    }

    #[test]
    fn register_count_covers_children() {
        let p = pat("(f (g ?a ?b) ?c)");
        // root children (2) + g children (2) + root reg.
        assert_eq!(p.program().n_regs(), 5);
    }

    use crate::{CancelToken, EGraph, SearchMatches};

    type EG = EGraph<SymbolLang, ()>;

    /// Builds a workload whose search does lots of *failing*
    /// backtracking (so neither the per-class match cap nor the work
    /// budget stops it early): `n_roots` classes `(g A_i B_i)` where
    /// `A_i`/`B_i` each hold `width` f-nodes over disjoint leaves, and
    /// the nonlinear probe `(g (f ?x) (f ?x))` never closes.
    fn explosive_workload(n_roots: usize, width: usize) -> (EG, Pattern<SymbolLang>) {
        let mut eg = EG::default();
        for r in 0..n_roots {
            let side = |tag: &str, eg: &mut EG| {
                let fs: Vec<_> = (0..width)
                    .map(|i| {
                        let leaf = eg.add(SymbolLang::leaf(format!("{tag}{r}_{i}")));
                        eg.add(SymbolLang::new("f", vec![leaf]))
                    })
                    .collect();
                for w in fs.windows(2) {
                    eg.union(w[0], w[1]);
                }
                fs[0]
            };
            let a = side("a", &mut eg);
            let b = side("b", &mut eg);
            eg.add(SymbolLang::new("g", vec![a, b]));
        }
        eg.rebuild();
        (eg, pat("(g (f ?x) (f ?x))"))
    }

    #[test]
    fn cancelled_token_stops_within_one_quantum() {
        let (eg, p) = explosive_workload(1, 400);
        let ground = p.program().resolve_ground_terms(&eg).unwrap();
        let class = *eg
            .classes_with_op(&SymbolLang::leaf("g").discriminant())
            .first()
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let mut regs = Vec::new();
        let mut substs = Vec::new();
        let start_budget = 10_000usize;
        let mut budget = start_budget;
        let outcome = p.program().run(
            &eg,
            class,
            &ground,
            &mut regs,
            &mut substs,
            &mut budget,
            usize::MAX,
            &token,
        );
        assert_eq!(outcome, RunOutcome::Cancelled);
        let work_done = start_budget - budget;
        assert!(
            work_done <= CANCEL_CHECK_QUANTUM,
            "a set token must stop the VM within one quantum, did {work_done} visits"
        );
        // Sanity: the same class costs far more than a quantum when
        // the token stays clear.
        let mut budget = start_budget;
        let outcome = p.program().run(
            &eg,
            class,
            &ground,
            &mut regs,
            &mut substs,
            &mut budget,
            usize::MAX,
            &CancelToken::new(),
        );
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn pre_cancelled_search_returns_no_matches() {
        let (eg, p) = explosive_workload(10, 60);
        let token = CancelToken::new();
        token.cancel();
        let matches: Vec<SearchMatches> = p.search_with_limit_and_token(&eg, usize::MAX, &token);
        assert!(matches.is_empty());
    }

    #[test]
    fn cancellation_checked_between_small_classes() {
        // Classes this small (2 visits each) never reach the in-VM
        // budget-quantum poll; the driver loop must still observe the
        // token between classes.
        let mut eg = EG::default();
        for i in 0..500 {
            let a = eg.add(SymbolLang::leaf(format!("p{i}")));
            let b = eg.add(SymbolLang::leaf(format!("q{i}")));
            eg.add(SymbolLang::new("g", vec![a, b]));
        }
        eg.rebuild();
        let p = pat("(g ?x ?y)");
        assert_eq!(p.search(&eg).len(), 500);
        let token = CancelToken::new();
        token.cancel();
        assert!(p
            .search_with_limit_and_token(&eg, usize::MAX, &token)
            .is_empty());
    }

    #[test]
    fn mid_search_cancellation_stops_promptly() {
        use std::time::{Duration, Instant};
        let (eg, p) = explosive_workload(80, 200);
        let start = Instant::now();
        let full = p.search(&eg);
        let full_time = start.elapsed();
        assert!(full.is_empty(), "the nonlinear probe must never close");

        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                token.cancel();
            })
        };
        let start = Instant::now();
        let cancelled = p.search_with_limit_and_token(&eg, usize::MAX, &token);
        let cancelled_time = start.elapsed();
        canceller.join().unwrap();
        assert!(cancelled.is_empty());
        // Only discriminating when the full search is slow enough for
        // the 5 ms cancel to land mid-flight.
        if full_time > Duration::from_millis(50) {
            assert!(
                cancelled_time < full_time / 2,
                "cancelled search took {cancelled_time:?} vs full {full_time:?}"
            );
        }
    }
}
