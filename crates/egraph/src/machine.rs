//! The compiled e-matching virtual machine.
//!
//! Following the abstract-machine design of egg (Willsey et al., POPL
//! 2021), every [`Pattern`] is compiled **once** (at
//! construction) into a linear [`Program`] of instructions executed
//! against a bank of registers holding e-class [`Id`]s:
//!
//! * [`Instruction::Bind`] — iterate the e-nodes of the class in
//!   register `i` that match a pattern operator, writing each node's
//!   children into fresh registers (the only backtracking point);
//! * [`Instruction::Compare`] — require two registers to name the same
//!   e-class (non-linear patterns, e.g. `(& ?a ?a)`);
//! * [`Instruction::Lookup`] — require the register to be the class of
//!   a *ground* (variable-free) subterm, resolved once per search via
//!   the e-graph's hash-cons `memo` instead of structural scanning;
//! * [`Instruction::Scan`] — enumerate every e-class (emitted only for
//!   root-variable patterns like `?x`, where the driver loop performs
//!   the enumeration).
//!
//! Unlike the classic backtracking matcher this replaces, the VM never
//! allocates or clones a substitution while searching: bindings live in
//! the register bank, and a [`Subst`] is materialized only for each
//! *surviving* match. The work budget
//! ([`MATCH_WORK_BUDGET`]), the per-class
//! match cap ([`MAX_SUBSTS_PER_CLASS`]),
//! and a cooperative [`CancelToken`] are all enforced *inside* the VM
//! loop, so cancellation latency is bounded by
//! [`CANCEL_CHECK_QUANTUM`] e-node visits rather than by a whole rule
//! search.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::pattern::ENodeOrVar;
use crate::{
    Analysis, CancelToken, EGraph, Id, Language, Pattern, RecExpr, SearchMatches, Subst, Var,
    MATCH_WORK_BUDGET, MAX_SUBSTS_PER_CLASS,
};

/// A register index in the VM's register bank.
pub type Reg = u16;

/// One instruction of a compiled pattern program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction<L> {
    /// Iterate the e-nodes of class `regs[i]` whose operator and arity
    /// match `node`; for each, write the children into
    /// `regs[out..out + arity]` and continue (backtracking point).
    Bind {
        /// The pattern e-node to match (only its operator and arity
        /// are consulted; its child ids index the pattern AST).
        node: L,
        /// Register holding the class to scan.
        i: Reg,
        /// First output register for the matched node's children.
        out: Reg,
    },
    /// Continue only if `regs[i]` and `regs[j]` are the same class.
    Compare {
        /// First register.
        i: Reg,
        /// Second register.
        j: Reg,
    },
    /// Continue only if `regs[i]` is the class of the ground term
    /// `ground_terms[term]` (resolved through the hash-cons memo once
    /// per search).
    Lookup {
        /// Index into [`Program`]'s ground-term table.
        term: usize,
        /// Register to compare against.
        i: Reg,
    },
    /// Enumerate all e-classes into register `out`. Emitted only as
    /// the first (and sole) instruction of root-variable patterns; the
    /// search driver performs the class enumeration.
    Scan {
        /// Register receiving each class.
        out: Reg,
    },
}

/// How often (in e-node visits) the VM polls its [`CancelToken`]: a
/// cancellation request stops the search within one such quantum.
pub const CANCEL_CHECK_QUANTUM: usize = 256;

/// Why a program run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The whole match space was enumerated.
    Complete,
    /// The per-class substitution cap was reached.
    SubstLimit,
    /// The work budget was exhausted.
    BudgetExhausted,
    /// The [`CancelToken`] was set; the driver should stop the whole
    /// search, not just this class.
    Cancelled,
}

/// A pattern compiled to VM instructions (see the module docs).
#[derive(Debug, Clone)]
pub struct Program<L> {
    instructions: Vec<Instruction<L>>,
    ground_terms: Vec<RecExpr<L>>,
    /// `(var, register)` pairs in first-occurrence order; materializing
    /// a match reads these registers into a [`Subst`].
    subst_template: Vec<(Var, Reg)>,
    n_regs: usize,
}

impl<L: Language> Program<L> {
    /// Compiles a pattern AST. Instructions follow the pattern's
    /// depth-first preorder (root first, children left to right), which
    /// keeps the VM's match enumeration order aligned with the
    /// classic recursive matcher.
    pub fn compile(ast: &RecExpr<ENodeOrVar<L>>) -> Self {
        let ground = ground_map(ast);
        let mut prog = Program {
            instructions: Vec::new(),
            ground_terms: Vec::new(),
            subst_template: Vec::new(),
            n_regs: 1,
        };
        let root = ast.root();
        if let ENodeOrVar::Var(v) = &ast[root] {
            prog.instructions.push(Instruction::Scan { out: 0 });
            prog.subst_template.push((*v, 0));
            return prog;
        }
        prog.compile_node(ast, &ground, root, 0);
        prog
    }

    fn compile_node(&mut self, ast: &RecExpr<ENodeOrVar<L>>, ground: &[bool], pat: Id, reg: Reg) {
        match &ast[pat] {
            ENodeOrVar::Var(v) => {
                if let Some(&(_, first)) = self.subst_template.iter().find(|(u, _)| u == v) {
                    self.instructions
                        .push(Instruction::Compare { i: reg, j: first });
                } else {
                    self.subst_template.push((*v, reg));
                }
            }
            ENodeOrVar::ENode(_) if ground[pat.index()] => {
                let term = self.ground_terms.len();
                self.ground_terms.push(extract_ground_term(ast, pat));
                self.instructions.push(Instruction::Lookup { term, i: reg });
            }
            ENodeOrVar::ENode(node) => {
                let arity = node.children().len();
                // Guard the *last* output register too, not just the
                // base: `out + arity - 1` must stay within `Reg`.
                assert!(
                    self.n_regs + arity <= usize::from(Reg::MAX) + 1,
                    "pattern too large for register file"
                );
                let out = self.n_regs as Reg;
                self.n_regs += arity;
                self.instructions.push(Instruction::Bind {
                    node: node.clone(),
                    i: reg,
                    out,
                });
                for (k, &child) in node.children().iter().enumerate() {
                    self.compile_node(ast, ground, child, out + k as Reg);
                }
            }
        }
    }

    /// Returns `true` if this program starts with a [`Instruction::Scan`]
    /// (i.e. the pattern is a bare variable and every class matches).
    pub fn is_scan(&self) -> bool {
        matches!(self.instructions.first(), Some(Instruction::Scan { .. }))
    }

    /// Number of registers the VM needs.
    pub fn n_regs(&self) -> usize {
        self.n_regs
    }

    /// The compiled instructions (for inspection and tests).
    pub fn instructions(&self) -> &[Instruction<L>] {
        &self.instructions
    }

    /// Resolves every ground subterm through the e-graph's hash-cons
    /// memo. Returns `None` if some ground subterm does not exist in
    /// the e-graph — the pattern then has no matches at all and the
    /// whole search can stop before scanning a single class.
    pub fn resolve_ground_terms<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Option<Vec<Id>> {
        self.ground_terms
            .iter()
            .map(|t| egraph.lookup_expr(t).map(|id| egraph.find(id)))
            .collect()
    }

    /// Runs the program against one candidate e-class, appending a
    /// [`Subst`] to `substs` for every match found. `ground` must come
    /// from [`Program::resolve_ground_terms`] on the same (clean)
    /// e-graph; `regs` is the reusable register bank (resized here, so
    /// one allocation serves a whole multi-class search). `budget` is
    /// decremented once per e-node visited; matching stops when it
    /// reaches zero, when `substs` has grown by `max_substs`, or
    /// within [`CANCEL_CHECK_QUANTUM`] visits of `cancel` being set.
    #[allow(clippy::too_many_arguments)]
    pub fn run<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        eclass: Id,
        ground: &[Id],
        regs: &mut Vec<Id>,
        substs: &mut Vec<Subst>,
        budget: &mut usize,
        max_substs: usize,
        cancel: &CancelToken,
    ) -> RunOutcome {
        debug_assert!(!self.is_scan(), "Scan programs are driven by the caller");
        regs.clear();
        regs.resize(self.n_regs, Id::from_index(0));
        regs[0] = egraph.find(eclass);
        let mut machine = Machine {
            regs,
            found: 0,
            max_substs,
            cancel,
        };
        machine.exec(egraph, self, ground, 0, budget, substs)
    }

    /// Materializes the current register bank into a substitution (used
    /// by the driver for [`Instruction::Scan`] patterns, where the sole
    /// register already holds the class).
    pub(crate) fn subst_for_class(&self, eclass: Id) -> Subst {
        Subst::from_pairs(
            self.subst_template
                .iter()
                .map(|&(v, _)| (v, eclass))
                .collect(),
        )
    }
}

struct Machine<'a> {
    regs: &'a mut Vec<Id>,
    found: usize,
    max_substs: usize,
    cancel: &'a CancelToken,
}

impl Machine<'_> {
    /// Executes instructions from `pc` on, backtracking over
    /// [`Instruction::Bind`] choices; complete register banks are
    /// materialized into `out`.
    fn exec<L: Language, N: Analysis<L>>(
        &mut self,
        egraph: &EGraph<L, N>,
        prog: &Program<L>,
        ground: &[Id],
        pc: usize,
        budget: &mut usize,
        out: &mut Vec<Subst>,
    ) -> RunOutcome {
        let Some(instruction) = prog.instructions.get(pc) else {
            out.push(Subst::from_pairs(
                prog.subst_template
                    .iter()
                    .map(|&(v, r)| (v, self.regs[r as usize]))
                    .collect(),
            ));
            self.found += 1;
            return if self.found >= self.max_substs {
                RunOutcome::SubstLimit
            } else {
                RunOutcome::Complete
            };
        };
        match instruction {
            Instruction::Bind {
                node,
                i,
                out: out_reg,
            } => {
                let class = egraph.eclass(self.regs[*i as usize]);
                for enode in class.iter() {
                    if *budget == 0 {
                        return RunOutcome::BudgetExhausted;
                    }
                    *budget -= 1;
                    if budget.is_multiple_of(CANCEL_CHECK_QUANTUM) && self.cancel.is_cancelled() {
                        return RunOutcome::Cancelled;
                    }
                    if !node.matches(enode) {
                        continue;
                    }
                    let base = *out_reg as usize;
                    for (k, &child) in enode.children().iter().enumerate() {
                        self.regs[base + k] = child;
                    }
                    match self.exec(egraph, prog, ground, pc + 1, budget, out) {
                        RunOutcome::Complete => {}
                        stop => return stop,
                    }
                }
                RunOutcome::Complete
            }
            Instruction::Compare { i, j } => {
                if egraph.find(self.regs[*i as usize]) == egraph.find(self.regs[*j as usize]) {
                    self.exec(egraph, prog, ground, pc + 1, budget, out)
                } else {
                    RunOutcome::Complete
                }
            }
            Instruction::Lookup { term, i } => {
                if ground[*term] == egraph.find(self.regs[*i as usize]) {
                    self.exec(egraph, prog, ground, pc + 1, budget, out)
                } else {
                    RunOutcome::Complete
                }
            }
            Instruction::Scan { .. } => unreachable!("Scan only occurs at pc 0 of var patterns"),
        }
    }
}

/// What a scheduler wants done with one rule during a shared
/// multi-pattern search (see [`RuleSetProgram::search`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleDirective {
    /// Do not search the rule at all this iteration (e.g. a backoff
    /// ban). The rule still gets a (empty) match slot, not a skip.
    Skip,
    /// Search the rule; stop visiting further classes for it once its
    /// total substitution count exceeds the limit (the boundary class
    /// is kept whole, exactly like
    /// [`Pattern::search_with_limit`]).
    Limit(usize),
}

/// One rule's match emission point in the trie: when execution reaches
/// the node holding this leaf, the register bank satisfies the rule's
/// whole program.
struct RuleLeaf {
    rule: usize,
    subst_template: Vec<(Var, Reg)>,
}

/// A trie node: one shared instruction, the nodes that continue it,
/// and the rules whose programs end exactly here.
struct TrieNode<L> {
    instruction: Instruction<L>,
    children: Vec<usize>,
    outputs: Vec<RuleLeaf>,
}

/// A top-level execution unit of the trie. `Ops` branches cover every
/// rule whose program starts with a `Bind`/`Lookup` on the same root
/// operator (driven over `classes_with_op`); each var-rooted (`Scan`)
/// pattern is its own branch driven over all classes.
struct Branch<D> {
    kind: BranchKind<D>,
    /// The rules this branch searches, in ascending rule index.
    rules: Vec<usize>,
}

/// One step of a node's precomputed child-execution plan. Sibling
/// `Bind`s that scan the *same* register are merged into one pass over
/// the class's e-nodes — each e-node is dispatched to the (at most
/// one) member whose operator it carries — instead of one full scan
/// per sibling. This is where multi-pattern sharing pays beyond the
/// common prefix: the e-node list is walked once for the whole fan.
///
/// Merging never changes results: distinct members always test
/// distinct (operator, arity) keys (identical ones would have been
/// deduplicated into one trie node), so each e-node continues into
/// exactly the member a solo run would have matched it against, in
/// the same class-order the solo scan uses.
enum ChildGroup<L> {
    /// A child executed on its own: any non-`Bind` child, or a `Bind`
    /// with no same-register sibling (byte-identical to the solo VM,
    /// including the budget counting).
    Single(u32),
    /// Two or more sibling `Bind`s scanning register `i`, in child
    /// (= first-rule) order. Member data is copied out of the trie
    /// nodes into this contiguous array so the per-e-node dispatch
    /// loop walks one cache line instead of chasing trie indices.
    MergedBinds {
        i: Reg,
        members: Vec<MergedMember<L>>,
    },
}

/// One `Bind` participating in a merged sibling scan: the trie node
/// it stands for, plus a copy of that node's pattern e-node and
/// output-register base (the only fields the dispatch loop reads).
struct MergedMember<L> {
    node: u32,
    pat: L,
    out: Reg,
}

enum BranchKind<D> {
    Ops { disc: D, roots: Vec<usize> },
    Scan,
}

/// A whole ruleset's LHS patterns compiled into one shared matcher: a
/// trie over instruction prefixes, executed once per root-op bucket
/// per iteration instead of once per rule.
///
/// The per-pattern compiler already assigns registers canonically
/// (DFS preorder, registers handed out per `Bind` in instruction
/// order), so two programs with structurally identical prefixes emit
/// *identical* instruction prefixes — the trie only has to normalize
/// the parts of an instruction that are incidentally
/// pattern-specific: `Bind` child ids (which index the private
/// pattern AST and are never read by the VM) are zeroed, and `Lookup`
/// term indices are remapped into one shared deduplicated
/// ground-term table.
///
/// # Exactness
///
/// [`RuleSetProgram::search`] returns, for every rule, exactly the
/// match set [`Pattern::search_with_limit_and_token`] would return —
/// including every truncation cap:
///
/// * **Emission order.** A rule's root-to-leaf path through the trie
///   is its exact solo instruction sequence over the same registers,
///   so the shared executor reaches the rule's emission point in the
///   same order, with the same register banks, as the solo VM.
/// * **Per-class subst cap.** Emission for a rule stops after
///   [`MAX_SUBSTS_PER_CLASS`] substitutions in a class; the solo VM
///   stops after the same prefix of the same emission sequence. The
///   cap also prunes exploration per rule: a capped rule's
///   emission-node-to-root path is deactivated (live-leaf refcounts,
///   restored at the class boundary), so trie nodes serving only
///   capped rules are skipped — the solo VM's `SubstLimit` abort,
///   applied rule by rule while the others keep exploring. Once
///   *every* rule of the branch is capped or masked, the class walk
///   aborts outright (and a match-explosive class can't burn the
///   shared budget and trigger the per-rule fallback).
/// * **Match-limit (backoff) caps.** [`RuleDirective::Limit`] masks a
///   rule at a class boundary once its total exceeds the limit —
///   keeping the boundary class whole, like the per-pattern driver's
///   "finish the class, then break".
/// * **Work budget.** Each `(branch, class)` pair gets one fresh
///   [`MATCH_WORK_BUDGET`], like each `(rule, class)` pair does solo.
///   A live rule's solo visits are a subset of the shared visits (its
///   path is walked with the same register states; a *capped* rule's
///   solo run aborts at the cap, so pruning its path loses no
///   coverage), so if the shared budget *completes*, no solo run
///   could have been truncated and
///   the shared result is exact. If the shared budget *exhausts*, the
///   class's shared results are discarded and every active rule is
///   re-run solo on that class with its own fresh budget — byte-exact
///   per-pattern truncation, so no rule ever observes fewer visits
///   than it got under per-pattern search.
/// * **Cancellation.** The shared budget counter polls the
///   [`CancelToken`] every [`CANCEL_CHECK_QUANTUM`] visits (same
///   check, same counter discipline as the solo VM), so the latency
///   bound holds mid-trie. A cancel or deadline trip makes the whole
///   branch report *skipped* (`None` slots) rather than returning
///   partial match sets — the driver counts those rules in
///   `rules_skipped` so a trip is never silently under-reported.
pub struct RuleSetProgram<L: Language> {
    nodes: Vec<TrieNode<L>>,
    branches: Vec<Branch<L::Discriminant>>,
    ground_terms: Vec<RecExpr<L>>,
    /// Each rule's standalone program (for the budget-exhaustion
    /// fallback and `Scan` substitution templates).
    programs: Vec<Program<L>>,
    /// `rule index -> local slot within its branch` (every rule
    /// belongs to exactly one branch).
    rule_slot: Vec<usize>,
    /// Flat execution tables, built once after compilation. The solo
    /// VM walks one small contiguous instruction vector; to keep the
    /// shared executor's per-step memory behaviour comparable, the hot
    /// per-node data lives in dense arrays indexed by node id (instead
    /// of being read through [`TrieNode`]s and nested `Vec`s):
    /// `instr[n]` is node `n`'s instruction, `plan_range[n]` /
    /// `out_range[n]` are its slices of the shared `plan_pool` /
    /// `leaf_pool`.
    instr: Vec<Instruction<L>>,
    plan_range: Vec<(u32, u32)>,
    out_range: Vec<(u32, u32)>,
    /// Per branch: the root nodes' execution plan, as a `plan_pool`
    /// range (empty for `Scan` branches).
    root_plan_range: Vec<(u32, u32)>,
    plan_pool: Vec<ChildGroup<L>>,
    leaf_pool: Vec<RuleLeaf>,
    /// Per node: its parent node id (`u32::MAX` at branch roots) —
    /// the path walked when a rule's cap/mask event deactivates its
    /// leaf-to-root chain in the live counts.
    parent: Vec<u32>,
    /// Per rule: the trie node its substitutions are emitted at
    /// (`u32::MAX` for `Scan` rules, which never enter the trie).
    rule_node: Vec<u32>,
    /// Per rule: the branch it belongs to.
    rule_branch: Vec<u32>,
    n_regs: usize,
}

impl<L: Language> RuleSetProgram<L> {
    /// Compiles the rules' already-compiled LHS programs into the
    /// shared trie. Rule order is preserved everywhere results are
    /// reported.
    pub fn compile(patterns: &[&Pattern<L>]) -> Self {
        let mut this = RuleSetProgram {
            nodes: Vec::new(),
            branches: Vec::new(),
            ground_terms: Vec::new(),
            programs: Vec::new(),
            rule_slot: Vec::new(),
            instr: Vec::new(),
            plan_range: Vec::new(),
            out_range: Vec::new(),
            root_plan_range: Vec::new(),
            plan_pool: Vec::new(),
            leaf_pool: Vec::new(),
            parent: Vec::new(),
            rule_node: Vec::new(),
            rule_branch: Vec::new(),
            n_regs: 1,
        };
        for (rule, pattern) in patterns.iter().enumerate() {
            let prog = pattern.program().clone();
            this.n_regs = this.n_regs.max(prog.n_regs);
            if prog.is_scan() {
                this.rule_slot.push(0);
                this.rule_node.push(u32::MAX);
                this.branches.push(Branch {
                    kind: BranchKind::Scan,
                    rules: vec![rule],
                });
                this.rule_branch.push(this.branches.len() as u32 - 1);
                this.programs.push(prog);
                continue;
            }
            // Remap the program's private ground-term indices into the
            // shared deduplicated table, so Lookups on *equal* terms
            // collide in the trie and Lookups on different terms that
            // happen to share a local index do not.
            let remap: Vec<usize> = prog
                .ground_terms
                .iter()
                .map(|t| match this.ground_terms.iter().position(|g| g == t) {
                    Some(i) => i,
                    None => {
                        this.ground_terms.push(t.clone());
                        this.ground_terms.len() - 1
                    }
                })
                .collect();
            let disc = match &prog.instructions[0] {
                Instruction::Bind { node, .. } => node.discriminant(),
                Instruction::Lookup { term, .. } => {
                    let t = &prog.ground_terms[*term];
                    t[t.root()].discriminant()
                }
                _ => unreachable!("non-Scan programs start with Bind or Lookup"),
            };
            let branch = match this
                .branches
                .iter()
                .position(|b| matches!(&b.kind, BranchKind::Ops { disc: d, .. } if *d == disc))
            {
                Some(b) => b,
                None => {
                    this.branches.push(Branch {
                        kind: BranchKind::Ops {
                            disc,
                            roots: Vec::new(),
                        },
                        rules: Vec::new(),
                    });
                    this.branches.len() - 1
                }
            };
            // Thread the program's instructions into the trie,
            // creating nodes only where no identical prefix exists.
            // `None` = still at the branch roots.
            let mut cursor: Option<usize> = None;
            for instruction in &prog.instructions {
                let canonical = match instruction {
                    // `Bind` child ids index the pattern's private AST
                    // and are never read by the executor (only the
                    // operator and arity are); zero them so
                    // structurally identical Binds from different
                    // patterns compare equal.
                    Instruction::Bind { node, i, out } => Instruction::Bind {
                        node: node.map_children(|_| Id::from_index(0)),
                        i: *i,
                        out: *out,
                    },
                    Instruction::Lookup { term, i } => Instruction::Lookup {
                        term: remap[*term],
                        i: *i,
                    },
                    other => other.clone(),
                };
                let siblings: &[usize] = match cursor {
                    None => {
                        let BranchKind::Ops { roots, .. } = &this.branches[branch].kind else {
                            unreachable!()
                        };
                        roots
                    }
                    Some(n) => &this.nodes[n].children,
                };
                let next = match siblings
                    .iter()
                    .copied()
                    .find(|&id| this.nodes[id].instruction == canonical)
                {
                    Some(id) => id,
                    None => {
                        this.nodes.push(TrieNode {
                            instruction: canonical,
                            children: Vec::new(),
                            outputs: Vec::new(),
                        });
                        let id = this.nodes.len() - 1;
                        match cursor {
                            None => {
                                this.parent.push(u32::MAX);
                                let BranchKind::Ops { roots, .. } = &mut this.branches[branch].kind
                                else {
                                    unreachable!()
                                };
                                roots.push(id);
                            }
                            Some(n) => {
                                this.parent.push(n as u32);
                                this.nodes[n].children.push(id);
                            }
                        }
                        id
                    }
                };
                cursor = Some(next);
            }
            let last = cursor.expect("non-Scan programs are non-empty");
            this.nodes[last].outputs.push(RuleLeaf {
                rule,
                subst_template: prog.subst_template.clone(),
            });
            this.rule_node.push(last as u32);
            this.rule_branch.push(branch as u32);
            this.rule_slot.push(this.branches[branch].rules.len());
            this.branches[branch].rules.push(rule);
            this.programs.push(prog);
        }
        // Freeze the trie into the flat execution tables (the
        // `TrieNode`s stay around for the per-search active-subtree
        // computation, which is not per-step work).
        for n in &this.nodes {
            let plan_start = this.plan_pool.len() as u32;
            this.plan_pool
                .extend(plan_children(&this.nodes, &n.children));
            this.plan_range
                .push((plan_start, this.plan_pool.len() as u32));
            let leaf_start = this.leaf_pool.len() as u32;
            this.leaf_pool.extend(n.outputs.iter().map(|l| RuleLeaf {
                rule: l.rule,
                subst_template: l.subst_template.clone(),
            }));
            this.out_range
                .push((leaf_start, this.leaf_pool.len() as u32));
            this.instr.push(n.instruction.clone());
        }
        for b in &this.branches {
            let start = this.plan_pool.len() as u32;
            if let BranchKind::Ops { roots, .. } = &b.kind {
                this.plan_pool.extend(plan_children(&this.nodes, roots));
            }
            this.root_plan_range
                .push((start, this.plan_pool.len() as u32));
        }
        this
    }

    /// Number of compiled rules.
    pub fn n_rules(&self) -> usize {
        self.programs.len()
    }

    /// Number of top-level branches (root-op buckets plus one per
    /// var-rooted pattern).
    pub fn n_branches(&self) -> usize {
        self.branches.len()
    }

    /// Number of shared trie nodes — compare against
    /// [`RuleSetProgram::total_rule_instructions`] to see how much
    /// prefix sharing the ruleset exhibits.
    pub fn n_trie_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Sum of the rules' standalone instruction counts (what a
    /// per-pattern search walks).
    pub fn total_rule_instructions(&self) -> usize {
        self.programs.iter().map(|p| p.instructions.len()).sum()
    }

    /// Resolves the shared ground-term table once per search. A term
    /// absent from the e-graph resolves to `None`, which simply
    /// disables the `Lookup` edges that test it (those rules cannot
    /// match anywhere).
    fn resolve_shared_ground<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<Option<Id>> {
        self.ground_terms
            .iter()
            .map(|t| egraph.lookup_expr(t).map(|id| egraph.find(id)))
            .collect()
    }

    /// Computes, for branch `b`, how many of each node's subtree
    /// leaves belong to a currently-unmasked rule. A node with count
    /// zero leads nowhere that can still emit, so the walk skips it —
    /// this is how `Skip` directives, match-limit masking, and (within
    /// one class) the per-rule subst cap all prune the trie. Children
    /// always have larger ids than their parent, so one reverse pass
    /// suffices; nodes of other branches end up at zero, which is
    /// fine — branch `b`'s walk never reaches them.
    fn branch_live_counts(&self, b: usize, masked: &[bool]) -> Vec<u32> {
        let mut live = vec![0u32; self.nodes.len()];
        for i in (0..self.nodes.len()).rev() {
            let n = &self.nodes[i];
            let own: u32 = n
                .outputs
                .iter()
                .filter(|leaf| {
                    self.rule_branch[leaf.rule] == b as u32 && !masked[self.rule_slot[leaf.rule]]
                })
                .count() as u32;
            live[i] = own + n.children.iter().map(|&c| live[c]).sum::<u32>();
        }
        live
    }

    /// Removes one live leaf (rule `rule`, which just got masked for
    /// the rest of the branch) from every node on its
    /// emission-node-to-root path. `O(path length)`.
    fn deactivate_rule_path(parent: &[u32], rule_node: &[u32], rule: usize, node_live: &mut [u32]) {
        let mut n = rule_node[rule];
        while n != u32::MAX {
            node_live[n as usize] -= 1;
            n = parent[n as usize];
        }
    }

    /// Searches the whole e-graph with every rule at once, serially
    /// over the branches. Returns one slot per rule, in rule order:
    /// `Some((matches, elapsed))` for searched rules (empty matches
    /// for [`RuleDirective::Skip`]), `None` for rules whose branch was
    /// cut short by cancellation or the deadline (= skipped; see the
    /// type-level docs). Per-rule `elapsed` is the branch wall-clock
    /// split evenly over the branch's searched rules, so the slots
    /// always sum to at most the whole search's wall-clock.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is not clean, or if `directives` does not
    /// have one entry per compiled rule.
    pub fn search_serial<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        directives: &[RuleDirective],
        cancel: &CancelToken,
        deadline: Option<Instant>,
    ) -> Vec<Option<(Vec<SearchMatches>, Duration)>> {
        assert!(
            egraph.is_clean(),
            "search requires a clean (rebuilt) e-graph"
        );
        assert_eq!(
            directives.len(),
            self.programs.len(),
            "one directive per compiled rule"
        );
        let ground = self.resolve_shared_ground(egraph);
        let mut slots: Vec<Option<(Vec<SearchMatches>, Duration)>> = Vec::new();
        slots.resize_with(self.programs.len(), || None);
        for b in 0..self.branches.len() {
            if cancel.is_cancelled() || past(deadline) {
                break;
            }
            let Some((results, elapsed)) =
                self.search_branch(egraph, b, directives, &ground, cancel, deadline)
            else {
                break;
            };
            fill_slots(&mut slots, directives, results, elapsed);
        }
        slots
    }

    /// Like [`RuleSetProgram::search_serial`], fanning the branches
    /// out over `threads` scoped workers (work stealing — branch costs
    /// vary by orders of magnitude). Branches own disjoint rule sets
    /// and the per-branch work is identical to serial, so the slots
    /// are byte-identical at any thread count (short of a mid-search
    /// cancel/deadline trip, where the *set* of skipped rules may
    /// differ — same as the per-rule parallel search).
    pub fn search<N>(
        &self,
        egraph: &EGraph<L, N>,
        directives: &[RuleDirective],
        cancel: &CancelToken,
        deadline: Option<Instant>,
        threads: usize,
    ) -> Vec<Option<(Vec<SearchMatches>, Duration)>>
    where
        L: Sync,
        L::Discriminant: Sync,
        N: Analysis<L> + Sync,
        N::Data: Sync,
    {
        if threads <= 1 || self.branches.len() <= 1 {
            return self.search_serial(egraph, directives, cancel, deadline);
        }
        assert!(
            egraph.is_clean(),
            "search requires a clean (rebuilt) e-graph"
        );
        assert_eq!(
            directives.len(),
            self.programs.len(),
            "one directive per compiled rule"
        );
        let ground = self.resolve_shared_ground(egraph);
        let mut slots: Vec<Option<(Vec<SearchMatches>, Duration)>> = Vec::new();
        slots.resize_with(self.programs.len(), || None);
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.min(self.branches.len()))
                .map(|_| {
                    let (next, ground) = (&next, &ground);
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            if b >= self.branches.len() {
                                break;
                            }
                            if cancel.is_cancelled() || past(deadline) {
                                break;
                            }
                            match self
                                .search_branch(egraph, b, directives, ground, cancel, deadline)
                            {
                                Some(r) => done.push(r),
                                None => break,
                            }
                        }
                        done
                    })
                })
                .collect();
            // Join *every* worker before reacting to any panic (see
            // the runner's parallel search for why: a second panic
            // during unwind would abort the process).
            let mut panicked = None;
            for handle in handles {
                match handle.join() {
                    Ok(done) => {
                        for (results, elapsed) in done {
                            fill_slots(&mut slots, directives, results, elapsed);
                        }
                    }
                    Err(payload) => panicked = panicked.or(Some(payload)),
                }
            }
            if let Some(payload) = panicked {
                std::panic::resume_unwind(payload);
            }
        });
        slots
    }

    /// Runs one branch to completion. Returns the per-rule match sets
    /// (rule index, matches) plus the branch's wall-clock, or `None`
    /// if a cancel/deadline trip left the branch incomplete.
    #[allow(clippy::type_complexity)]
    fn search_branch<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        b: usize,
        directives: &[RuleDirective],
        ground: &[Option<Id>],
        cancel: &CancelToken,
        deadline: Option<Instant>,
    ) -> Option<(Vec<(usize, Vec<SearchMatches>)>, Duration)> {
        let start = Instant::now();
        let branch = &self.branches[b];
        let per_rule = match &branch.kind {
            BranchKind::Ops { .. } => {
                self.search_ops_branch(egraph, b, directives, ground, cancel, deadline)?
            }
            BranchKind::Scan => {
                let rule = branch.rules[0];
                match directives[rule] {
                    RuleDirective::Skip => vec![Vec::new()],
                    RuleDirective::Limit(limit) => {
                        vec![self.search_scan_branch(egraph, rule, limit, cancel, deadline)?]
                    }
                }
            }
        };
        Some((
            branch.rules.iter().copied().zip(per_rule).collect(),
            start.elapsed(),
        ))
    }

    /// Drives a root-op branch over `classes_with_op`, walking the
    /// shared trie once per class and demultiplexing surviving
    /// substitutions into per-rule match sets (see the type-level
    /// exactness notes).
    fn search_ops_branch<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        b: usize,
        directives: &[RuleDirective],
        ground: &[Option<Id>],
        cancel: &CancelToken,
        deadline: Option<Instant>,
    ) -> Option<Vec<Vec<SearchMatches>>> {
        let branch = &self.branches[b];
        let root_plan = self.root_plan_range[b];
        let BranchKind::Ops { disc, .. } = &branch.kind else {
            unreachable!()
        };
        let rules = &branch.rules;
        let n_local = rules.len();
        let mut out: Vec<Vec<SearchMatches>> = Vec::new();
        out.resize_with(n_local, Vec::new);
        // A masked rule takes no further classes: banned from the
        // start (Skip), over its match limit, or — within one class —
        // over the per-class subst cap (that one is tracked in
        // `found`, reset per class).
        let mut masked = vec![false; n_local];
        for (slot, &rule) in masked.iter_mut().zip(rules) {
            *slot = directives[rule] == RuleDirective::Skip;
        }
        if masked.iter().all(|&m| m) {
            return Some(out);
        }
        let mut totals = vec![0usize; n_local];
        let mut found = vec![0usize; n_local];
        // Per-node count of live (unmasked, uncapped) subtree leaves:
        // zero means nothing below can emit, so the walk skips the
        // node. Masking decrements a rule's root path for the rest of
        // the branch; a per-class cap decrements it for the rest of
        // the class (undone at the boundary via `cap_undo`).
        let mut node_live = self.branch_live_counts(b, &masked);
        let mut cap_undo: Vec<u32> = Vec::new();
        let mut class_substs: Vec<Vec<Subst>> = Vec::new();
        class_substs.resize_with(n_local, Vec::new);
        let mut regs: Vec<Id> = Vec::new();
        let mut fallback_regs: Vec<Id> = Vec::new();
        // Per-rule resolved ground tables, built lazily if the
        // fallback path ever runs.
        let mut solo_ground: Vec<Option<Option<Vec<Id>>>> = vec![None; n_local];
        for &id in egraph.classes_with_op(disc) {
            if cancel.is_cancelled() || past(deadline) {
                return None;
            }
            if masked.iter().all(|&m| m) {
                break;
            }
            let id = egraph.find(id);
            found.iter_mut().for_each(|f| *f = 0);
            regs.clear();
            regs.resize(self.n_regs, Id::from_index(0));
            regs[0] = id;
            let mut budget = MATCH_WORK_BUDGET;
            let live = masked.iter().filter(|&&m| !m).count();
            let mut machine = MultiMachine {
                instr: &self.instr,
                plan_range: &self.plan_range,
                out_range: &self.out_range,
                plan_pool: &self.plan_pool,
                leaf_pool: &self.leaf_pool,
                parent: &self.parent,
                regs: &mut regs,
                ground,
                node_live: &mut node_live,
                cap_undo: &mut cap_undo,
                rule_slot: &self.rule_slot,
                masked: &masked,
                found: &mut found,
                live,
                out: &mut class_substs,
                cancel,
            };
            let outcome = machine.run_plan(egraph, root_plan, &mut budget);
            // Caps are per class: restore the live counts the emitters
            // decremented before the next class (or before the masking
            // pass below, which applies its own permanent decrements).
            for &n in &cap_undo {
                node_live[n as usize] += 1;
            }
            cap_undo.clear();
            match outcome {
                RunOutcome::Cancelled => return None,
                RunOutcome::BudgetExhausted => {
                    // The shared budget starved this class: discard its
                    // shared results and re-run each active rule alone
                    // with a fresh per-rule budget — reproducing
                    // per-pattern truncation exactly, so sharing never
                    // costs a rule visits.
                    for (local, &rule) in rules.iter().enumerate() {
                        if masked[local] {
                            continue;
                        }
                        class_substs[local].clear();
                        let resolved = solo_ground[local].get_or_insert_with(|| {
                            self.programs[rule].resolve_ground_terms(egraph)
                        });
                        let Some(resolved) = resolved.as_ref() else {
                            continue;
                        };
                        let mut solo_budget = MATCH_WORK_BUDGET;
                        let solo_outcome = self.programs[rule].run(
                            egraph,
                            id,
                            resolved,
                            &mut fallback_regs,
                            &mut class_substs[local],
                            &mut solo_budget,
                            MAX_SUBSTS_PER_CLASS,
                            cancel,
                        );
                        if solo_outcome == RunOutcome::Cancelled {
                            return None;
                        }
                    }
                }
                _ => {}
            }
            // Package the class per rule (canonicalize, sort, dedup —
            // identical to the per-pattern path) and apply match-limit
            // masking at the class boundary.
            for local in 0..n_local {
                if masked[local] {
                    continue;
                }
                if !class_substs[local].is_empty() {
                    let mut substs = std::mem::take(&mut class_substs[local]);
                    for s in &mut substs {
                        s.canonicalize(egraph);
                    }
                    substs.sort_unstable();
                    substs.dedup();
                    totals[local] += substs.len();
                    out[local].push(SearchMatches { eclass: id, substs });
                }
                if let RuleDirective::Limit(limit) = directives[rules[local]] {
                    if totals[local] > limit {
                        masked[local] = true;
                        Self::deactivate_rule_path(
                            &self.parent,
                            &self.rule_node,
                            rules[local],
                            &mut node_live,
                        );
                    }
                }
            }
        }
        Some(out)
    }

    /// Drives one var-rooted (`Scan`) pattern over every class — same
    /// enumeration as [`Pattern::search_with_limit_and_token`].
    fn search_scan_branch<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        rule: usize,
        limit: usize,
        cancel: &CancelToken,
        deadline: Option<Instant>,
    ) -> Option<Vec<SearchMatches>> {
        let mut out = Vec::new();
        let mut total = 0usize;
        for class in egraph.classes() {
            if cancel.is_cancelled() || past(deadline) {
                return None;
            }
            out.push(SearchMatches {
                eclass: class.id,
                substs: vec![self.programs[rule].subst_for_class(class.id)],
            });
            total += 1;
            if total > limit {
                break;
            }
        }
        Some(out)
    }
}

pub(crate) fn past(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() > d)
}

/// Partitions a sibling set into execution groups: non-`Bind` children
/// stay single (in child order), then `Bind` children grouped by the
/// register they scan (groups in first-occurrence order; a group of
/// one collapses back to `Single`). Group order is free — sibling
/// subtrees lead to disjoint rule sets, so no rule's emission sequence
/// spans two groups.
fn plan_children<L: Language>(nodes: &[TrieNode<L>], children: &[usize]) -> Vec<ChildGroup<L>> {
    let mut plan = Vec::new();
    let mut binds: Vec<(Reg, Vec<MergedMember<L>>)> = Vec::new();
    for &c in children {
        match &nodes[c].instruction {
            Instruction::Bind { node, i, out } => {
                let member = MergedMember {
                    node: c as u32,
                    pat: node.clone(),
                    out: *out,
                };
                match binds.iter_mut().find(|(r, _)| *r == *i) {
                    Some((_, members)) => members.push(member),
                    None => binds.push((*i, vec![member])),
                }
            }
            _ => plan.push(ChildGroup::Single(c as u32)),
        }
    }
    for (i, members) in binds {
        plan.push(if members.len() == 1 {
            ChildGroup::Single(members[0].node)
        } else {
            ChildGroup::MergedBinds { i, members }
        });
    }
    plan
}

/// Writes one completed branch's results into the per-rule slots,
/// splitting the branch's wall-clock evenly over its searched
/// (non-`Skip`) rules.
fn fill_slots(
    slots: &mut [Option<(Vec<SearchMatches>, Duration)>],
    directives: &[RuleDirective],
    results: Vec<(usize, Vec<SearchMatches>)>,
    elapsed: Duration,
) {
    let searched = results
        .iter()
        .filter(|(rule, _)| directives[*rule] != RuleDirective::Skip)
        .count();
    let share = if searched > 0 {
        elapsed / searched as u32
    } else {
        Duration::ZERO
    };
    for (rule, matches) in results {
        let elapsed = if directives[rule] == RuleDirective::Skip {
            Duration::ZERO
        } else {
            share
        };
        slots[rule] = Some((matches, elapsed));
    }
}

/// The shared-trie executor: like [`Machine`], but a node's
/// instruction may be continued by several children, and complete
/// register banks are demultiplexed into per-rule output vectors via
/// the leaves.
struct MultiMachine<'a, L: Language> {
    instr: &'a [Instruction<L>],
    plan_range: &'a [(u32, u32)],
    out_range: &'a [(u32, u32)],
    plan_pool: &'a [ChildGroup<L>],
    leaf_pool: &'a [RuleLeaf],
    parent: &'a [u32],
    regs: &'a mut Vec<Id>,
    ground: &'a [Option<Id>],
    /// Per-node live-leaf counts (see `search_ops_branch`): a rule
    /// hitting its per-class cap decrements its root path here, so
    /// subtrees that can no longer emit for anyone are pruned from
    /// the walk — the solo VM's `SubstLimit` abort, per rule.
    node_live: &'a mut [u32],
    /// Node ids decremented by per-class cap events, for the driver
    /// to revert at the class boundary.
    cap_undo: &'a mut Vec<u32>,
    rule_slot: &'a [usize],
    masked: &'a [bool],
    /// Per local rule: substitutions emitted for the current class
    /// (caps emission at [`MAX_SUBSTS_PER_CLASS`]).
    found: &'a mut [usize],
    /// How many rules can still emit for the current class (neither
    /// masked nor at the per-class cap). The solo VM aborts its class
    /// scan the moment *its* rule hits the cap; the shared walk does
    /// the same the moment its *last* live rule does — exploring
    /// further could not emit anything for anyone.
    live: usize,
    out: &'a mut [Vec<Subst>],
    cancel: &'a CancelToken,
}

impl<L: Language> MultiMachine<'_, L> {
    /// Executes the trie node's instruction against the current
    /// registers, emitting at its leaves and descending into its
    /// active children. The budget/cancel discipline is byte-for-byte
    /// the solo [`Machine`]'s: one decrement per e-node visit, token
    /// polled every [`CANCEL_CHECK_QUANTUM`] decrements.
    fn exec<N: Analysis<L>>(
        &mut self,
        egraph: &EGraph<L, N>,
        node: usize,
        budget: &mut usize,
    ) -> RunOutcome {
        let instr = self.instr;
        match &instr[node] {
            Instruction::Bind {
                node: pat_node,
                i,
                out: out_reg,
            } => {
                let class = egraph.eclass(self.regs[*i as usize]);
                for enode in class.iter() {
                    if *budget == 0 {
                        return RunOutcome::BudgetExhausted;
                    }
                    *budget -= 1;
                    if budget.is_multiple_of(CANCEL_CHECK_QUANTUM) && self.cancel.is_cancelled() {
                        return RunOutcome::Cancelled;
                    }
                    if !pat_node.matches(enode) {
                        continue;
                    }
                    let base = *out_reg as usize;
                    for (k, &child) in enode.children().iter().enumerate() {
                        self.regs[base + k] = child;
                    }
                    match self.emit_and_descend(egraph, node, budget) {
                        RunOutcome::Complete => {}
                        stop => return stop,
                    }
                    // A cap event below may have killed this whole
                    // subtree; scanning further e-nodes could not
                    // emit anything.
                    if self.node_live[node] == 0 {
                        break;
                    }
                }
                RunOutcome::Complete
            }
            Instruction::Compare { i, j } => {
                if egraph.find(self.regs[*i as usize]) == egraph.find(self.regs[*j as usize]) {
                    self.emit_and_descend(egraph, node, budget)
                } else {
                    RunOutcome::Complete
                }
            }
            Instruction::Lookup { term, i } => {
                if self.ground[*term] == Some(egraph.find(self.regs[*i as usize])) {
                    self.emit_and_descend(egraph, node, budget)
                } else {
                    RunOutcome::Complete
                }
            }
            Instruction::Scan { .. } => {
                unreachable!("Scan patterns are separate branches, never trie nodes")
            }
        }
    }

    /// After `node`'s instruction succeeded: materialize a
    /// substitution for every rule ending here (unless the rule is
    /// masked or at its per-class cap — the others keep exploring),
    /// then walk the node's child plan.
    fn emit_and_descend<N: Analysis<L>>(
        &mut self,
        egraph: &EGraph<L, N>,
        node: usize,
        budget: &mut usize,
    ) -> RunOutcome {
        let (leaf_start, leaf_end) = self.out_range[node];
        if leaf_start != leaf_end {
            let leaf_pool = self.leaf_pool;
            for leaf in &leaf_pool[leaf_start as usize..leaf_end as usize] {
                let local = self.rule_slot[leaf.rule];
                if self.masked[local] || self.found[local] >= MAX_SUBSTS_PER_CLASS {
                    continue;
                }
                self.out[local].push(Subst::from_pairs(
                    leaf.subst_template
                        .iter()
                        .map(|&(v, r)| (v, self.regs[r as usize]))
                        .collect(),
                ));
                self.found[local] += 1;
                if self.found[local] == MAX_SUBSTS_PER_CLASS {
                    // Prune this rule's path for the rest of the
                    // class — it can't emit again, so nodes serving
                    // only it are dead weight (the solo VM stops its
                    // whole scan here; this is that abort, per rule).
                    // The rule emits exactly here, so the path starts
                    // at the current node.
                    let mut n = node as u32;
                    while n != u32::MAX {
                        self.node_live[n as usize] -= 1;
                        self.cap_undo.push(n);
                        n = self.parent[n as usize];
                    }
                    // Any leaf left in this loop is capped or masked
                    // too once `live` hits zero, so returning here
                    // skips no emission.
                    self.live -= 1;
                    if self.live == 0 {
                        return RunOutcome::SubstLimit;
                    }
                }
            }
        }
        self.run_plan(egraph, self.plan_range[node], budget)
    }

    /// Executes one child plan (a `plan_pool` range): singles run the
    /// solo discipline, merged groups share a single scan of the
    /// class's e-nodes.
    fn run_plan<N: Analysis<L>>(
        &mut self,
        egraph: &EGraph<L, N>,
        range: (u32, u32),
        budget: &mut usize,
    ) -> RunOutcome {
        let plan_pool = self.plan_pool;
        for group in &plan_pool[range.0 as usize..range.1 as usize] {
            let outcome = match group {
                ChildGroup::Single(c) => {
                    let c = *c as usize;
                    if self.node_live[c] == 0 {
                        continue;
                    }
                    self.exec(egraph, c, budget)
                }
                ChildGroup::MergedBinds { i, members } => {
                    self.merged_scan(egraph, *i, members, budget)
                }
            };
            match outcome {
                RunOutcome::Complete => {}
                stop => return stop,
            }
        }
        RunOutcome::Complete
    }

    /// One pass over the class in register `i` serving every active
    /// member `Bind`: each e-node is dispatched to the (at most one —
    /// members carry distinct operator keys) member that matches it.
    ///
    /// The work budget is decremented once per (e-node, active member)
    /// pair — exactly the decrements the members' separate solo scans
    /// would make — so a completed shared search still dominates every
    /// rule's solo visit count and the budget-exactness argument in
    /// the type-level docs is unchanged. The cancel token is polled
    /// every e-node here (merged scans progress the counter in steps,
    /// so the solo path's modulo check could skip a quantum boundary);
    /// that is at least as responsive as the solo discipline.
    fn merged_scan<N: Analysis<L>>(
        &mut self,
        egraph: &EGraph<L, N>,
        i: Reg,
        members: &[MergedMember<L>],
        budget: &mut usize,
    ) -> RunOutcome {
        let mut active = members
            .iter()
            .filter(|m| self.node_live[m.node as usize] > 0)
            .count();
        if active == 0 {
            return RunOutcome::Complete;
        }
        let class = egraph.eclass(self.regs[i as usize]);
        for enode in class.iter() {
            if *budget < active {
                return RunOutcome::BudgetExhausted;
            }
            *budget -= active;
            if self.cancel.is_cancelled() {
                return RunOutcome::Cancelled;
            }
            for member in members {
                if !member.pat.matches(enode) {
                    continue;
                }
                if self.node_live[member.node as usize] > 0 {
                    let base = member.out as usize;
                    for (k, &child) in enode.children().iter().enumerate() {
                        self.regs[base + k] = child;
                    }
                    let caps_before = self.cap_undo.len();
                    match self.emit_and_descend(egraph, member.node as usize, budget) {
                        RunOutcome::Complete => {}
                        stop => return stop,
                    }
                    // A cap event below may have deactivated members;
                    // refresh the per-e-node charge (each live rule's
                    // solo visits stay dominated, and a capped rule's
                    // solo run aborted at its cap, so dropping its
                    // charge loses nothing).
                    if self.cap_undo.len() != caps_before {
                        active = members
                            .iter()
                            .filter(|m| self.node_live[m.node as usize] > 0)
                            .count();
                        if active == 0 {
                            return RunOutcome::Complete;
                        }
                    }
                }
                // An e-node carries one operator: no other member can
                // match it (identical canonical instructions dedupe
                // into one trie node), so the rest of the walk would
                // only fail the `matches` test.
                break;
            }
        }
        RunOutcome::Complete
    }
}

/// Computes, for each pattern node, whether its subtree is ground
/// (contains no variables).
pub(crate) fn ground_map<L: Language>(ast: &RecExpr<ENodeOrVar<L>>) -> Vec<bool> {
    let mut ground = vec![false; ast.len()];
    for (i, node) in ast.iter().enumerate() {
        ground[i] = match node {
            ENodeOrVar::Var(_) => false,
            ENodeOrVar::ENode(n) => n.children().iter().all(|c| ground[c.index()]),
        };
    }
    ground
}

/// Copies the ground subtree rooted at `pat` out of the pattern AST
/// into a standalone [`RecExpr`] suitable for
/// [`EGraph::lookup_expr`].
pub(crate) fn extract_ground_term<L: Language>(
    ast: &RecExpr<ENodeOrVar<L>>,
    pat: Id,
) -> RecExpr<L> {
    RecExpr::from_root_and_fn(pat, |id| match &ast[id] {
        ENodeOrVar::ENode(n) => n.clone(),
        ENodeOrVar::Var(_) => unreachable!("ground subterms contain no variables"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pattern, SymbolLang};

    fn pat(s: &str) -> Pattern<SymbolLang> {
        s.parse().unwrap()
    }

    #[test]
    fn compiles_bind_and_compare() {
        let p = pat("(f ?x ?x)");
        let prog = p.program();
        assert_eq!(prog.instructions().len(), 2);
        assert!(matches!(prog.instructions()[0], Instruction::Bind { .. }));
        assert!(matches!(
            prog.instructions()[1],
            Instruction::Compare { .. }
        ));
    }

    #[test]
    fn compiles_ground_subterm_to_lookup() {
        let p = pat("(f ?x (g a b))");
        let prog = p.program();
        assert!(prog
            .instructions()
            .iter()
            .any(|i| matches!(i, Instruction::Lookup { .. })));
        // The variable-free subtree must not emit any Bind beyond the
        // root's.
        let binds = prog
            .instructions()
            .iter()
            .filter(|i| matches!(i, Instruction::Bind { .. }))
            .count();
        assert_eq!(binds, 1);
    }

    #[test]
    fn root_var_compiles_to_scan() {
        let p = pat("?x");
        assert!(p.program().is_scan());
    }

    #[test]
    fn register_count_covers_children() {
        let p = pat("(f (g ?a ?b) ?c)");
        // root children (2) + g children (2) + root reg.
        assert_eq!(p.program().n_regs(), 5);
    }

    use crate::{CancelToken, EGraph, SearchMatches};

    type EG = EGraph<SymbolLang, ()>;

    /// Builds a workload whose search does lots of *failing*
    /// backtracking (so neither the per-class match cap nor the work
    /// budget stops it early): `n_roots` classes `(g A_i B_i)` where
    /// `A_i`/`B_i` each hold `width` f-nodes over disjoint leaves, and
    /// the nonlinear probe `(g (f ?x) (f ?x))` never closes.
    fn explosive_workload(n_roots: usize, width: usize) -> (EG, Pattern<SymbolLang>) {
        let mut eg = EG::default();
        for r in 0..n_roots {
            let side = |tag: &str, eg: &mut EG| {
                let fs: Vec<_> = (0..width)
                    .map(|i| {
                        let leaf = eg.add(SymbolLang::leaf(format!("{tag}{r}_{i}")));
                        eg.add(SymbolLang::new("f", vec![leaf]))
                    })
                    .collect();
                for w in fs.windows(2) {
                    eg.union(w[0], w[1]);
                }
                fs[0]
            };
            let a = side("a", &mut eg);
            let b = side("b", &mut eg);
            eg.add(SymbolLang::new("g", vec![a, b]));
        }
        eg.rebuild();
        (eg, pat("(g (f ?x) (f ?x))"))
    }

    #[test]
    fn cancelled_token_stops_within_one_quantum() {
        let (eg, p) = explosive_workload(1, 400);
        let ground = p.program().resolve_ground_terms(&eg).unwrap();
        let class = *eg
            .classes_with_op(&SymbolLang::leaf("g").discriminant())
            .first()
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let mut regs = Vec::new();
        let mut substs = Vec::new();
        let start_budget = 10_000usize;
        let mut budget = start_budget;
        let outcome = p.program().run(
            &eg,
            class,
            &ground,
            &mut regs,
            &mut substs,
            &mut budget,
            usize::MAX,
            &token,
        );
        assert_eq!(outcome, RunOutcome::Cancelled);
        let work_done = start_budget - budget;
        assert!(
            work_done <= CANCEL_CHECK_QUANTUM,
            "a set token must stop the VM within one quantum, did {work_done} visits"
        );
        // Sanity: the same class costs far more than a quantum when
        // the token stays clear.
        let mut budget = start_budget;
        let outcome = p.program().run(
            &eg,
            class,
            &ground,
            &mut regs,
            &mut substs,
            &mut budget,
            usize::MAX,
            &CancelToken::new(),
        );
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn pre_cancelled_search_returns_no_matches() {
        let (eg, p) = explosive_workload(10, 60);
        let token = CancelToken::new();
        token.cancel();
        let matches: Vec<SearchMatches> = p.search_with_limit_and_token(&eg, usize::MAX, &token);
        assert!(matches.is_empty());
    }

    #[test]
    fn cancellation_checked_between_small_classes() {
        // Classes this small (2 visits each) never reach the in-VM
        // budget-quantum poll; the driver loop must still observe the
        // token between classes.
        let mut eg = EG::default();
        for i in 0..500 {
            let a = eg.add(SymbolLang::leaf(format!("p{i}")));
            let b = eg.add(SymbolLang::leaf(format!("q{i}")));
            eg.add(SymbolLang::new("g", vec![a, b]));
        }
        eg.rebuild();
        let p = pat("(g ?x ?y)");
        assert_eq!(p.search(&eg).len(), 500);
        let token = CancelToken::new();
        token.cancel();
        assert!(p
            .search_with_limit_and_token(&eg, usize::MAX, &token)
            .is_empty());
    }

    /// Per-rule `(eclass, substs)` view for equality assertions.
    fn flat(matches: &[SearchMatches]) -> Vec<(crate::Id, Vec<crate::Subst>)> {
        matches
            .iter()
            .map(|m| (m.eclass, m.substs.clone()))
            .collect()
    }

    /// Asserts the shared trie reproduces every pattern's per-pattern
    /// match set exactly, at the given thread counts.
    fn assert_trie_matches_per_pattern(eg: &EG, pats: &[Pattern<SymbolLang>], threads: &[usize]) {
        let refs: Vec<&Pattern<SymbolLang>> = pats.iter().collect();
        let prog = RuleSetProgram::compile(&refs);
        let directives = vec![RuleDirective::Limit(usize::MAX); pats.len()];
        for &t in threads {
            let slots = prog.search(eg, &directives, &CancelToken::new(), None, t);
            for (pattern, slot) in pats.iter().zip(&slots) {
                let (matches, _) = slot
                    .as_ref()
                    .expect("no rule may be skipped without cancel");
                assert_eq!(
                    flat(matches),
                    flat(&pattern.search(eg)),
                    "trie vs per-pattern VM diverged for `{pattern}` at {t} threads"
                );
            }
        }
    }

    #[test]
    fn trie_shares_structurally_common_prefixes() {
        let p1 = pat("(f (g ?a ?b) ?c)");
        let p2 = pat("(f (g ?a ?b) (g ?a ?b))");
        let prog = RuleSetProgram::compile(&[&p1, &p2]);
        assert_eq!(prog.n_branches(), 1);
        // The `(f (g ?a ?b) ...` prefix (Bind f, Bind g) must be
        // stored once, even though the two patterns' ASTs assign
        // different ids to the shared nodes.
        assert!(
            prog.n_trie_nodes() < prog.total_rule_instructions(),
            "expected prefix sharing: {} trie nodes vs {} total instructions",
            prog.n_trie_nodes(),
            prog.total_rule_instructions()
        );
    }

    #[test]
    fn trie_distinguishes_different_ground_terms() {
        // Both Lookups get local term index 0 in their own programs;
        // the shared table must keep them apart.
        let mut eg = EG::default();
        let a = eg.add(SymbolLang::leaf("a"));
        let b = eg.add(SymbolLang::leaf("b"));
        let x = eg.add(SymbolLang::leaf("x"));
        eg.add(SymbolLang::new("f", vec![a, x]));
        eg.add(SymbolLang::new("f", vec![b, x]));
        eg.rebuild();
        let pats = [pat("(f a ?x)"), pat("(f b ?x)"), pat("(f c ?x)")];
        assert_trie_matches_per_pattern(&eg, &pats, &[1, 2]);
    }

    #[test]
    fn trie_handles_compare_divergence_and_scan_mix() {
        let mut eg = EG::default();
        for i in 0..6 {
            let l = eg.add(SymbolLang::leaf(format!("l{i}")));
            let r = eg.add(SymbolLang::leaf(format!("r{}", i / 2)));
            let f = eg.add(SymbolLang::new("f", vec![l, r]));
            if i % 2 == 0 {
                eg.add(SymbolLang::new("f", vec![f, f]));
            }
        }
        eg.rebuild();
        let pats = [
            // Shared Bind prefix, diverging on Compare vs nothing.
            pat("(f ?x ?x)"),
            pat("(f ?x ?y)"),
            // Var-rooted Scan mixed with bound-root patterns.
            pat("?x"),
            // Nested shape sharing the same root op.
            pat("(f (f ?a ?b) ?c)"),
            // Identical LHS registered twice (two rules, same trie leaf).
            pat("(f ?x ?y)"),
        ];
        assert_trie_matches_per_pattern(&eg, &pats, &[1, 2, 5]);
    }

    #[test]
    fn shared_budget_exhaustion_falls_back_to_exact_per_rule_search() {
        // The explosive probe alone blows MATCH_WORK_BUDGET on this
        // class (400×400 backtracking visits), so both the shared walk
        // and the solo run truncate — the fallback must make the
        // shared result byte-identical anyway, and the cheap rule
        // sharing the branch must still see its full match set (no
        // budget starvation from sharing).
        let (eg, explosive) = explosive_workload(1, 400);
        let cheap = pat("(g ?a ?b)");
        let pats = [explosive, cheap];
        assert_trie_matches_per_pattern(&eg, &pats, &[1]);
    }

    #[test]
    fn skip_directive_prunes_but_keeps_other_rules_exact() {
        let (eg, explosive) = explosive_workload(2, 40);
        let cheap = pat("(g ?a ?b)");
        let prog = RuleSetProgram::compile(&[&explosive, &cheap]);
        let directives = [RuleDirective::Skip, RuleDirective::Limit(usize::MAX)];
        let slots = prog.search_serial(&eg, &directives, &CancelToken::new(), None);
        let (skipped, skipped_time) = slots[0].as_ref().unwrap();
        assert!(skipped.is_empty(), "a Skip rule yields no matches");
        assert_eq!(*skipped_time, std::time::Duration::ZERO);
        let (matches, _) = slots[1].as_ref().unwrap();
        assert_eq!(flat(matches), flat(&pat("(g ?a ?b)").search(&eg)));
    }

    #[test]
    fn match_limit_directive_masks_at_class_boundary() {
        let mut eg = EG::default();
        for i in 0..10 {
            let a = eg.add(SymbolLang::leaf(format!("a{i}")));
            let b = eg.add(SymbolLang::leaf(format!("b{i}")));
            eg.add(SymbolLang::new("g", vec![a, b]));
        }
        eg.rebuild();
        let p = pat("(g ?x ?y)");
        let prog = RuleSetProgram::compile(&[&p]);
        for limit in [0usize, 3, 9, 100] {
            let slots = prog.search_serial(
                &eg,
                &[RuleDirective::Limit(limit)],
                &CancelToken::new(),
                None,
            );
            let (matches, _) = slots[0].as_ref().unwrap();
            assert_eq!(
                flat(matches),
                flat(&p.search_with_limit(&eg, limit)),
                "limit={limit}"
            );
        }
    }

    #[test]
    fn cancelled_token_stops_shared_trie_within_one_quantum() {
        let (eg, explosive) = explosive_workload(1, 400);
        let cheap = pat("(g ?a ?b)");
        let prog = RuleSetProgram::compile(&[&explosive, &cheap]);
        let class = *eg
            .classes_with_op(&SymbolLang::leaf("g").discriminant())
            .first()
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let ground = prog.resolve_shared_ground(&eg);
        let masked = vec![false, false];
        let mut node_live = prog.branch_live_counts(0, &masked);
        let mut cap_undo = Vec::new();
        let mut regs = vec![Id::from_index(0); prog.n_regs];
        regs[0] = eg.find(class);
        let mut found = vec![0usize; 2];
        let mut outs = vec![Vec::new(), Vec::new()];
        let mut machine = MultiMachine {
            instr: &prog.instr,
            plan_range: &prog.plan_range,
            out_range: &prog.out_range,
            plan_pool: &prog.plan_pool,
            leaf_pool: &prog.leaf_pool,
            parent: &prog.parent,
            regs: &mut regs,
            ground: &ground,
            node_live: &mut node_live,
            cap_undo: &mut cap_undo,
            rule_slot: &prog.rule_slot,
            masked: &masked,
            found: &mut found,
            live: 2,
            out: &mut outs,
            cancel: &token,
        };
        let start_budget = 10_000usize;
        let mut budget = start_budget;
        let outcome = machine.run_plan(&eg, prog.root_plan_range[0], &mut budget);
        assert_eq!(outcome, RunOutcome::Cancelled);
        let work_done = start_budget - budget;
        assert!(
            work_done <= CANCEL_CHECK_QUANTUM,
            "a set token must stop the shared trie within one quantum, did {work_done} visits"
        );
    }

    #[test]
    fn pre_cancelled_shared_search_skips_every_rule() {
        let (eg, explosive) = explosive_workload(4, 40);
        let cheap = pat("(g ?a ?b)");
        let prog = RuleSetProgram::compile(&[&explosive, &cheap]);
        let directives = vec![RuleDirective::Limit(usize::MAX); 2];
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            let slots = prog.search(&eg, &directives, &token, None, threads);
            assert!(
                slots.iter().all(Option::is_none),
                "a pre-set token must report every rule as skipped"
            );
        }
    }

    #[test]
    fn expired_deadline_skips_every_rule() {
        let (eg, explosive) = explosive_workload(4, 40);
        let prog = RuleSetProgram::compile(&[&explosive]);
        // `past` requires strictly-greater, so an already-elapsed
        // instant is an expired deadline by the next check.
        let deadline = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let slots = prog.search_serial(
            &eg,
            &[RuleDirective::Limit(usize::MAX)],
            &CancelToken::new(),
            Some(deadline),
        );
        assert!(slots.iter().all(Option::is_none));
    }

    #[test]
    fn mid_search_cancellation_stops_promptly() {
        use std::time::{Duration, Instant};
        let (eg, p) = explosive_workload(80, 200);
        let start = Instant::now();
        let full = p.search(&eg);
        let full_time = start.elapsed();
        assert!(full.is_empty(), "the nonlinear probe must never close");

        let token = CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                token.cancel();
            })
        };
        let start = Instant::now();
        let cancelled = p.search_with_limit_and_token(&eg, usize::MAX, &token);
        let cancelled_time = start.elapsed();
        canceller.join().unwrap();
        assert!(cancelled.is_empty());
        // Only discriminating when the full search is slow enough for
        // the 5 ms cancel to land mid-flight.
        if full_time > Duration::from_millis(50) {
            assert!(
                cancelled_time < full_time / 2,
                "cancelled search took {cancelled_time:?} vs full {full_time:?}"
            );
        }
    }
}
