//! Patterns over a [`Language`], compiled to e-matching VM programs.
//!
//! Searching is performed by the compiled abstract machine in
//! [`crate::machine`]; the legacy recursive backtracking matcher is
//! retained behind the `oracle` feature (and in unit tests) purely as
//! a differential-testing oracle.

use std::fmt;
use std::str::FromStr;

use crate::machine::{Program, RunOutcome};
use crate::recexpr::{parse_sexp, Sexp};
use crate::{
    Analysis, CancelToken, EGraph, FromOp, Id, Language, ParseRecExprError, RecExpr, Symbol,
};

/// A pattern variable, written `?name` in pattern syntax.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Symbol);

impl Var {
    /// Creates a variable from its name (without the leading `?`).
    pub fn new(name: impl Into<Symbol>) -> Self {
        Var(name.into())
    }

    /// The variable's name (without the leading `?`).
    pub fn name(self) -> &'static str {
        self.0.as_str()
    }
}

impl FromStr for Var {
    type Err = ParseRecExprError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.strip_prefix('?') {
            Some(rest) if !rest.is_empty() => Ok(Var::new(rest)),
            _ => Err(ParseRecExprError::new(format!(
                "pattern variable must look like `?x`, got `{s}`"
            ))),
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A node in a pattern: either a concrete e-node or a variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ENodeOrVar<L> {
    /// A concrete operator whose children are pattern nodes.
    ENode(L),
    /// A pattern variable.
    Var(Var),
}

impl<L: Language> Language for ENodeOrVar<L> {
    type Discriminant = Option<L::Discriminant>;

    fn discriminant(&self) -> Self::Discriminant {
        match self {
            ENodeOrVar::ENode(n) => Some(n.discriminant()),
            ENodeOrVar::Var(_) => None,
        }
    }

    fn children(&self) -> &[Id] {
        match self {
            ENodeOrVar::ENode(n) => n.children(),
            ENodeOrVar::Var(_) => &[],
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            ENodeOrVar::ENode(n) => n.children_mut(),
            ENodeOrVar::Var(_) => &mut [],
        }
    }
}

impl<L: Language> fmt::Display for ENodeOrVar<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ENodeOrVar::ENode(n) => write!(f, "{n}"),
            ENodeOrVar::Var(v) => write!(f, "{v}"),
        }
    }
}

/// A substitution from pattern variables to e-class ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Subst {
    vec: Vec<(Var, Id)>,
}

impl Subst {
    /// Creates an empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a substitution from distinct `(var, id)` pairs (the VM's
    /// match materialization; callers guarantee distinctness).
    pub(crate) fn from_pairs(vec: Vec<(Var, Id)>) -> Self {
        debug_assert!(
            vec.iter()
                .enumerate()
                .all(|(i, (v, _))| vec[..i].iter().all(|(u, _)| u != v)),
            "from_pairs requires distinct variables"
        );
        Subst { vec }
    }

    /// Binds `var` to `id`, returning the previous binding if any.
    pub fn insert(&mut self, var: Var, id: Id) -> Option<Id> {
        for pair in &mut self.vec {
            if pair.0 == var {
                return Some(std::mem::replace(&mut pair.1, id));
            }
        }
        self.vec.push((var, id));
        None
    }

    /// Looks up the binding of `var`.
    pub fn get(&self, var: Var) -> Option<Id> {
        self.vec.iter().find(|(v, _)| *v == var).map(|(_, id)| *id)
    }

    /// Iterates over `(var, id)` bindings.
    pub fn iter(&self) -> std::slice::Iter<'_, (Var, Id)> {
        self.vec.iter()
    }

    pub(crate) fn canonicalize<L: Language, N: Analysis<L>>(&mut self, egraph: &EGraph<L, N>) {
        for (_, id) in &mut self.vec {
            *id = egraph.find(*id);
        }
        self.vec.sort_unstable();
    }
}

impl std::ops::Index<Var> for Subst {
    type Output = Id;
    fn index(&self, var: Var) -> &Id {
        self.vec
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, id)| id)
            .unwrap_or_else(|| panic!("var {var} not bound in subst"))
    }
}

/// The matches a pattern found in one e-class.
#[derive(Debug, Clone)]
pub struct SearchMatches {
    /// The matched e-class.
    pub eclass: Id,
    /// The distinct substitutions under which the pattern matches.
    pub substs: Vec<Subst>,
}

/// Error from parsing a [`Pattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError(ParseRecExprError);

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pattern: {}", self.0)
    }
}

impl std::error::Error for ParsePatternError {}

impl From<ParseRecExprError> for ParsePatternError {
    fn from(e: ParseRecExprError) -> Self {
        ParsePatternError(e)
    }
}

/// A pattern over language `L`: an expression with variables.
///
/// Patterns are parsed from s-expressions where atoms starting with `?`
/// are variables:
///
/// ```
/// use egraph::{Pattern, SymbolLang};
/// let p: Pattern<SymbolLang> = "(+ ?a (* ?b ?a))".parse().unwrap();
/// assert_eq!(p.vars().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Pattern<L> {
    /// The pattern expression; the root is the last node.
    pub ast: RecExpr<ENodeOrVar<L>>,
    vars: Vec<Var>,
    /// The e-matching VM program this pattern compiles to (built once,
    /// at construction).
    program: Program<L>,
}

impl<L: Language> PartialEq for Pattern<L> {
    fn eq(&self, other: &Self) -> bool {
        self.ast == other.ast
    }
}

impl<L: Language> Eq for Pattern<L> {}

impl<L: Language> Pattern<L> {
    /// Creates a pattern from its AST, compiling it to a VM
    /// [`Program`].
    pub fn new(ast: RecExpr<ENodeOrVar<L>>) -> Self {
        let mut vars = Vec::new();
        for node in ast.iter() {
            if let ENodeOrVar::Var(v) = node {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
        let program = Program::compile(&ast);
        Self { ast, vars, program }
    }

    /// The distinct variables in this pattern, in first-occurrence order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The compiled e-matching program.
    pub fn program(&self) -> &Program<L> {
        &self.program
    }

    /// Searches the whole e-graph for matches.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is not clean (see [`EGraph::rebuild`]).
    pub fn search<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        self.search_with_limit(egraph, usize::MAX)
    }

    /// Like [`Pattern::search`], but stops once more than `limit`
    /// substitutions have been collected (the total may slightly exceed
    /// `limit` by the last class's matches). This lets schedulers bound
    /// the cost of searching explosive rules.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is not clean (see [`EGraph::rebuild`]).
    pub fn search_with_limit<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        limit: usize,
    ) -> Vec<SearchMatches> {
        self.search_with_limit_and_token(egraph, limit, &CancelToken::new())
    }

    /// Like [`Pattern::search_with_limit`], with a cooperative
    /// [`CancelToken`] checked *inside* the matching VM (every
    /// [`crate::machine::CANCEL_CHECK_QUANTUM`] e-node visits), so a
    /// cancellation request stops even a single explosive rule search
    /// promptly. Matches found before the cancellation are returned.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is not clean (see [`EGraph::rebuild`]).
    pub fn search_with_limit_and_token<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        limit: usize,
        cancel: &CancelToken,
    ) -> Vec<SearchMatches> {
        assert!(
            egraph.is_clean(),
            "search requires a clean (rebuilt) e-graph"
        );
        let mut out = Vec::new();
        let mut total = 0usize;
        if self.program.is_scan() {
            // A bare-variable pattern matches every class with the
            // root variable bound to it (the VM's `Scan`).
            for class in egraph.classes() {
                if cancel.is_cancelled() {
                    break;
                }
                out.push(SearchMatches {
                    eclass: class.id,
                    substs: vec![self.program.subst_for_class(class.id)],
                });
                total += 1;
                if total > limit {
                    break;
                }
            }
            return out;
        }
        // Ground subterms resolve once per search; a missing one means
        // the pattern cannot match anywhere.
        let Some(ground) = self.program.resolve_ground_terms(egraph) else {
            return out;
        };
        let root_disc = match &self.ast[self.ast.root()] {
            ENodeOrVar::ENode(n) => n.discriminant(),
            ENodeOrVar::Var(_) => unreachable!("var-rooted patterns compile to Scan"),
        };
        // Only classes containing the root operator can match; use the
        // e-graph's operator index to skip the rest.
        let mut regs = Vec::new();
        for &id in egraph.classes_with_op(&root_disc) {
            // The in-VM poll only triggers on budget quanta *within* a
            // class; checking here too keeps cancellation latency
            // bounded across runs of small classes.
            if cancel.is_cancelled() {
                break;
            }
            let (m, outcome) = self.run_vm_on_class(egraph, id, &ground, &mut regs, cancel);
            if let Some(m) = m {
                total += m.substs.len();
                out.push(m);
            }
            if outcome == RunOutcome::Cancelled || total > limit {
                break;
            }
        }
        out
    }

    /// Searches one e-class for matches.
    ///
    /// The number of substitutions explored per e-class is capped (at
    /// [`MAX_SUBSTS_PER_CLASS`]) and the per-class matcher work is
    /// bounded (by [`MATCH_WORK_BUDGET`]) to contain the worst-case
    /// backtracking blow-up on very large e-classes; truncation is
    /// deterministic.
    pub fn search_eclass<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        eclass: Id,
    ) -> Option<SearchMatches> {
        if self.program.is_scan() {
            let eclass = egraph.find(eclass);
            return Some(SearchMatches {
                eclass,
                substs: vec![self.program.subst_for_class(eclass)],
            });
        }
        let ground = self.program.resolve_ground_terms(egraph)?;
        let mut regs = Vec::new();
        self.run_vm_on_class(egraph, eclass, &ground, &mut regs, &CancelToken::new())
            .0
    }

    /// Runs the compiled program on one candidate class and packages
    /// surviving matches (canonicalized, sorted, deduplicated). Shared
    /// with the relational backend, whose per-class confirmation step
    /// must reproduce the per-pattern truncation byte for byte.
    pub(crate) fn run_vm_on_class<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        eclass: Id,
        ground: &[Id],
        regs: &mut Vec<Id>,
        cancel: &CancelToken,
    ) -> (Option<SearchMatches>, RunOutcome) {
        let eclass = egraph.find(eclass);
        let mut substs = Vec::new();
        let mut budget = MATCH_WORK_BUDGET;
        let outcome = self.program.run(
            egraph,
            eclass,
            ground,
            regs,
            &mut substs,
            &mut budget,
            MAX_SUBSTS_PER_CLASS,
            cancel,
        );
        for s in &mut substs {
            s.canonicalize(egraph);
        }
        substs.sort_unstable();
        substs.dedup();
        let matches = if substs.is_empty() {
            None
        } else {
            Some(SearchMatches { eclass, substs })
        };
        (matches, outcome)
    }

    /// Instantiates the pattern under `subst`, adding e-nodes to the
    /// e-graph; returns the root class.
    ///
    /// # Panics
    ///
    /// Panics if a pattern variable is unbound in `subst`.
    pub fn instantiate<N: Analysis<L>>(&self, egraph: &mut EGraph<L, N>, subst: &Subst) -> Id {
        let mut ids: Vec<Id> = Vec::with_capacity(self.ast.len());
        for node in self.ast.iter() {
            let id = match node {
                ENodeOrVar::Var(v) => subst[*v],
                ENodeOrVar::ENode(n) => {
                    let n = n.map_children(|c| ids[c.index()]);
                    egraph.add(n)
                }
            };
            ids.push(id);
        }
        *ids.last().expect("patterns are non-empty")
    }
}

/// The deterministic cap on substitutions explored per e-class.
pub const MAX_SUBSTS_PER_CLASS: usize = 256;

/// The deterministic cap on matcher *work* (e-node visits) per e-class:
/// backtracking over several wide e-classes multiplies, so output caps
/// alone do not bound the scan cost.
pub const MATCH_WORK_BUDGET: usize = 50_000;

#[cfg(any(test, feature = "oracle"))]
impl<L: Language> Pattern<L> {
    /// Searches the whole e-graph with the *legacy recursive
    /// backtracking matcher* — retained only as a differential-testing
    /// oracle for the compiled VM (enable the `oracle` feature to use
    /// it from other crates' tests). No limits beyond the per-class
    /// caps are applied.
    ///
    /// # Panics
    ///
    /// Panics if the e-graph is not clean (see [`EGraph::rebuild`]).
    pub fn search_oracle<N: Analysis<L>>(&self, egraph: &EGraph<L, N>) -> Vec<SearchMatches> {
        assert!(
            egraph.is_clean(),
            "search requires a clean (rebuilt) e-graph"
        );
        let mut out = Vec::new();
        match &self.ast[self.ast.root()] {
            ENodeOrVar::ENode(root) => {
                for &id in egraph.classes_with_op(&root.discriminant()) {
                    out.extend(self.search_eclass_oracle(egraph, id));
                }
            }
            ENodeOrVar::Var(_) => {
                for class in egraph.classes() {
                    out.extend(self.search_eclass_oracle(egraph, class.id));
                }
            }
        }
        out
    }

    /// Searches one e-class with the legacy recursive matcher (see
    /// [`Pattern::search_oracle`]).
    pub fn search_eclass_oracle<N: Analysis<L>>(
        &self,
        egraph: &EGraph<L, N>,
        eclass: Id,
    ) -> Option<SearchMatches> {
        let eclass = egraph.find(eclass);
        let mut substs = Vec::new();
        let mut budget = MATCH_WORK_BUDGET;
        match_pattern(
            egraph,
            &self.ast,
            self.ast.root(),
            eclass,
            &Subst::new(),
            &mut substs,
            &mut budget,
        );
        for s in &mut substs {
            s.canonicalize(egraph);
        }
        substs.sort_unstable();
        substs.dedup();
        if substs.is_empty() {
            None
        } else {
            Some(SearchMatches { eclass, substs })
        }
    }
}

/// Recursively matches pattern node `pat_id` against e-class `eclass`,
/// extending `subst`; pushes every complete substitution into `out`
/// (up to [`MAX_SUBSTS_PER_CLASS`], spending at most `budget` e-node
/// visits).
#[cfg(any(test, feature = "oracle"))]
#[allow(clippy::too_many_arguments)]
fn match_pattern<L: Language, N: Analysis<L>>(
    egraph: &EGraph<L, N>,
    ast: &RecExpr<ENodeOrVar<L>>,
    pat_id: Id,
    eclass: Id,
    subst: &Subst,
    out: &mut Vec<Subst>,
    budget: &mut usize,
) {
    if out.len() >= MAX_SUBSTS_PER_CLASS || *budget == 0 {
        return;
    }
    match &ast[pat_id] {
        ENodeOrVar::Var(v) => {
            let eclass = egraph.find(eclass);
            match subst.get(*v) {
                Some(bound) if egraph.find(bound) != eclass => {}
                Some(_) => out.push(subst.clone()),
                None => {
                    let mut s = subst.clone();
                    s.insert(*v, eclass);
                    out.push(s);
                }
            }
        }
        ENodeOrVar::ENode(pat_node) => {
            let class = egraph.eclass(eclass);
            for enode in class.iter() {
                if out.len() >= MAX_SUBSTS_PER_CLASS || *budget == 0 {
                    return;
                }
                *budget -= 1;
                if !pat_node.matches(enode) {
                    continue;
                }
                // Match children pairwise, threading substitutions.
                let mut partial = vec![subst.clone()];
                for (&pat_child, &eclass_child) in pat_node.children().iter().zip(enode.children())
                {
                    if partial.is_empty() {
                        break;
                    }
                    let mut next = Vec::new();
                    for s in &partial {
                        if next.len() >= MAX_SUBSTS_PER_CLASS || *budget == 0 {
                            break;
                        }
                        match_pattern(egraph, ast, pat_child, eclass_child, s, &mut next, budget);
                    }
                    partial = next;
                }
                out.extend(partial);
            }
        }
    }
}

fn sexp_into_pattern<L: FromOp>(
    sexp: &Sexp,
    expr: &mut RecExpr<ENodeOrVar<L>>,
) -> Result<Id, ParseRecExprError> {
    match sexp {
        Sexp::Atom(atom) if atom.starts_with('?') => {
            let var: Var = atom.parse()?;
            Ok(expr.add(ENodeOrVar::Var(var)))
        }
        Sexp::Atom(op) => {
            let node = L::from_op(op, vec![]).map_err(|e| ParseRecExprError::new(e.to_string()))?;
            Ok(expr.add(ENodeOrVar::ENode(node)))
        }
        Sexp::List(items) => {
            let op = match &items[0] {
                Sexp::Atom(op) if !op.starts_with('?') => op,
                _ => {
                    return Err(ParseRecExprError::new(
                        "operator position must be a non-variable atom",
                    ))
                }
            };
            let children = items[1..]
                .iter()
                .map(|s| sexp_into_pattern(s, expr))
                .collect::<Result<Vec<Id>, _>>()?;
            // Children of the L node refer to pattern-AST ids.
            let node =
                L::from_op(op, children).map_err(|e| ParseRecExprError::new(e.to_string()))?;
            Ok(expr.add(ENodeOrVar::ENode(node)))
        }
    }
}

impl<L: FromOp> FromStr for Pattern<L> {
    type Err = ParsePatternError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let sexp = parse_sexp(s)?;
        let mut ast = RecExpr::default();
        sexp_into_pattern(&sexp, &mut ast)?;
        Ok(Pattern::new(ast))
    }
}

impl<L: Language> fmt::Display for Pattern<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.ast)
    }
}

impl<L: Language> From<&RecExpr<L>> for Pattern<L> {
    /// Converts a concrete expression into a variable-free pattern.
    fn from(expr: &RecExpr<L>) -> Self {
        let mut ast = RecExpr::default();
        for node in expr.iter() {
            ast.add(ENodeOrVar::ENode(node.clone()));
        }
        Pattern::new(ast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolLang;

    type EG = EGraph<SymbolLang, ()>;

    fn pat(s: &str) -> Pattern<SymbolLang> {
        s.parse().unwrap()
    }

    #[test]
    fn parse_pattern_vars() {
        let p = pat("(+ ?a (* ?b ?a))");
        assert_eq!(p.vars(), &[Var::new("a"), Var::new("b")]);
        assert_eq!(p.to_string(), "(+ ?a (* ?b ?a))");
    }

    #[test]
    fn parse_pattern_errors() {
        assert!("(?f x)".parse::<Pattern<SymbolLang>>().is_err());
        assert!("?".parse::<Pattern<SymbolLang>>().is_err());
    }

    #[test]
    fn simple_search() {
        let mut eg = EG::default();
        let expr: RecExpr<SymbolLang> = "(+ x y)".parse().unwrap();
        let root = eg.add_expr(&expr);
        eg.rebuild();
        let p = pat("(+ ?a ?b)");
        let matches = p.search(&eg);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].eclass, eg.find(root));
        assert_eq!(matches[0].substs.len(), 1);
        let s = &matches[0].substs[0];
        let x = eg.lookup(&SymbolLang::leaf("x")).unwrap();
        let y = eg.lookup(&SymbolLang::leaf("y")).unwrap();
        assert_eq!(s[Var::new("a")], x);
        assert_eq!(s[Var::new("b")], y);
    }

    #[test]
    fn nonlinear_pattern_requires_equality() {
        let mut eg = EG::default();
        let xy = eg.add_expr(&"(+ x y)".parse().unwrap());
        let xx = eg.add_expr(&"(+ x x)".parse().unwrap());
        eg.rebuild();
        let p = pat("(+ ?a ?a)");
        let matches = p.search(&eg);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].eclass, eg.find(xx));
        assert_ne!(matches[0].eclass, eg.find(xy));
    }

    #[test]
    fn search_across_union_finds_all_shapes() {
        let mut eg = EG::default();
        let a = eg.add_expr(&"(+ x y)".parse().unwrap());
        let b = eg.add_expr(&"(* x y)".parse().unwrap());
        eg.union(a, b);
        eg.rebuild();
        assert_eq!(pat("(+ ?a ?b)").search(&eg).len(), 1);
        assert_eq!(pat("(* ?a ?b)").search(&eg).len(), 1);
        // A pattern whose subterm matches via the union:
        let c = eg.add_expr(&"(f (* x y))".parse().unwrap());
        eg.rebuild();
        let m = pat("(f (+ ?a ?b))").search(&eg);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].eclass, eg.find(c));
    }

    #[test]
    fn multiple_substs_in_one_class() {
        let mut eg = EG::default();
        let a = eg.add_expr(&"(+ x y)".parse().unwrap());
        let b = eg.add_expr(&"(+ y x)".parse().unwrap());
        eg.union(a, b);
        eg.rebuild();
        let m = pat("(+ ?a ?b)").search(&eg);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].substs.len(), 2);
    }

    #[test]
    fn instantiate_adds_term() {
        let mut eg = EG::default();
        let root = eg.add_expr(&"(+ x y)".parse().unwrap());
        eg.rebuild();
        let search = pat("(+ ?a ?b)");
        let substs = search.search(&eg)[0].substs.clone();
        let apply = pat("(+ ?b ?a)");
        let new_id = apply.instantiate(&mut eg, &substs[0]);
        eg.rebuild();
        let swapped = eg.lookup_expr(&"(+ y x)".parse().unwrap());
        assert_eq!(swapped, Some(eg.find(new_id)));
        // Not yet unioned with the original.
        assert_ne!(eg.find(new_id), eg.find(root));
    }

    #[test]
    fn var_pattern_matches_everything() {
        let mut eg = EG::default();
        eg.add_expr(&"(+ x y)".parse().unwrap());
        eg.rebuild();
        let m = pat("?a").search(&eg);
        assert_eq!(m.len(), eg.num_classes());
    }
}
