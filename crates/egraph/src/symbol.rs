//! A tiny global string interner.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string.
///
/// Symbols are cheap to copy, compare, and hash; they are used for
/// variable and operator names. Interning is global and leaks the backing
/// strings, which is fine for the bounded name sets of a term language.
///
/// ```
/// use egraph::Symbol;
/// let a = Symbol::new("x");
/// let b = Symbol::new("x");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "x");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

#[derive(Default)]
struct Interner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| Mutex::new(Interner::default()))
}

impl Symbol {
    /// Interns `name`, returning its symbol.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        let mut interner = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = interner.ids.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(interner.names.len()).expect("too many symbols");
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        interner.names.push(leaked);
        interner.ids.insert(leaked, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().lock().expect("symbol interner poisoned").names[self.0 as usize]
    }
}

impl<S: AsRef<str>> From<S> for Symbol {
    fn from(s: S) -> Self {
        Symbol::new(s)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Symbol::new("foo");
        let b = Symbol::new("bar");
        let c = Symbol::new("foo");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "foo");
        assert_eq!(b.as_str(), "bar");
    }

    #[test]
    fn from_impls() {
        let a: Symbol = "baz".into();
        assert_eq!(a, Symbol::new(String::from("baz")));
    }
}
