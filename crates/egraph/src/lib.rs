//! A from-scratch equality saturation engine in the spirit of `egg`
//! (Willsey et al., POPL 2021), built as the substrate for the BoolE
//! reproduction.
//!
//! The crate provides:
//!
//! * [`EGraph`] — an e-graph with hash-consing, a union-find over
//!   e-classes, and deferred congruence-closure rebuilding.
//! * [`Language`] — the trait describing the operators of a term
//!   language, plus [`RecExpr`] for concrete terms.
//! * [`Pattern`] — s-expression patterns with variables (`?x`) and a
//!   backtracking e-matcher.
//! * [`Rewrite`] / [`Runner`] — rewrite rules and a saturation driver
//!   with iteration, node, and time limits plus backoff scheduling.
//! * [`SearchBackend`] / [`SearchBackendKind`] — pluggable e-matching
//!   strategies (per-pattern VM, shared-prefix trie, generic-join
//!   relational), all match-set-equal.
//! * [`Extractor`] — cost-based term extraction with pluggable
//!   [`CostFunction`]s.
//!
//! # Example
//!
//! ```
//! use egraph::{EGraph, RecExpr, Rewrite, Runner, SymbolLang, AstSize, Extractor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let rules: Vec<Rewrite<SymbolLang, ()>> = vec![
//!     Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)")?,
//!     Rewrite::parse("add-zero", "(+ ?a 0)", "?a")?,
//! ];
//! let expr: RecExpr<SymbolLang> = "(+ 0 (+ x 0))".parse()?;
//! let runner = Runner::default().with_expr(&expr).run(&rules);
//! let extractor = Extractor::new(&runner.egraph, AstSize);
//! let (cost, best) = extractor.find_best(runner.roots[0]);
//! assert_eq!(cost, 1);
//! assert_eq!(best.to_string(), "x");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod backend;
mod cancel;
#[cfg(test)]
mod differential;
mod egraph;
mod extract;
pub mod hash;
mod language;
pub mod machine;
mod pattern;
mod recexpr;
mod relational;
mod rewrite;
mod runner;
mod symbol;
mod unionfind;

pub use crate::backend::{make_backend, BackendSearch, SearchBackend, SearchBackendKind};
pub use crate::cancel::CancelToken;
pub use crate::egraph::{EClass, EGraph};
pub use crate::extract::{AstDepth, AstSize, CostFunction, Extractor};
pub use crate::language::{Analysis, DidMerge, FromOp, FromOpError, Language, SymbolLang};
pub use crate::machine::{RuleDirective, RuleSetProgram};
pub use crate::pattern::{
    ENodeOrVar, ParsePatternError, Pattern, SearchMatches, Subst, Var, MATCH_WORK_BUDGET,
    MAX_SUBSTS_PER_CLASS,
};
pub use crate::recexpr::{ParseRecExprError, RecExpr};
pub use crate::rewrite::{Applier, Condition, ConditionalApplier, Rewrite};
pub use crate::runner::{
    BackoffScheduler, Iteration, IterationHook, RuleProfile, Runner, RunnerLimits, SimpleScheduler,
    StopReason,
};
pub use crate::symbol::Symbol;
pub use crate::unionfind::UnionFind;

use std::fmt;

/// An identifier for an e-class (or a node index inside a [`RecExpr`]).
///
/// `Id`s are small copyable handles; they are only meaningful relative to
/// the [`EGraph`] or [`RecExpr`] that produced them.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(u32);

impl Id {
    /// Creates an id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in 32 bits.
    pub fn from_index(i: usize) -> Self {
        assert!(i <= u32::MAX as usize, "e-graph id overflow");
        Id(i as u32)
    }

    /// Returns the raw index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Id {
    fn from(i: usize) -> Self {
        Id::from_index(i)
    }
}

impl From<Id> for usize {
    fn from(id: Id) -> usize {
        id.index()
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
