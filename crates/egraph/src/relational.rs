//! Generic-join relational e-matching.
//!
//! Every pattern LHS is a conjunctive query over per-operator
//! relations: one relation per `(operator, arity)` pair holding the
//! canonical `(class, child…)` tuples of every live e-node, derived
//! from the rebuilt class list and cached across searches keyed on
//! the e-graph's mutation [`version`](crate::EGraph::version) (so a
//! merge invalidates the store, and the staleness proptest in
//! `crate::differential` can prove it). All rules share the same
//! relations, which is where this backend wins over the shared trie:
//! the trie amortizes only common instruction *prefixes*, while the
//! relations amortize every overlapping subterm shape regardless of
//! where it sits in the pattern ("Better Together: Unifying Datalog
//! and Equality Saturation").
//!
//! Each query is answered with a worst-case-optimal **generic join**:
//! variables are eliminated one at a time, each chosen greedily by
//! the smallest live candidate set among the atoms that mention it (a
//! cardinality estimate read off the live relation restrictions), and
//! candidate values are intersected across all mentioning atoms via
//! the per-column hash indexes.
//!
//! # Byte-exactness
//!
//! The per-pattern VM truncates deterministically (per-class work
//! budget [`MATCH_WORK_BUDGET`](crate::MATCH_WORK_BUDGET), per-class
//! substitution cap, match-limit masking at class boundaries). A
//! relational enumeration cannot reproduce those truncation points,
//! so the join is used as a **complete existence pre-filter**: for
//! each candidate root class it decides *whether* the pattern matches
//! there at all, and only witness classes are handed to the exact
//! same per-class VM ([`Pattern::run_vm_on_class`]) with a fresh
//! budget. Classes without a witness provably contribute nothing to
//! the VM driver's output or its running match total (the VM emits no
//! substitution where none exists, budget or not), so skipping them
//! preserves the per-pattern output — including truncation — byte
//! for byte.

use std::time::{Duration, Instant};

use crate::backend::{search_rules_slots, BackendSearch, SearchBackend};
use crate::hash::{FxHashMap, FxHashSet};
use crate::machine::{extract_ground_term, ground_map, past, RuleDirective, RunOutcome};
use crate::pattern::ENodeOrVar;
use crate::{Analysis, CancelToken, EGraph, Id, Language, Pattern, RecExpr, SearchMatches, Var};

/// One per-`(operator, arity)` relation: row-major canonical tuples
/// with column 0 the owning class and columns `1..` the children,
/// plus a per-column hash index from value to ascending row ids.
struct Relation {
    width: usize,
    tuples: Vec<Id>,
    index: Vec<FxHashMap<Id, Vec<u32>>>,
}

impl Relation {
    fn n_rows(&self) -> usize {
        self.tuples.len() / self.width
    }

    fn row(&self, r: u32) -> &[Id] {
        &self.tuples[r as usize * self.width..][..self.width]
    }

    fn rows_with(&self, col: usize, value: Id) -> &[u32] {
        self.index[col].get(&value).map_or(&[], |v| v.as_slice())
    }
}

/// All relations for one e-graph state, keyed by `(operator, arity)`.
/// `Language::matches` is exactly discriminant + arity equality, so
/// this key partitions e-nodes the same way the VM's `Bind` does.
struct RelationStore<L: Language> {
    rels: FxHashMap<(L::Discriminant, usize), Relation>,
}

impl<L: Language> RelationStore<L> {
    fn build<N: Analysis<L>>(egraph: &EGraph<L, N>) -> Self {
        let mut rels: FxHashMap<(L::Discriminant, usize), Relation> = FxHashMap::default();
        // Classes iterate in ascending id order and hold canonical
        // nodes after a rebuild, so tuple order is deterministic.
        for class in egraph.classes() {
            for node in class.iter() {
                let arity = node.children().len();
                let rel = rels
                    .entry((node.discriminant(), arity))
                    .or_insert_with(|| Relation {
                        width: arity + 1,
                        tuples: Vec::new(),
                        index: Vec::new(),
                    });
                rel.tuples.push(class.id);
                rel.tuples.extend_from_slice(node.children());
            }
        }
        for rel in rels.values_mut() {
            rel.index = (0..rel.width)
                .map(|col| {
                    let mut index: FxHashMap<Id, Vec<u32>> = FxHashMap::default();
                    for r in 0..rel.n_rows() {
                        index
                            .entry(rel.tuples[r * rel.width + col])
                            .or_default()
                            .push(r as u32);
                    }
                    index
                })
                .collect();
        }
        RelationStore { rels }
    }
}

/// A conjunctive-query term: a join variable or an index into the
/// plan's ground-subterm table (resolved to a class id per search).
#[derive(Clone, Copy, PartialEq, Eq)]
enum CqTerm {
    Var(u32),
    Ground(u32),
}

/// One atom `R_(op,arity)(args…)`: args[0] is the owning class.
struct Atom<D> {
    disc: D,
    arity: usize,
    args: Vec<CqTerm>,
}

/// The compiled join plan for one non-trivial pattern. Variable 0 is
/// always the root class (bound by the candidate driver before the
/// join runs).
struct CqPlan<L: Language> {
    n_vars: usize,
    atoms: Vec<Atom<L::Discriminant>>,
    grounds: Vec<RecExpr<L>>,
    root_disc: L::Discriminant,
}

/// How the relational backend drives one rule.
enum RulePlan<L: Language> {
    /// Bare-variable pattern: every class matches once; no join.
    Scan,
    /// Fully ground pattern: at most one class matches (hash lookup).
    Ground(RecExpr<L>),
    /// The general case: existence join + per-class VM confirm.
    Cq(CqPlan<L>),
}

fn compile_plan<L: Language>(pattern: &Pattern<L>) -> RulePlan<L> {
    let ast = &pattern.ast;
    let root = ast.root();
    let ENodeOrVar::ENode(root_node) = &ast[root] else {
        return RulePlan::Scan;
    };
    let ground = ground_map(ast);
    if ground[root.index()] {
        return RulePlan::Ground(extract_ground_term(ast, root));
    }
    let mut plan = CqPlan {
        n_vars: 1,
        atoms: Vec::new(),
        grounds: Vec::new(),
        root_disc: root_node.discriminant(),
    };
    let mut var_of: FxHashMap<Var, u32> = FxHashMap::default();
    compile_node(ast, &ground, root, 0, &mut plan, &mut var_of);
    RulePlan::Cq(plan)
}

/// Emits the atom for a pattern e-node whose class is `own_var`,
/// recursing into non-ground child e-nodes (each of which gets a
/// fresh join variable for its class).
fn compile_node<L: Language>(
    ast: &RecExpr<ENodeOrVar<L>>,
    ground: &[bool],
    pat: Id,
    own_var: u32,
    plan: &mut CqPlan<L>,
    var_of: &mut FxHashMap<Var, u32>,
) {
    let ENodeOrVar::ENode(node) = &ast[pat] else {
        unreachable!("compile_node is only called on e-node pattern nodes");
    };
    let mut args = Vec::with_capacity(node.children().len() + 1);
    args.push(CqTerm::Var(own_var));
    for &child in node.children() {
        let term = match &ast[child] {
            ENodeOrVar::Var(v) => CqTerm::Var(*var_of.entry(*v).or_insert_with(|| {
                plan.n_vars += 1;
                (plan.n_vars - 1) as u32
            })),
            ENodeOrVar::ENode(_) if ground[child.index()] => {
                plan.grounds.push(extract_ground_term(ast, child));
                CqTerm::Ground((plan.grounds.len() - 1) as u32)
            }
            ENodeOrVar::ENode(_) => {
                let fresh = plan.n_vars as u32;
                plan.n_vars += 1;
                compile_node(ast, ground, child, fresh, plan, var_of);
                CqTerm::Var(fresh)
            }
        };
        args.push(term);
    }
    plan.atoms.push(Atom {
        disc: node.discriminant(),
        arity: node.children().len(),
        args,
    });
}

/// A live row set for one atom: either every row of its relation or
/// an explicit ascending row-id list. Keeping "all rows" symbolic
/// avoids materializing full relations for atoms that have not yet
/// been restricted.
#[derive(Clone)]
enum Live {
    Full,
    Rows(Vec<u32>),
}

impl Live {
    fn len(&self, rel: &Relation) -> usize {
        match self {
            Live::Full => rel.n_rows(),
            Live::Rows(rows) => rows.len(),
        }
    }

    fn is_empty(&self, rel: &Relation) -> bool {
        self.len(rel) == 0
    }

    /// Restricts to rows whose `col` equals `value` (both operands
    /// ascending, so a merge intersection suffices).
    fn restrict(&self, rel: &Relation, col: usize, value: Id) -> Live {
        let hits = rel.rows_with(col, value);
        match self {
            Live::Full => Live::Rows(hits.to_vec()),
            Live::Rows(rows) => Live::Rows(intersect_sorted(rows, hits)),
        }
    }
}

fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Generic-join e-matching behind the [`SearchBackend`] interface.
pub struct RelationalBackend<'a, L: Language> {
    patterns: Vec<&'a Pattern<L>>,
    plans: Vec<RulePlan<L>>,
    /// Tuple store for the last-seen e-graph state, keyed by its
    /// mutation version; any mutation (notably merges) invalidates it.
    store: Option<(u64, RelationStore<L>)>,
}

impl<'a, L: Language> RelationalBackend<'a, L> {
    /// Compiles every pattern into its conjunctive-query plan.
    pub fn new(patterns: Vec<&'a Pattern<L>>) -> Self {
        let plans = patterns.iter().map(|p| compile_plan(p)).collect();
        RelationalBackend {
            patterns,
            plans,
            store: None,
        }
    }
}

impl<L, N> SearchBackend<L, N> for RelationalBackend<'_, L>
where
    L: Language + Sync,
    L::Discriminant: Sync,
    N: Analysis<L> + Sync,
    N::Data: Sync,
{
    fn search(
        &mut self,
        egraph: &EGraph<L, N>,
        directives: &[RuleDirective],
        cancel: &CancelToken,
        deadline: Option<Instant>,
        threads: usize,
    ) -> BackendSearch {
        assert_eq!(directives.len(), self.patterns.len());
        let mut relation_build = Duration::ZERO;
        let any_active = directives.iter().any(|d| !matches!(d, RuleDirective::Skip));
        if any_active && !matches!(&self.store, Some((v, _)) if *v == egraph.version()) {
            let start = Instant::now();
            self.store = Some((egraph.version(), RelationStore::build(egraph)));
            relation_build = start.elapsed();
        }
        let store = self.store.as_ref().map(|(_, s)| s);
        let (patterns, plans) = (&self.patterns, &self.plans);
        let slots =
            search_rules_slots(
                patterns.len(),
                threads,
                cancel,
                deadline,
                |i| match directives[i] {
                    RuleDirective::Skip => Some((Vec::new(), Duration::ZERO)),
                    RuleDirective::Limit(limit) => search_rule(
                        patterns[i],
                        &plans[i],
                        store.expect("relations are built whenever a rule is active"),
                        egraph,
                        limit,
                        cancel,
                        deadline,
                    ),
                },
            );
        BackendSearch {
            slots,
            relation_build,
        }
    }
}

/// Searches one rule: join-driven candidate selection plus the exact
/// per-class VM confirm. Returns `None` (slot skipped) when a cancel
/// or the deadline trips mid-rule.
fn search_rule<L: Language, N: Analysis<L>>(
    pattern: &Pattern<L>,
    plan: &RulePlan<L>,
    store: &RelationStore<L>,
    egraph: &EGraph<L, N>,
    limit: usize,
    cancel: &CancelToken,
    deadline: Option<Instant>,
) -> Option<(Vec<SearchMatches>, Duration)> {
    let start = Instant::now();
    let mut out = Vec::new();
    let mut total = 0usize;
    match plan {
        RulePlan::Scan => {
            // Same driver as the VM's Scan path: one subst per class,
            // boundary class kept whole.
            for class in egraph.classes() {
                if cancel.is_cancelled() || past(deadline) {
                    return None;
                }
                out.push(SearchMatches {
                    eclass: class.id,
                    substs: vec![pattern.program().subst_for_class(class.id)],
                });
                total += 1;
                if total > limit {
                    break;
                }
            }
        }
        RulePlan::Ground(expr) => {
            // At most one class can match; confirm through the VM so
            // the emitted (empty) substitution is identical.
            if let Some(id) = egraph.lookup_expr(expr) {
                let id = egraph.find(id);
                if let Some(ground) = pattern.program().resolve_ground_terms(egraph) {
                    let mut regs = Vec::new();
                    let (m, outcome) =
                        pattern.run_vm_on_class(egraph, id, &ground, &mut regs, cancel);
                    if outcome == RunOutcome::Cancelled {
                        return None;
                    }
                    out.extend(m);
                }
            }
        }
        RulePlan::Cq(plan) => {
            // Resolve ground subterms once; a missing one means the
            // rule matches nowhere (same as the VM driver).
            let mut resolved = Vec::with_capacity(plan.grounds.len());
            for term in &plan.grounds {
                match egraph.lookup_expr(term) {
                    Some(id) => resolved.push(egraph.find(id)),
                    None => return Some((out, start.elapsed())),
                }
            }
            // Per-atom relations; a missing (op, arity) relation means
            // no e-node anywhere can satisfy that atom.
            let mut atom_rels: Vec<&Relation> = Vec::with_capacity(plan.atoms.len());
            for atom in &plan.atoms {
                match store.rels.get(&(atom.disc.clone(), atom.arity)) {
                    Some(rel) => atom_rels.push(rel),
                    None => return Some((out, start.elapsed())),
                }
            }
            // Base live sets: restrict each atom by its ground columns.
            let mut base: Vec<Live> = Vec::with_capacity(plan.atoms.len());
            for (atom, rel) in plan.atoms.iter().zip(&atom_rels) {
                let mut live = Live::Full;
                for (col, term) in atom.args.iter().enumerate() {
                    if let CqTerm::Ground(g) = term {
                        live = live.restrict(rel, col, resolved[*g as usize]);
                        if live.is_empty(rel) {
                            return Some((out, start.elapsed()));
                        }
                    }
                }
                base.push(live);
            }
            let vm_ground = match pattern.program().resolve_ground_terms(egraph) {
                Some(g) => g,
                None => return Some((out, start.elapsed())),
            };
            // Same candidate order as the per-pattern driver; the join
            // only *prunes* classes the VM would visit fruitlessly, so
            // output and the running match total stay byte-identical.
            let mut regs = Vec::new();
            let mut assign: Vec<Option<Id>> = vec![None; plan.n_vars];
            for &id in egraph.classes_with_op(&plan.root_disc) {
                if cancel.is_cancelled() || past(deadline) {
                    return None;
                }
                let id = egraph.find(id);
                if !root_has_witness(plan, &atom_rels, &base, &mut assign, id) {
                    continue;
                }
                let (m, outcome) =
                    pattern.run_vm_on_class(egraph, id, &vm_ground, &mut regs, cancel);
                if let Some(m) = m {
                    total += m.substs.len();
                    out.push(m);
                }
                if outcome == RunOutcome::Cancelled {
                    return None;
                }
                if total > limit {
                    break;
                }
            }
        }
    }
    Some((out, start.elapsed()))
}

/// Decides whether the query has at least one solution with variable
/// 0 bound to `root_class`.
fn root_has_witness<L: Language>(
    plan: &CqPlan<L>,
    rels: &[&Relation],
    base: &[Live],
    assign: &mut [Option<Id>],
    root_class: Id,
) -> bool {
    assign.fill(None);
    assign[0] = Some(root_class);
    let mut live: Vec<Live> = Vec::with_capacity(plan.atoms.len());
    for (a, atom) in plan.atoms.iter().enumerate() {
        let mut rows = base[a].clone();
        for (col, term) in atom.args.iter().enumerate() {
            if *term == CqTerm::Var(0) {
                rows = rows.restrict(rels[a], col, root_class);
                if rows.is_empty(rels[a]) {
                    return false;
                }
            }
        }
        live.push(rows);
    }
    join_exists(plan, rels, assign, &mut live)
}

/// One generic-join elimination step: picks the cheapest unassigned
/// variable (smallest live candidate source among the atoms that
/// mention it), then tries each candidate value, narrowing every
/// mentioning atom through its column indexes. Early-exits on the
/// first full assignment — only existence matters.
fn join_exists<L: Language>(
    plan: &CqPlan<L>,
    rels: &[&Relation],
    assign: &mut [Option<Id>],
    live: &mut [Live],
) -> bool {
    // Variable order by live-cardinality estimate, recomputed as
    // bindings narrow the relations.
    let mut best: Option<(u32, usize, usize)> = None;
    for (a, atom) in plan.atoms.iter().enumerate() {
        for term in &atom.args {
            if let CqTerm::Var(v) = term {
                if assign[*v as usize].is_none() {
                    let size = live[a].len(rels[a]);
                    if best.is_none_or(|(_, _, s)| size < s) {
                        best = Some((*v, a, size));
                    }
                }
            }
        }
    }
    let Some((var, a_star, _)) = best else {
        return true;
    };
    let cols: Vec<usize> = plan.atoms[a_star]
        .args
        .iter()
        .enumerate()
        .filter(|(_, t)| **t == CqTerm::Var(var))
        .map(|(c, _)| c)
        .collect();
    let candidate_rows: Vec<u32> = match &live[a_star] {
        Live::Full => (0..rels[a_star].n_rows() as u32).collect(),
        Live::Rows(rows) => rows.clone(),
    };
    let mut seen: FxHashSet<Id> = FxHashSet::default();
    for r in candidate_rows {
        let row = rels[a_star].row(r);
        let value = row[cols[0]];
        // A repeated variable within one atom must agree with itself.
        if cols[1..].iter().any(|&c| row[c] != value) {
            continue;
        }
        if !seen.insert(value) {
            continue;
        }
        // Narrow every atom mentioning `var` to rows consistent with
        // this binding, restoring the previous live sets afterwards.
        let mut saved: Vec<(usize, Live)> = Vec::new();
        let mut dead = false;
        for (a, atom) in plan.atoms.iter().enumerate() {
            let mut narrowed: Option<Live> = None;
            for (col, term) in atom.args.iter().enumerate() {
                if *term == CqTerm::Var(var) {
                    let cur = narrowed.as_ref().unwrap_or(&live[a]);
                    let next = cur.restrict(rels[a], col, value);
                    dead = next.is_empty(rels[a]);
                    narrowed = Some(next);
                    if dead {
                        break;
                    }
                }
            }
            if let Some(narrowed) = narrowed {
                saved.push((a, std::mem::replace(&mut live[a], narrowed)));
            }
            if dead {
                break;
            }
        }
        let found = if dead {
            false
        } else {
            assign[var as usize] = Some(value);
            let found = join_exists(plan, rels, assign, live);
            assign[var as usize] = None;
            found
        };
        for (a, old) in saved {
            live[a] = old;
        }
        if found {
            return true;
        }
    }
    false
}
