//! The [`Language`] trait describing term operators, the [`Analysis`]
//! trait for e-class analyses, and [`SymbolLang`], a generic language
//! useful for tests and prototyping.

use std::fmt;
use std::hash::Hash;

use crate::{EGraph, Id, Symbol};

/// An operator in a term language.
///
/// A value of a `Language` type is an *e-node*: an operator applied to
/// child e-class [`Id`]s. Equality and hashing must take both the
/// operator and the children into account (derive them), while
/// [`Language::matches`] compares operators only.
///
/// The `Display` implementation must print the operator *without*
/// children (it is used to render s-expressions).
pub trait Language: fmt::Debug + fmt::Display + Clone + Eq + Ord + Hash {
    /// A cheap identifier of the operator, ignoring children.
    type Discriminant: PartialEq + Eq + Hash + Clone;

    /// Returns the operator discriminant of this e-node.
    fn discriminant(&self) -> Self::Discriminant;

    /// Returns `true` if `self` and `other` have the same operator and
    /// arity (children ids are ignored).
    fn matches(&self, other: &Self) -> bool {
        self.discriminant() == other.discriminant()
            && self.children().len() == other.children().len()
    }

    /// The children e-class ids of this e-node.
    fn children(&self) -> &[Id];

    /// Mutable access to the children e-class ids.
    fn children_mut(&mut self) -> &mut [Id];

    /// Calls `f` on each child id.
    fn for_each<F: FnMut(Id)>(&self, f: F) {
        self.children().iter().copied().for_each(f)
    }

    /// Replaces each child `c` with `f(c)` in place.
    fn update_children<F: FnMut(Id) -> Id>(&mut self, mut f: F) {
        for c in self.children_mut() {
            *c = f(*c);
        }
    }

    /// Returns a copy with each child `c` replaced by `f(c)`.
    fn map_children<F: FnMut(Id) -> Id>(&self, f: F) -> Self {
        let mut new = self.clone();
        new.update_children(f);
        new
    }

    /// Returns `true` if this e-node has no children.
    fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }
}

/// Languages that can be parsed from an operator string and children.
///
/// This powers [`RecExpr`](crate::RecExpr) and
/// [`Pattern`](crate::Pattern) parsing from s-expressions.
pub trait FromOp: Language + Sized {
    /// Parses `op` applied to `children`.
    ///
    /// # Errors
    ///
    /// Returns an error if `op` is unknown or applied at the wrong arity.
    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, FromOpError>;
}

/// Error returned by [`FromOp::from_op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromOpError {
    op: String,
    arity: usize,
}

impl FromOpError {
    /// Creates a new error for operator `op` applied to `arity` children.
    pub fn new(op: &str, arity: usize) -> Self {
        Self {
            op: op.to_owned(),
            arity,
        }
    }
}

impl fmt::Display for FromOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown operator `{}` with {} children",
            self.op, self.arity
        )
    }
}

impl std::error::Error for FromOpError {}

/// Result of merging two analysis data values, reported by
/// [`Analysis::merge`].
///
/// `DidMerge(a_changed, b_changed)` records whether the merged result
/// differs from the left (`to`) and right (`from`) inputs respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DidMerge(pub bool, pub bool);

impl std::ops::BitOr for DidMerge {
    type Output = DidMerge;
    fn bitor(self, rhs: DidMerge) -> DidMerge {
        DidMerge(self.0 | rhs.0, self.1 | rhs.1)
    }
}

/// An e-class analysis: a lattice value maintained per e-class.
///
/// See the `egg` paper for the semantics. The unit type `()` is the
/// trivial analysis.
pub trait Analysis<L: Language>: Sized {
    /// The per-e-class data.
    type Data: fmt::Debug + Clone;

    /// Computes the data for a freshly added e-node (whose children
    /// already have data).
    fn make(egraph: &mut EGraph<L, Self>, enode: &L) -> Self::Data;

    /// Merges `from` into `to` when two e-classes are unioned.
    fn merge(&mut self, to: &mut Self::Data, from: Self::Data) -> DidMerge;

    /// A hook called after an e-class's data changes; may add e-nodes or
    /// unions (e.g. constant folding).
    fn modify(_egraph: &mut EGraph<L, Self>, _id: Id) {}
}

impl<L: Language> Analysis<L> for () {
    type Data = ();
    fn make(_egraph: &mut EGraph<L, Self>, _enode: &L) -> Self::Data {}
    fn merge(&mut self, _to: &mut Self::Data, _from: Self::Data) -> DidMerge {
        DidMerge(false, false)
    }
}

/// A generic language whose operators are arbitrary symbols with
/// arbitrary arity — handy for tests and quick prototypes.
///
/// ```
/// use egraph::{EGraph, SymbolLang};
/// let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
/// let x = eg.add(SymbolLang::leaf("x"));
/// let y = eg.add(SymbolLang::leaf("y"));
/// let f = eg.add(SymbolLang::new("f", vec![x, y]));
/// assert_ne!(f, x);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolLang {
    /// The operator symbol.
    pub op: Symbol,
    /// The children e-class ids.
    pub children: Vec<Id>,
}

impl SymbolLang {
    /// Creates an e-node with the given operator and children.
    pub fn new(op: impl Into<Symbol>, children: Vec<Id>) -> Self {
        Self {
            op: op.into(),
            children,
        }
    }

    /// Creates a childless e-node.
    pub fn leaf(op: impl Into<Symbol>) -> Self {
        Self::new(op, vec![])
    }
}

impl Language for SymbolLang {
    type Discriminant = Symbol;

    fn discriminant(&self) -> Symbol {
        self.op
    }

    fn children(&self) -> &[Id] {
        &self.children
    }

    fn children_mut(&mut self) -> &mut [Id] {
        &mut self.children
    }
}

impl fmt::Display for SymbolLang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)
    }
}

impl FromOp for SymbolLang {
    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, FromOpError> {
        Ok(Self::new(op, children))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_lang_matches_ignores_children() {
        let a = SymbolLang::new("f", vec![Id::from_index(0)]);
        let b = SymbolLang::new("f", vec![Id::from_index(1)]);
        let c = SymbolLang::new("g", vec![Id::from_index(0)]);
        assert!(a.matches(&b));
        assert!(!a.matches(&c));
        assert_ne!(a, b);
    }

    #[test]
    fn map_children() {
        let a = SymbolLang::new("f", vec![Id::from_index(0), Id::from_index(1)]);
        let b = a.map_children(|c| Id::from_index(c.index() + 10));
        assert_eq!(b.children(), &[Id::from_index(10), Id::from_index(11)]);
    }
}
