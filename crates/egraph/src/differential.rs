//! Differential tests: the compiled e-matching VM must find exactly
//! the same match sets as the legacy recursive backtracking matcher
//! (kept as [`Pattern::search_oracle`]) on randomized e-graphs.

use proptest::{proptest, ProptestConfig, TestRng};

use crate::{CancelToken, EGraph, Id, Pattern, RuleDirective, RuleSetProgram, SymbolLang};

type EG = EGraph<SymbolLang, ()>;

/// Builds a random e-graph: leaves from a small alphabet, random
/// operator applications over already-present classes, then a few
/// random unions and a rebuild. Sized so the matcher's deterministic
/// caps cannot bind (equality of truncated sets is not guaranteed
/// between enumeration orders).
fn random_egraph(rng: &mut TestRng) -> EG {
    let mut eg = EG::default();
    let mut ids: Vec<Id> = ["a", "b", "c", "x", "y"]
        .iter()
        .map(|s| eg.add(SymbolLang::leaf(*s)))
        .collect();
    let n_nodes = 8 + rng.below(28) as usize;
    for _ in 0..n_nodes {
        let pick = |rng: &mut TestRng, ids: &[Id]| ids[rng.below(ids.len() as u64) as usize];
        let node = match rng.below(6) {
            0 => SymbolLang::new("f", vec![pick(rng, &ids)]),
            1 => SymbolLang::new("g", vec![pick(rng, &ids), pick(rng, &ids)]),
            2 => SymbolLang::new("h", vec![pick(rng, &ids), pick(rng, &ids)]),
            3 => SymbolLang::new("+", vec![pick(rng, &ids), pick(rng, &ids)]),
            4 => SymbolLang::new("m", vec![pick(rng, &ids), pick(rng, &ids), pick(rng, &ids)]),
            _ => SymbolLang::leaf(["a", "b", "c", "x", "y"][rng.below(5) as usize]),
        };
        ids.push(eg.add(node));
    }
    let n_unions = rng.below(6) as usize;
    for _ in 0..n_unions {
        let a = ids[rng.below(ids.len() as u64) as usize];
        let b = ids[rng.below(ids.len() as u64) as usize];
        eg.union(a, b);
    }
    eg.rebuild();
    eg
}

/// The pattern shapes exercised: linear/nonlinear, nested, ground
/// subterms, bare variables, and mixed ground/var arguments.
const PATTERNS: &[&str] = &[
    "(f ?x)",
    "(g ?x ?y)",
    "(g ?x ?x)",
    "(f (g ?x ?y))",
    "(g (f ?x) ?y)",
    "(g (f ?x) (f ?x))",
    "(+ (g ?a ?b) ?a)",
    "(m ?a ?b ?a)",
    "(m ?a ?a ?a)",
    "(g a ?x)",
    "(f (g a b))",
    "(+ ?x (f ?x))",
    "(h (h ?a ?b) (h ?c ?d))",
    "?z",
    "a",
];

/// Flattens search results for comparison: both matchers canonicalize,
/// sort, and dedup per-class substitutions, so equal match *sets* mean
/// equal flattened forms.
fn flatten(matches: Vec<crate::SearchMatches>) -> Vec<(Id, Vec<crate::Subst>)> {
    let mut v: Vec<_> = matches.into_iter().map(|m| (m.eclass, m.substs)).collect();
    v.sort_unstable_by_key(|(id, _)| *id);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The VM and the recursive oracle agree on every pattern over
    /// random e-graphs.
    #[test]
    fn prop_vm_matches_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        for pat in PATTERNS {
            let p: Pattern<SymbolLang> = pat.parse().unwrap();
            let vm = flatten(p.search(&eg));
            let oracle = flatten(p.search_oracle(&eg));
            assert_eq!(vm, oracle, "pattern {pat} diverged (seed {seed:#x})");
        }
    }

    /// Per-class search agrees too (exercises `search_eclass` and the
    /// ground-term fast path on individual classes).
    #[test]
    fn prop_vm_matches_oracle_per_class(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        for pat in ["(g ?x ?y)", "(f (g a b))", "(m ?a ?b ?a)", "?z"] {
            let p: Pattern<SymbolLang> = pat.parse().unwrap();
            for class in eg.classes() {
                let vm = p.search_eclass(&eg, class.id).map(|m| m.substs);
                let oracle = p.search_eclass_oracle(&eg, class.id).map(|m| m.substs);
                // `search_eclass` reports a bare-variable match for
                // every class, as the oracle does.
                assert_eq!(vm, oracle, "pattern {pat} diverged on class {} (seed {seed:#x})", class.id);
            }
        }
    }

    /// The shared multi-pattern trie demultiplexes *the entire pattern
    /// set at once* into exactly the per-rule match sets the
    /// single-pattern VM and the recursive oracle find — at 1, 2, and
    /// N search threads.
    #[test]
    fn prop_trie_matches_vm_and_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        let patterns: Vec<Pattern<SymbolLang>> =
            PATTERNS.iter().map(|s| s.parse().unwrap()).collect();
        let refs: Vec<&Pattern<SymbolLang>> = patterns.iter().collect();
        let prog = RuleSetProgram::compile(&refs);
        let directives = vec![RuleDirective::Limit(usize::MAX); patterns.len()];
        for threads in [1usize, 2, 5] {
            let slots = prog.search(&eg, &directives, &CancelToken::new(), None, threads);
            for ((pat, p), slot) in PATTERNS.iter().zip(&patterns).zip(slots) {
                let (matches, _) = slot.expect("no rule may be skipped without a cancel/deadline");
                let trie = flatten(matches);
                let vm = flatten(p.search(&eg));
                let oracle = flatten(p.search_oracle(&eg));
                assert_eq!(trie, vm, "trie vs VM diverged on {pat} at {threads} threads (seed {seed:#x})");
                assert_eq!(trie, oracle, "trie vs oracle diverged on {pat} (seed {seed:#x})");
            }
        }
    }

    /// Adversarial rule *pairs*: shared Bind prefixes diverging on a
    /// Compare, ground-Lookup-only patterns, var-root Scans mixed with
    /// bound roots, and duplicate LHSs — per-rule equality must hold
    /// for every subset paired with every other subset.
    #[test]
    fn prop_trie_adversarial_pairs(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        const ADVERSARIAL: &[(&str, &str)] = &[
            ("(g ?x ?x)", "(g ?x ?y)"),           // prefix diverging on Compare
            ("(g (f ?x) (f ?x))", "(g (f ?x) ?y)"), // deeper shared Bind prefix
            ("(f (g a b))", "a"),                  // ground-Lookup-only pair
            ("?z", "(g ?x ?y)"),                   // Scan mixed with bound root
            ("(g ?x ?y)", "(g ?x ?y)"),            // identical LHS twice
            ("(g a ?x)", "(g ?x ?y)"),             // Lookup vs wildcard under one root
        ];
        for (a, b) in ADVERSARIAL {
            let pa: Pattern<SymbolLang> = a.parse().unwrap();
            let pb: Pattern<SymbolLang> = b.parse().unwrap();
            let prog = RuleSetProgram::compile(&[&pa, &pb]);
            let directives = [RuleDirective::Limit(usize::MAX); 2];
            for threads in [1usize, 2] {
                let slots = prog.search(&eg, &directives, &CancelToken::new(), None, threads);
                for (p, slot) in [&pa, &pb].into_iter().zip(slots) {
                    let (matches, _) = slot.expect("not skipped");
                    assert_eq!(
                        flatten(matches),
                        flatten(p.search(&eg)),
                        "pair ({a}, {b}) diverged on {p} (seed {seed:#x})"
                    );
                }
            }
        }
    }

    /// Mid-search cancellation: a pre-set token must make the shared
    /// search report every rule as skipped (no partial match sets leak
    /// out of incomplete branches), at any thread count.
    #[test]
    fn prop_trie_cancellation_skips_all(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        let patterns: Vec<Pattern<SymbolLang>> =
            PATTERNS.iter().map(|s| s.parse().unwrap()).collect();
        let refs: Vec<&Pattern<SymbolLang>> = patterns.iter().collect();
        let prog = RuleSetProgram::compile(&refs);
        let directives = vec![RuleDirective::Limit(usize::MAX); patterns.len()];
        let token = CancelToken::new();
        token.cancel();
        for threads in [1usize, 3] {
            let slots = prog.search(&eg, &directives, &token, None, threads);
            assert!(slots.iter().all(Option::is_none), "seed {seed:#x}");
        }
    }
}
