//! Differential tests: the compiled e-matching VM must find exactly
//! the same match sets as the legacy recursive backtracking matcher
//! (kept as [`Pattern::search_oracle`]) on randomized e-graphs — and
//! every pluggable [`SearchBackend`] (per-pattern VM, shared trie,
//! relational generic join, oracle) must agree with all of them, at
//! any thread count, under cancellation, and across merges.

use proptest::{proptest, ProptestConfig, TestRng};

use crate::{
    make_backend, CancelToken, EGraph, Id, Pattern, RuleDirective, RuleSetProgram,
    SearchBackendKind, SymbolLang,
};

type EG = EGraph<SymbolLang, ()>;

/// Builds a random e-graph: leaves from a small alphabet, random
/// operator applications over already-present classes, then a few
/// random unions and a rebuild. Sized so the matcher's deterministic
/// caps cannot bind (equality of truncated sets is not guaranteed
/// between enumeration orders).
fn random_egraph(rng: &mut TestRng) -> EG {
    let mut eg = EG::default();
    let mut ids: Vec<Id> = ["a", "b", "c", "x", "y"]
        .iter()
        .map(|s| eg.add(SymbolLang::leaf(*s)))
        .collect();
    let n_nodes = 8 + rng.below(28) as usize;
    for _ in 0..n_nodes {
        let pick = |rng: &mut TestRng, ids: &[Id]| ids[rng.below(ids.len() as u64) as usize];
        let node = match rng.below(6) {
            0 => SymbolLang::new("f", vec![pick(rng, &ids)]),
            1 => SymbolLang::new("g", vec![pick(rng, &ids), pick(rng, &ids)]),
            2 => SymbolLang::new("h", vec![pick(rng, &ids), pick(rng, &ids)]),
            3 => SymbolLang::new("+", vec![pick(rng, &ids), pick(rng, &ids)]),
            4 => SymbolLang::new("m", vec![pick(rng, &ids), pick(rng, &ids), pick(rng, &ids)]),
            _ => SymbolLang::leaf(["a", "b", "c", "x", "y"][rng.below(5) as usize]),
        };
        ids.push(eg.add(node));
    }
    let n_unions = rng.below(6) as usize;
    for _ in 0..n_unions {
        let a = ids[rng.below(ids.len() as u64) as usize];
        let b = ids[rng.below(ids.len() as u64) as usize];
        eg.union(a, b);
    }
    eg.rebuild();
    eg
}

/// The pattern shapes exercised: linear/nonlinear, nested, ground
/// subterms, bare variables, and mixed ground/var arguments.
const PATTERNS: &[&str] = &[
    "(f ?x)",
    "(g ?x ?y)",
    "(g ?x ?x)",
    "(f (g ?x ?y))",
    "(g (f ?x) ?y)",
    "(g (f ?x) (f ?x))",
    "(+ (g ?a ?b) ?a)",
    "(m ?a ?b ?a)",
    "(m ?a ?a ?a)",
    "(g a ?x)",
    "(f (g a b))",
    "(+ ?x (f ?x))",
    "(h (h ?a ?b) (h ?c ?d))",
    "?z",
    "a",
];

/// Flattens search results for comparison: both matchers canonicalize,
/// sort, and dedup per-class substitutions, so equal match *sets* mean
/// equal flattened forms.
fn flatten(matches: Vec<crate::SearchMatches>) -> Vec<(Id, Vec<crate::Subst>)> {
    let mut v: Vec<_> = matches.into_iter().map(|m| (m.eclass, m.substs)).collect();
    v.sort_unstable_by_key(|(id, _)| *id);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The VM and the recursive oracle agree on every pattern over
    /// random e-graphs.
    #[test]
    fn prop_vm_matches_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        for pat in PATTERNS {
            let p: Pattern<SymbolLang> = pat.parse().unwrap();
            let vm = flatten(p.search(&eg));
            let oracle = flatten(p.search_oracle(&eg));
            assert_eq!(vm, oracle, "pattern {pat} diverged (seed {seed:#x})");
        }
    }

    /// Per-class search agrees too (exercises `search_eclass` and the
    /// ground-term fast path on individual classes).
    #[test]
    fn prop_vm_matches_oracle_per_class(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        for pat in ["(g ?x ?y)", "(f (g a b))", "(m ?a ?b ?a)", "?z"] {
            let p: Pattern<SymbolLang> = pat.parse().unwrap();
            for class in eg.classes() {
                let vm = p.search_eclass(&eg, class.id).map(|m| m.substs);
                let oracle = p.search_eclass_oracle(&eg, class.id).map(|m| m.substs);
                // `search_eclass` reports a bare-variable match for
                // every class, as the oracle does.
                assert_eq!(vm, oracle, "pattern {pat} diverged on class {} (seed {seed:#x})", class.id);
            }
        }
    }

    /// The shared multi-pattern trie demultiplexes *the entire pattern
    /// set at once* into exactly the per-rule match sets the
    /// single-pattern VM and the recursive oracle find — at 1, 2, and
    /// N search threads.
    #[test]
    fn prop_trie_matches_vm_and_oracle(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        let patterns: Vec<Pattern<SymbolLang>> =
            PATTERNS.iter().map(|s| s.parse().unwrap()).collect();
        let refs: Vec<&Pattern<SymbolLang>> = patterns.iter().collect();
        let prog = RuleSetProgram::compile(&refs);
        let directives = vec![RuleDirective::Limit(usize::MAX); patterns.len()];
        for threads in [1usize, 2, 5] {
            let slots = prog.search(&eg, &directives, &CancelToken::new(), None, threads);
            for ((pat, p), slot) in PATTERNS.iter().zip(&patterns).zip(slots) {
                let (matches, _) = slot.expect("no rule may be skipped without a cancel/deadline");
                let trie = flatten(matches);
                let vm = flatten(p.search(&eg));
                let oracle = flatten(p.search_oracle(&eg));
                assert_eq!(trie, vm, "trie vs VM diverged on {pat} at {threads} threads (seed {seed:#x})");
                assert_eq!(trie, oracle, "trie vs oracle diverged on {pat} (seed {seed:#x})");
            }
        }
    }

    /// Adversarial rule *pairs*: shared Bind prefixes diverging on a
    /// Compare, ground-Lookup-only patterns, var-root Scans mixed with
    /// bound roots, and duplicate LHSs — per-rule equality must hold
    /// for every subset paired with every other subset.
    #[test]
    fn prop_trie_adversarial_pairs(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        const ADVERSARIAL: &[(&str, &str)] = &[
            ("(g ?x ?x)", "(g ?x ?y)"),           // prefix diverging on Compare
            ("(g (f ?x) (f ?x))", "(g (f ?x) ?y)"), // deeper shared Bind prefix
            ("(f (g a b))", "a"),                  // ground-Lookup-only pair
            ("?z", "(g ?x ?y)"),                   // Scan mixed with bound root
            ("(g ?x ?y)", "(g ?x ?y)"),            // identical LHS twice
            ("(g a ?x)", "(g ?x ?y)"),             // Lookup vs wildcard under one root
        ];
        for (a, b) in ADVERSARIAL {
            let pa: Pattern<SymbolLang> = a.parse().unwrap();
            let pb: Pattern<SymbolLang> = b.parse().unwrap();
            let prog = RuleSetProgram::compile(&[&pa, &pb]);
            let directives = [RuleDirective::Limit(usize::MAX); 2];
            for threads in [1usize, 2] {
                let slots = prog.search(&eg, &directives, &CancelToken::new(), None, threads);
                for (p, slot) in [&pa, &pb].into_iter().zip(slots) {
                    let (matches, _) = slot.expect("not skipped");
                    assert_eq!(
                        flatten(matches),
                        flatten(p.search(&eg)),
                        "pair ({a}, {b}) diverged on {p} (seed {seed:#x})"
                    );
                }
            }
        }
    }

    /// All four pluggable backends (per-pattern VM, shared trie,
    /// relational generic join, recursive oracle) produce identical
    /// per-rule slots over the whole pattern set — at 1, 2, and N
    /// search threads — with the single-pattern VM as the reference.
    #[test]
    fn prop_all_backends_agree(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        let patterns: Vec<Pattern<SymbolLang>> =
            PATTERNS.iter().map(|s| s.parse().unwrap()).collect();
        let reference: Vec<_> = patterns.iter().map(|p| flatten(p.search(&eg))).collect();
        let directives = vec![RuleDirective::Limit(usize::MAX); patterns.len()];
        for &kind in SearchBackendKind::all() {
            let refs: Vec<&Pattern<SymbolLang>> = patterns.iter().collect();
            let mut backend = make_backend::<SymbolLang, ()>(kind, refs);
            for threads in [1usize, 2, 5] {
                let result = backend.search(&eg, &directives, &CancelToken::new(), None, threads);
                for ((pat, expected), slot) in
                    PATTERNS.iter().zip(&reference).zip(result.slots)
                {
                    let (matches, _) = slot.expect("no rule may be skipped without a cancel/deadline");
                    assert_eq!(
                        &flatten(matches), expected,
                        "{kind} vs VM diverged on {pat} at {threads} threads (seed {seed:#x})"
                    );
                }
            }
        }
    }

    /// Backoff-style envelopes: every backend masks over-limit rules
    /// and honors `Skip` directives identically. Limits small enough
    /// to bind are exercised because truncation points must align
    /// across backends (the "finish the class, then mask" discipline).
    #[test]
    fn prop_all_backends_agree_under_directives(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        let patterns: Vec<Pattern<SymbolLang>> =
            PATTERNS.iter().map(|s| s.parse().unwrap()).collect();
        let directives: Vec<RuleDirective> = (0..patterns.len())
            .map(|i| match i % 4 {
                0 => RuleDirective::Skip,
                1 => RuleDirective::Limit(1),
                2 => RuleDirective::Limit(rng.below(8) as usize),
                _ => RuleDirective::Limit(usize::MAX),
            })
            .collect();
        let refs: Vec<&Pattern<SymbolLang>> = patterns.iter().collect();
        let mut reference_backend =
            make_backend::<SymbolLang, ()>(SearchBackendKind::PerPatternVm, refs);
        let reference = reference_backend.search(&eg, &directives, &CancelToken::new(), None, 1);
        for &kind in SearchBackendKind::all() {
            let refs: Vec<&Pattern<SymbolLang>> = patterns.iter().collect();
            let mut backend = make_backend::<SymbolLang, ()>(kind, refs);
            for threads in [1usize, 2] {
                let result = backend.search(&eg, &directives, &CancelToken::new(), None, threads);
                for ((pat, expected), slot) in
                    PATTERNS.iter().zip(&reference.slots).zip(result.slots)
                {
                    let expected = expected.as_ref().map(|(m, _)| flatten(m.clone()));
                    let got = slot.map(|(m, _)| flatten(m));
                    assert_eq!(
                        got, expected,
                        "{kind} diverged under directives on {pat} at {threads} threads (seed {seed:#x})"
                    );
                }
            }
        }
    }

    /// Relation staleness: a relational backend reused across a merge
    /// and rebuild must not serve pre-merge tuples — its post-merge
    /// results must equal a freshly built backend's (and the VM's).
    #[test]
    fn prop_relational_store_invalidated_by_merges(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let mut eg = random_egraph(&mut rng);
        let patterns: Vec<Pattern<SymbolLang>> =
            PATTERNS.iter().map(|s| s.parse().unwrap()).collect();
        let directives = vec![RuleDirective::Limit(usize::MAX); patterns.len()];
        let refs: Vec<&Pattern<SymbolLang>> = patterns.iter().collect();
        let mut stale = make_backend::<SymbolLang, ()>(SearchBackendKind::Relational, refs);
        // Populate the backend's tuple cache on the pre-merge state.
        stale.search(&eg, &directives, &CancelToken::new(), None, 1);
        // Merge two random classes and rebuild.
        let classes: Vec<Id> = eg.classes().map(|c| c.id).collect();
        let a = classes[rng.below(classes.len() as u64) as usize];
        let b = classes[rng.below(classes.len() as u64) as usize];
        eg.union(a, b);
        eg.rebuild();
        let stale_result = stale.search(&eg, &directives, &CancelToken::new(), None, 1);
        let refs: Vec<&Pattern<SymbolLang>> = patterns.iter().collect();
        let mut fresh = make_backend::<SymbolLang, ()>(SearchBackendKind::Relational, refs);
        let fresh_result = fresh.search(&eg, &directives, &CancelToken::new(), None, 1);
        for (((pat, p), stale_slot), fresh_slot) in PATTERNS
            .iter()
            .zip(&patterns)
            .zip(stale_result.slots)
            .zip(fresh_result.slots)
        {
            let stale_matches = flatten(stale_slot.expect("not skipped").0);
            assert_eq!(
                stale_matches,
                flatten(fresh_slot.expect("not skipped").0),
                "reused relational backend diverged from fresh on {pat} (seed {seed:#x})"
            );
            assert_eq!(
                stale_matches,
                flatten(p.search(&eg)),
                "reused relational backend diverged from VM on {pat} (seed {seed:#x})"
            );
        }
    }

    /// Mid-search cancellation over every backend: a pre-set token
    /// must make the search report every rule as skipped (no partial
    /// match sets leak), at any thread count.
    #[test]
    fn prop_backend_cancellation_skips_all(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        let patterns: Vec<Pattern<SymbolLang>> =
            PATTERNS.iter().map(|s| s.parse().unwrap()).collect();
        let directives = vec![RuleDirective::Limit(usize::MAX); patterns.len()];
        let token = CancelToken::new();
        token.cancel();
        for &kind in SearchBackendKind::all() {
            let refs: Vec<&Pattern<SymbolLang>> = patterns.iter().collect();
            let mut backend = make_backend::<SymbolLang, ()>(kind, refs);
            for threads in [1usize, 3] {
                let result = backend.search(&eg, &directives, &token, None, threads);
                assert!(
                    result.slots.iter().all(Option::is_none),
                    "{kind} leaked slots under a pre-set cancel (seed {seed:#x})"
                );
            }
        }
    }

    /// Mid-search cancellation: a pre-set token must make the shared
    /// search report every rule as skipped (no partial match sets leak
    /// out of incomplete branches), at any thread count.
    #[test]
    fn prop_trie_cancellation_skips_all(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::seeded(seed);
        let eg = random_egraph(&mut rng);
        let patterns: Vec<Pattern<SymbolLang>> =
            PATTERNS.iter().map(|s| s.parse().unwrap()).collect();
        let refs: Vec<&Pattern<SymbolLang>> = patterns.iter().collect();
        let prog = RuleSetProgram::compile(&refs);
        let directives = vec![RuleDirective::Limit(usize::MAX); patterns.len()];
        let token = CancelToken::new();
        token.cancel();
        for threads in [1usize, 3] {
            let slots = prog.search(&eg, &directives, &token, None, threads);
            assert!(slots.iter().all(Option::is_none), "seed {seed:#x}");
        }
    }
}
