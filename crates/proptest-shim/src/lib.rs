//! A tiny, dependency-free stand-in for the subset of the `proptest`
//! API used by the workspace's property tests.
//!
//! The build environment has no network access, so the real crates.io
//! `proptest` cannot be vendored. This shim keeps the property tests
//! *running* (deterministic pseudo-random generation, fixed case
//! counts) with the same test source. It does not shrink failing
//! inputs — a failure panics with the generating seed so the case can
//! be replayed.

use std::rc::Rc;

/// Deterministic splitmix64 generator driving all value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A value generator (stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<W, F: Fn(Self::Value) -> W>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case, and `f`
    /// lifts a strategy for depth `d` to one for depth `d + 1`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            lift: Rc::new(move |inner| f(inner).boxed()),
            depth,
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = self;
        BoxedStrategy(Rc::new(move |rng| this.generate(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, W, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
    type Value = W;
    fn generate(&self, rng: &mut TestRng) -> W {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    lift: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(u64::from(self.depth) + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.lift)(strat.clone());
        }
        strat.generate(rng)
    }
}

/// Uniform choice among equally weighted alternatives
/// (the backing type of [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = self.end.wrapping_sub(self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical strategy for `T` (stand-in for `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A.0);
impl_strategy_tuple!(A.0, B.1);
impl_strategy_tuple!(A.0, B.1, C.2);
impl_strategy_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec`s whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Builds a `Vec` strategy with lengths in `len` (exclusive end).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min: len.start,
            max: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max - self.min) as u64;
            let n = self.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`proptest::test_runner::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives one property test: generates `cases` deterministic seeds and
/// runs the body once per seed.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs `body` once per case with a per-case deterministic RNG.
    pub fn run(&mut self, test_name: &str, body: impl Fn(&mut TestRng)) {
        for case in 0..self.config.cases {
            let seed = 0xB001_E5EEDu64 ^ (u64::from(case)).wrapping_mul(0xD1B54A32D192ED03);
            let mut rng = TestRng::seeded(seed);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
            if let Err(payload) = result {
                eprintln!("proptest-shim: {test_name} failed at case {case} (seed {seed:#x})");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Uniformly picks one of the listed strategies per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Declares property tests (see the real `proptest::proptest!`).
///
/// Supports `name in strategy` and `name: Type` argument forms and an
/// optional leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg);
            runner.run(stringify!($name), |prop_rng__| {
                $crate::proptest!(@bind prop_rng__; $($args)*);
                $body
            });
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@bind $rng:ident; ) => {};
    (@bind $rng:ident; $x:ident in $strat:expr, $($rest:tt)*) => {
        let $x = $crate::Strategy::generate(&($strat), $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $x:ident in $strat:expr) => {
        let $x = $crate::Strategy::generate(&($strat), $rng);
    };
    (@bind $rng:ident; $x:ident : $ty:ty, $($rest:tt)*) => {
        let $x = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $x:ident : $ty:ty) => {
        let $x = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Convenience glob import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng, TestRunner, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seeded(42);
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let s = (-(1i64 << 40)..(1i64 << 40)).generate(&mut rng);
            assert!((-(1i64 << 40)..(1i64 << 40)).contains(&s));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::seeded(7);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_both_forms(a in 0u32..10, b: bool) {
            prop_assert!(a < 10);
            let _ = b;
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = prop_oneof![Just(1usize), Just(2usize)];
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        });
        let mut rng = TestRng::seeded(11);
        for _ in 0..50 {
            assert!(strat.generate(&mut rng) >= 1);
        }
    }
}
