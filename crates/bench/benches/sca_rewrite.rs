//! Criterion microbenchmarks for the SCA verification backend
//! (supports Table II's runtime columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sca::{verify_multiplier, AdderBlocks, MulSpec, VerifyParams};

fn generator_blocks(m: &aig::gen::Multiplier) -> AdderBlocks {
    AdderBlocks {
        fas: m
            .fas
            .iter()
            .map(|fa| sca::FaBlockSpec {
                inputs: fa.inputs,
                sum: fa.sum,
                carry: fa.carry,
            })
            .collect(),
        has: m
            .has
            .iter()
            .map(|ha| sca::HaBlockSpec {
                inputs: ha.inputs,
                sum: ha.sum,
                carry: ha.carry,
            })
            .collect(),
    }
}

fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("sca_verify");
    group.sample_size(10);
    for n in [4usize, 6] {
        let m = aig::gen::csa_multiplier_with_stats(n);
        let blocks = generator_blocks(&m);
        group.bench_with_input(BenchmarkId::new("csa_gate_level", n), &m.aig, |b, aig| {
            b.iter(|| {
                verify_multiplier(
                    aig,
                    MulSpec::unsigned(n),
                    &AdderBlocks::none(),
                    &VerifyParams::default(),
                )
                .max_poly_size
            })
        });
        group.bench_with_input(
            BenchmarkId::new("csa_with_blocks", n),
            &(&m.aig, &blocks),
            |b, (aig, blocks)| {
                b.iter(|| {
                    verify_multiplier(aig, MulSpec::unsigned(n), blocks, &VerifyParams::default())
                        .max_poly_size
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_verification);
criterion_main!(benches);
