//! Criterion microbenchmarks for the structural substrate: cut
//! enumeration, NPN canonicalization, and the ABC-style baseline
//! (supports the Fig. 4 baseline columns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use aig::cut::{enumerate_cuts, CutParams};
use aig::npn::npn_canon;
use aig::tt::Tt;

fn bench_cuts(c: &mut Criterion) {
    let mut group = c.benchmark_group("cuts");
    for n in [8usize, 12] {
        let aig = aig::gen::csa_multiplier(n);
        group.bench_with_input(BenchmarkId::new("enumerate_k3_csa", n), &aig, |b, aig| {
            b.iter(|| {
                enumerate_cuts(aig, &CutParams::default())
                    .iter()
                    .map(|cs| cs.len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_npn(c: &mut Criterion) {
    c.bench_function("npn_canon_all_3var", |b| {
        b.iter(|| {
            (0..256u64)
                .map(|bits| npn_canon(Tt::from_bits(3, bits)).tt.bits())
                .fold(0u64, |acc, x| acc ^ x)
        })
    });
}

fn bench_atree(c: &mut Criterion) {
    let mut group = c.benchmark_group("atree");
    for n in [8usize, 12] {
        let aig = aig::gen::csa_multiplier(n);
        group.bench_with_input(BenchmarkId::new("detect_blocks_csa", n), &aig, |b, aig| {
            b.iter(|| baselines::detect_blocks_atree(aig).npn_fa_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cuts, bench_npn, bench_atree);
criterion_main!(benches);
