//! Ablation benchmarks for the design decisions called out in
//! `DESIGN.md` §7: two-phase vs merged saturation, DAG vs tree
//! extraction, and redundant-e-node pruning.

use criterion::{criterion_group, criterion_main, Criterion};

use boole::{aig_to_egraph, extract_dag, pair_full_adders, rules, saturate, SaturateParams};
use egraph::{AstSize, BackoffScheduler, Extractor, Runner};

fn small_params() -> SaturateParams {
    SaturateParams {
        node_limit: 5_000,
        time_limit: std::time::Duration::from_secs(2),
        match_limit: 300,
        ..SaturateParams::default()
    }
}

/// Two-phase (R1 then R2) vs a single merged ruleset run.
fn ablation_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_phases");
    group.sample_size(10);
    let aig = aig::gen::csa_multiplier(3);
    group.bench_function("two_phase", |b| {
        b.iter(|| {
            let net = aig_to_egraph::<()>(&aig);
            let (net, _) = saturate(net, &small_params());
            net.egraph.total_number_of_nodes()
        })
    });
    group.bench_function("merged_single_phase", |b| {
        b.iter(|| {
            let net = aig_to_egraph::<()>(&aig);
            let mut all = rules::r1_rules::<()>();
            all.extend(rules::r2_rules());
            let runner = Runner::new(())
                .with_egraph(net.egraph)
                .with_iter_limit(13)
                .with_node_limit(5_000)
                .with_time_limit(std::time::Duration::from_secs(2))
                .with_scheduler(BackoffScheduler::new(300, 2))
                .run(&all);
            runner.egraph.total_number_of_nodes()
        })
    });
    group.finish();
}

/// DAG cost-set extraction vs plain tree-cost extraction.
fn ablation_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_extraction");
    group.sample_size(10);
    let aig = aig::gen::csa_multiplier(3);
    let net = aig_to_egraph::<()>(&aig);
    let (mut net, _) = saturate(net, &small_params());
    pair_full_adders(&mut net.egraph);
    group.bench_function("dag_cost_set", |b| {
        b.iter(|| extract_dag(&net.egraph).len())
    });
    group.bench_function("tree_ast_size", |b| {
        b.iter(|| {
            let ex = Extractor::new(&net.egraph, AstSize);
            net.outputs
                .iter()
                .map(|(_, id)| ex.cost_of(*id).unwrap_or(0))
                .sum::<usize>()
        })
    });
    group.finish();
}

/// With vs without redundant e-node pruning.
fn ablation_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_prune");
    group.sample_size(10);
    let aig = aig::gen::csa_multiplier(3);
    for (label, prune) in [("prune", true), ("no_prune", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let net = aig_to_egraph::<()>(&aig);
                let params = SaturateParams {
                    prune,
                    ..small_params()
                };
                let (mut net, _) = saturate(net, &params);
                pair_full_adders(&mut net.egraph);
                extract_dag(&net.egraph).len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_phases,
    ablation_extraction,
    ablation_prune
);
criterion_main!(benches);
