//! Criterion microbenchmarks for DAG extraction (Algorithm 2) and AIG
//! reconstruction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use boole::{
    aig_to_egraph, extract_dag, pair_full_adders, reconstruct_aig, saturate, SaturateParams,
};

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("extraction");
    group.sample_size(10);
    for n in [3usize, 4] {
        let aig = aig::gen::csa_multiplier(n);
        let net = aig_to_egraph::<()>(&aig);
        let (mut net, _) = saturate(
            net,
            &SaturateParams {
                node_limit: 6_000,
                time_limit: std::time::Duration::from_secs(3),
                match_limit: 300,
                ..SaturateParams::default()
            },
        );
        pair_full_adders(&mut net.egraph);
        group.bench_with_input(BenchmarkId::new("dag_extract_csa", n), &net, |b, net| {
            b.iter(|| extract_dag(&net.egraph).len())
        });
        let extraction = extract_dag(&net.egraph);
        group.bench_with_input(
            BenchmarkId::new("reconstruct_csa", n),
            &(&net, &extraction),
            |b, (net, extraction)| {
                b.iter(|| {
                    let (aig, fas) = reconstruct_aig(&net.egraph, extraction, n * 2, &net.outputs);
                    (aig.num_ands(), fas.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
