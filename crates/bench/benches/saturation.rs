//! Criterion microbenchmarks for the saturation phases (supports
//! Fig. 5's runtime analysis at microbench granularity).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use boole::{aig_to_egraph, pair_full_adders, saturate, NetlistEGraph, SaturateParams};

fn bench_params() -> SaturateParams {
    SaturateParams {
        node_limit: 6_000,
        time_limit: std::time::Duration::from_secs(3),
        match_limit: 300,
        ..SaturateParams::default()
    }
}

fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation");
    group.sample_size(10);
    for n in [3usize, 4] {
        let aig = aig::gen::csa_multiplier(n);
        group.bench_with_input(BenchmarkId::new("csa_two_phase", n), &aig, |b, aig| {
            b.iter(|| {
                let net: NetlistEGraph = aig_to_egraph(aig);
                let (net, _) = saturate(net, &bench_params());
                net.egraph.total_number_of_nodes()
            })
        });
    }
    group.finish();
}

fn bench_pairing(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairing");
    group.sample_size(10);
    let aig = aig::gen::csa_multiplier(4);
    let net: NetlistEGraph = aig_to_egraph(&aig);
    let (net, _) = saturate(net, &bench_params());
    group.bench_function("csa4_pair_full_adders", |b| {
        b.iter_with_setup(
            || net.egraph.clone(),
            |mut eg| pair_full_adders(&mut eg).fa_inserted,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_saturation, bench_pairing);
criterion_main!(benches);
