//! Property-based tests over the cross-crate invariants.

use proptest::prelude::*;

use aig::test_util::random_aig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `dch` optimization preserves functionality on arbitrary logic.
    #[test]
    fn prop_dch_preserves_function(aig in random_aig(5, 24)) {
        let opt = aig::opt::dch(&aig);
        prop_assert!(aig::sim::exhaustive_equiv_check(&aig, &opt));
    }

    /// Technology mapping round trips preserve functionality.
    #[test]
    fn prop_mapping_preserves_function(aig in random_aig(5, 24)) {
        let mapped = aig::map::map_round_trip(&aig);
        prop_assert!(aig::sim::exhaustive_equiv_check(&aig, &mapped));
    }

    /// Balancing preserves functionality.
    #[test]
    fn prop_balance_preserves_function(aig in random_aig(6, 32)) {
        let balanced = aig::opt::balance(&aig);
        prop_assert!(aig::sim::exhaustive_equiv_check(&aig, &balanced));
    }

    /// AIGER round trips preserve functionality and interface.
    #[test]
    fn prop_aiger_roundtrip(aig in random_aig(4, 20)) {
        let text = aig::aiger::to_aag(&aig);
        let parsed = aig::aiger::from_aag(&text).expect("self-produced aiger parses");
        prop_assert_eq!(parsed.num_inputs(), aig.num_inputs());
        prop_assert_eq!(parsed.num_outputs(), aig.num_outputs());
        prop_assert!(aig::sim::exhaustive_equiv_check(&aig, &parsed));
    }

    /// Every block the ABC-style detector reports satisfies the adder
    /// identities under simulation (no false positives).
    #[test]
    fn prop_atree_blocks_are_real(aig in random_aig(5, 24)) {
        let report = baselines::detect_blocks_atree(&aig);
        let inputs: Vec<u64> = (0..aig.num_inputs() as u64)
            .map(|i| 0x9E3779B97F4A7C15u64.wrapping_mul(i + 1).wrapping_add(0xABCD))
            .collect();
        let words = aig::sim::simulate_node_words(&aig, &inputs);
        let val = |v: aig::Var| words[v.index()];
        for fa in &report.fas {
            if !fa.exact { continue; }
            let (a, b, c) = (val(fa.leaves[0]), val(fa.leaves[1]), val(fa.leaves[2]));
            let sum = val(fa.sum) ^ if fa.sum_neg { !0 } else { 0 };
            let carry = val(fa.carry) ^ if fa.carry_neg { !0 } else { 0 };
            prop_assert_eq!(sum, a ^ b ^ c);
            prop_assert_eq!(carry, (a & b) | (a & c) | (b & c));
        }
        for ha in &report.has {
            if !ha.exact { continue; }
            let (a, b) = (val(ha.leaves[0]), val(ha.leaves[1]));
            let sum = val(ha.sum) ^ if ha.sum_neg { !0 } else { 0 };
            let carry = val(ha.carry) ^ if ha.carry_neg { !0 } else { 0 };
            prop_assert_eq!(sum, a ^ b);
            prop_assert_eq!(carry, a & b);
        }
    }

    /// The SCA engine agrees with simulation: for a random netlist,
    /// the polynomial `out − backward_rewritten(out)` vanishes, i.e.
    /// verifying `out == out` always succeeds and never times out on
    /// small graphs.
    #[test]
    fn prop_sca_self_consistency(aig in random_aig(4, 16)) {
        // Spec: first output equals itself -> poly out - out = 0 after
        // rewriting both occurrences identically. Instead we check a
        // stronger fact: rewriting the output literal polynomial to
        // primary inputs and evaluating it matches simulation.
        let (_, out_lit) = &aig.outputs()[0];
        let mut poly = sca::spec::lit_poly(*out_lit);
        for idx in (0..aig.num_nodes()).rev() {
            let var = aig::Var(idx as u32);
            if let aig::Node::And(a, b) = aig.node(var) {
                if poly.uses_var(var.0) {
                    let pa = sca::spec::lit_poly(a);
                    let pb = sca::spec::lit_poly(b);
                    poly = poly.substitute(var.0, &pa.mul(&pb));
                }
            }
        }
        // Evaluate on a few input assignments and compare with
        // simulation.
        for pattern in 0u32..8 {
            let input_bits: Vec<bool> =
                (0..aig.num_inputs()).map(|i| (pattern >> (i % 3)) & 1 == 1).collect();
            let sim = aig::sim::simulate_values(&aig, &input_bits);
            let expect = i64::from(sim[0]);
            let mut total: i64 = 0;
            for (mono, coeff) in poly.iter() {
                let prod: i64 = mono
                    .vars()
                    .iter()
                    .map(|&v| {
                        // Variables are input vars (1..=n in our AIG layout).
                        let ordinal = (v - 1) as usize;
                        i64::from(input_bits[ordinal])
                    })
                    .product();
                total += coeff.to_string().parse::<i64>().unwrap() * prod;
            }
            prop_assert_eq!(total, expect, "pattern {}", pattern);
        }
    }
}

mod egraph_props {
    use super::*;
    use egraph::{AstSize, EGraph, Extractor, RecExpr, Rewrite, Runner, SymbolLang};

    fn random_expr() -> impl Strategy<Value = String> {
        // Random arithmetic-ish expression strings over +, *, vars.
        let leaf = prop_oneof![
            Just("x".to_owned()),
            Just("y".to_owned()),
            Just("0".to_owned())
        ];
        leaf.prop_recursive(4, 32, 2, |inner| {
            (inner.clone(), inner).prop_flat_map(|(a, b)| {
                prop_oneof![Just(format!("(+ {a} {b})")), Just(format!("(* {a} {b})")),]
            })
        })
    }

    fn rules() -> Vec<Rewrite<SymbolLang, ()>> {
        vec![
            Rewrite::parse("comm-add", "(+ ?a ?b)", "(+ ?b ?a)").unwrap(),
            Rewrite::parse("comm-mul", "(* ?a ?b)", "(* ?b ?a)").unwrap(),
            Rewrite::parse("add-zero", "(+ ?a 0)", "?a").unwrap(),
            Rewrite::parse("mul-zero", "(* ?a 0)", "0").unwrap(),
        ]
    }

    fn eval(expr: &RecExpr<SymbolLang>, x: i64, y: i64) -> i64 {
        let mut vals: Vec<i64> = Vec::with_capacity(expr.len());
        for node in expr.iter() {
            let v = match node.op.as_str() {
                "x" => x,
                "y" => y,
                "0" => 0,
                "+" => vals[node.children[0].index()] + vals[node.children[1].index()],
                "*" => vals[node.children[0].index()] * vals[node.children[1].index()],
                other => panic!("unexpected op {other}"),
            };
            vals.push(v);
        }
        *vals.last().unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Saturation + extraction preserves the semantics of the
        /// original expression and never increases AstSize cost.
        #[test]
        fn prop_saturation_preserves_semantics(s in random_expr()) {
            let expr: RecExpr<SymbolLang> = s.parse().unwrap();
            let runner = Runner::default()
                .with_expr(&expr)
                .with_iter_limit(6)
                .with_node_limit(4_000)
                .run(&rules());
            let ex = Extractor::new(&runner.egraph, AstSize);
            let (cost, best) = ex.find_best(runner.roots[0]);
            prop_assert!(cost <= expr.len());
            for (x, y) in [(0i64, 0i64), (1, 2), (-3, 5), (7, -11)] {
                prop_assert_eq!(eval(&expr, x, y), eval(&best, x, y));
            }
        }

        /// E-graph invariants hold after arbitrary add/union sequences.
        #[test]
        fn prop_egraph_invariants(ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..40)) {
            let mut eg: EGraph<SymbolLang, ()> = EGraph::default();
            let mut ids = vec![eg.add(SymbolLang::leaf("a")), eg.add(SymbolLang::leaf("b"))];
            for (op, i, j) in ops {
                let x = ids[i as usize % ids.len()];
                let y = ids[j as usize % ids.len()];
                match op % 3 {
                    0 => ids.push(eg.add(SymbolLang::new("f", vec![x, y]))),
                    1 => ids.push(eg.add(SymbolLang::new("g", vec![x]))),
                    _ => {
                        eg.union(x, y);
                    }
                }
            }
            eg.rebuild();
            eg.check_invariants();
            // Congruence: structurally equal nodes resolve to one class.
            let x = ids[0];
            let f1 = eg.add(SymbolLang::new("f", vec![x, x]));
            let f2 = eg.add(SymbolLang::new("f", vec![x, x]));
            prop_assert_eq!(eg.find(f1), eg.find(f2));
        }
    }
}

mod bigint_props {
    use super::*;
    use sca::Int;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn prop_bigint_matches_i128(a in -(1i64<<40)..(1i64<<40), b in -(1i64<<40)..(1i64<<40)) {
            let ia = Int::from(a);
            let ib = Int::from(b);
            prop_assert_eq!((&ia + &ib).to_string(), (a as i128 + b as i128).to_string());
            prop_assert_eq!((&ia - &ib).to_string(), (a as i128 - b as i128).to_string());
            prop_assert_eq!((&ia * &ib).to_string(), (a as i128 * b as i128).to_string());
            prop_assert_eq!(ia.cmp(&ib), (a).cmp(&b));
        }

        #[test]
        fn prop_bigint_shift_is_mul_pow2(a in -(1i64<<30)..(1i64<<30), k in 0usize..70) {
            let shifted = Int::from(a) << k;
            let reference = &Int::from(a) * &Int::pow2(k);
            prop_assert_eq!(shifted, reference);
        }
    }
}

mod npn_props {
    use super::*;
    use aig::npn::{npn_canon, npn_equivalent};
    use aig::tt::Tt;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// NPN canonicalization is invariant under random input
        /// permutation/negation and output negation.
        #[test]
        fn prop_npn_orbit_invariance(bits in any::<u64>(), perm_idx in 0usize..6, neg in 0u32..8, out_neg: bool) {
            let perms = [[0usize,1,2],[0,2,1],[1,0,2],[1,2,0],[2,0,1],[2,1,0]];
            let tt = Tt::from_bits(3, bits);
            let mut t = tt.permute(&perms[perm_idx]);
            for i in 0..3 {
                if (neg >> i) & 1 == 1 { t = t.flip_var(i); }
            }
            if out_neg { t = !t; }
            prop_assert_eq!(npn_canon(tt).tt, npn_canon(t).tt);
            prop_assert!(npn_equivalent(tt, t));
        }
    }
}
