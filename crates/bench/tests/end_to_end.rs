//! Cross-crate integration tests: the full paper pipeline at small
//! scale (generation → optimization/mapping → reasoning →
//! verification).

use boole::{BoolE, BooleParams, SaturateParams};
use boole_bench::{
    abc_counts, baseline_blocks, boole_counts, gamora_counts, prepare, verifier_blocks, Family,
    Prep,
};
use sca::{verify_multiplier, MulSpec, VerifyParams};

fn small_engine() -> BoolE {
    BoolE::new(BooleParams {
        saturate: SaturateParams::small(),
    })
}

#[test]
fn rq1_pre_mapping_boole_hits_upper_bound() {
    for (family, n) in [(Family::Csa, 3), (Family::Csa, 4), (Family::Booth, 4)] {
        let pre = prepare(family, n, Prep::None);
        let upper = abc_counts(&pre).npn;
        let result = small_engine().run(&pre);
        assert_eq!(
            result.exact_fa_count(),
            upper,
            "{} n={n}: BoolE must reach the pre-mapping upper bound",
            family.name()
        );
    }
}

#[test]
fn fig4_ordering_post_mapping() {
    // The paper's post-mapping ordering: BoolE >= ABC (NPN), and BoolE
    // strictly ahead of ABC on exact FAs.
    let mapped = prepare(Family::Csa, 4, Prep::Mapped);
    let abc = abc_counts(&mapped);
    let model = baselines::GamoraModel::default_trained();
    let gamora = gamora_counts(&mapped, &model);
    let result = small_engine().run(&mapped);
    let boole = boole_counts(&result);
    assert!(
        boole.exact >= abc.exact,
        "BoolE exact {} vs ABC exact {}",
        boole.exact,
        abc.exact
    );
    assert!(
        boole.npn >= gamora.npn,
        "BoolE NPN {} vs Gamora NPN {}",
        boole.npn,
        gamora.npn
    );
    // Reconstruction must preserve the function.
    assert!(aig::sim::random_equiv_check(
        &mapped,
        &result.reconstructed,
        8,
        0x1234
    ));
}

#[test]
fn table2_dch_verification_with_boole() {
    let n = 4;
    let opt = prepare(Family::Csa, n, Prep::Dch);
    let params = VerifyParams {
        max_terms: 100_000,
        ..VerifyParams::default()
    };

    // Baseline: blocks from cut enumeration on the optimized netlist.
    let base_report = baselines::detect_blocks_atree(&opt);
    let base_blocks = baseline_blocks(&base_report);
    let base = verify_multiplier(&opt, MulSpec::unsigned(n), &base_blocks, &params);

    // BoolE-assisted: verify the original netlist with BoolE's blocks
    // mapped back onto its signals.
    let result = small_engine().run(&opt);
    let blocks = verifier_blocks(&result, &opt);
    let be = verify_multiplier(&opt, MulSpec::unsigned(n), &blocks, &params);
    assert!(be.verified, "BoolE-assisted verification failed: {be:?}");
    assert!(
        blocks.fas.len() >= base_blocks.fas.len(),
        "BoolE must recover at least as many exact FAs as the baseline"
    );
    // At this tiny width the baseline does not blow up yet (the
    // paper's crossover is at 16 bit); both must verify without
    // hitting the budget. The max-poly-size advantage is demonstrated
    // by the `table2` harness at larger widths.
    assert!(base.verified || base.timed_out);
    assert!(!be.timed_out);
}

#[test]
fn booth_pipeline_verifies_signed() {
    let n = 4;
    let booth = prepare(Family::Booth, n, Prep::None);
    let result = small_engine().run(&booth);
    let blocks = verifier_blocks(&result, &booth);
    let outcome = verify_multiplier(
        &booth,
        MulSpec::signed(n),
        &blocks,
        &VerifyParams::default(),
    );
    assert!(outcome.verified, "{outcome:?}");
}

#[test]
fn aiger_roundtrip_through_pipeline() {
    // Netlists written to AIGER and read back behave identically in
    // the whole flow.
    let aig = prepare(Family::Csa, 3, Prep::Mapped);
    let text = aig::aiger::to_aag(&aig);
    let parsed = aig::aiger::from_aag(&text).expect("valid aiger");
    assert!(aig::sim::exhaustive_equiv_check(&aig, &parsed));
    let r1 = small_engine().run(&aig);
    let r2 = small_engine().run(&parsed);
    assert_eq!(r1.exact_fa_count(), r2.exact_fa_count());
}

#[test]
fn wallace_tree_recovery() {
    // BoolE also recovers FAs from a Wallace-tree topology (the exact
    // counts differ from the array but must be positive and the
    // reconstruction sound).
    let aig = aig::gen::wallace_multiplier(4);
    let result = small_engine().run(&aig);
    assert!(result.exact_fa_count() > 0);
    assert!(aig::sim::random_equiv_check(
        &aig,
        &result.reconstructed,
        8,
        0x77
    ));
}
