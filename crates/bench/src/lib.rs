//! Shared harness utilities for regenerating the paper's tables and
//! figures (see `EXPERIMENTS.md` at the workspace root).

use aig::Aig;
use baselines::BlockReport;
use boole::BooleResult;
use sca::{AdderBlocks, FaBlockSpec, HaBlockSpec};

/// The benchmark multiplier families of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Unsigned carry-save array multipliers.
    Csa,
    /// Signed radix-4 Booth multipliers.
    Booth,
}

impl Family {
    /// Generates the pre-mapping netlist of width `n`.
    pub fn generate(self, n: usize) -> Aig {
        match self {
            Family::Csa => aig::gen::csa_multiplier(n),
            Family::Booth => aig::gen::booth_multiplier(n),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Csa => "CSA",
            Family::Booth => "Booth",
        }
    }
}

/// How a benchmark netlist is prepared before reasoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prep {
    /// Pre-mapping (generator output).
    None,
    /// ASAP7-style technology mapping round trip.
    Mapped,
    /// `dch`-style logic optimization (Table II setup).
    Dch,
}

/// Prepares a benchmark netlist.
pub fn prepare(family: Family, n: usize, prep: Prep) -> Aig {
    let aig = family.generate(n);
    match prep {
        Prep::None => aig,
        Prep::Mapped => aig::map::map_round_trip(&aig),
        Prep::Dch => aig::opt::dch(&aig),
    }
}

/// FA counts reported by one reasoning tool on one netlist.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaCounts {
    /// NPN-equivalent FA blocks.
    pub npn: usize,
    /// Exact FA blocks.
    pub exact: usize,
}

impl From<&BlockReport> for FaCounts {
    fn from(report: &BlockReport) -> FaCounts {
        FaCounts {
            npn: report.npn_fa_count(),
            exact: report.exact_fa_count(),
        }
    }
}

/// Counts FAs with the ABC-style baseline.
pub fn abc_counts(aig: &Aig) -> FaCounts {
    FaCounts::from(&baselines::detect_blocks_atree(aig))
}

/// Counts FAs with the Gamora-style baseline.
pub fn gamora_counts(aig: &Aig, model: &baselines::GamoraModel) -> FaCounts {
    FaCounts::from(&baselines::detect_blocks_gamora(aig, model))
}

/// Counts FAs recovered by BoolE: exact = extracted `fa` nodes; NPN =
/// what cut enumeration finds on the reconstructed netlist (the
/// paper's Fig. 4 protocol).
pub fn boole_counts(result: &BooleResult) -> FaCounts {
    let npn_on_reconstructed = baselines::detect_blocks_atree(&result.reconstructed)
        .npn_fa_count()
        .max(result.exact_fa_count());
    FaCounts {
        npn: npn_on_reconstructed,
        exact: result.exact_fa_count(),
    }
}

/// Converts BoolE's recovered FAs — mapped back onto the *original*
/// netlist's signals — plus the exact HAs cut enumeration finds there,
/// into verifier block knowledge. This is the "integrate BoolE into
/// RevSCA-2.0" glue of Table II: the verifier rewrites the original
/// optimized netlist, and BoolE's exact blocks remove the vanishing
/// monomials.
pub fn verifier_blocks(result: &BooleResult, original: &aig::Aig) -> AdderBlocks {
    let mut blocks = AdderBlocks {
        fas: result
            .original_fas
            .iter()
            .map(|fa| FaBlockSpec {
                inputs: fa.inputs,
                sum: fa.sum,
                carry: fa.carry,
            })
            .collect(),
        has: vec![],
    };
    let report = baselines::detect_blocks_atree(original);
    blocks.has = exact_ha_specs(&report);
    blocks
}

/// Converts a baseline block report into verifier block knowledge
/// (exact blocks only — NPN blocks are unusable for SCA, as the paper
/// notes).
pub fn baseline_blocks(report: &BlockReport) -> AdderBlocks {
    AdderBlocks {
        fas: report
            .fas
            .iter()
            .filter(|b| b.exact)
            .map(|b| FaBlockSpec {
                inputs: [b.leaves[0].lit(), b.leaves[1].lit(), b.leaves[2].lit()],
                sum: b.sum.lit().with_complement(b.sum_neg),
                carry: b.carry.lit().with_complement(b.carry_neg),
            })
            .collect(),
        has: exact_ha_specs(report),
    }
}

fn exact_ha_specs(report: &BlockReport) -> Vec<HaBlockSpec> {
    report
        .has
        .iter()
        .filter(|b| b.exact)
        .map(|b| HaBlockSpec {
            inputs: [b.leaves[0].lit(), b.leaves[1].lit()],
            sum: b.sum.lit().with_complement(b.sum_neg),
            carry: b.carry.lit().with_complement(b.carry_neg),
        })
        .collect()
}

/// Parses `--flag value`-style integers from `std::env::args`.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Returns `true` if `--flag` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_variants_share_function() {
        let base = prepare(Family::Csa, 4, Prep::None);
        for prep in [Prep::Mapped, Prep::Dch] {
            let other = prepare(Family::Csa, 4, prep);
            assert!(aig::sim::random_equiv_check(&base, &other, 4, 0xFE));
        }
    }

    #[test]
    fn baseline_blocks_polarity_roundtrip() {
        let aig = prepare(Family::Csa, 4, Prep::None);
        let report = baselines::detect_blocks_atree(&aig);
        let blocks = baseline_blocks(&report);
        assert_eq!(blocks.fas.len(), report.exact_fa_count());
        // Every exact block's literals must satisfy the FA identity on
        // simulation.
        let words = aig::sim::simulate_node_words(
            &aig,
            &(0..aig.num_inputs())
                .map(|i| 0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1))
                .collect::<Vec<_>>(),
        );
        let val = |lit: aig::Lit| {
            let w = words[lit.var().index()];
            if lit.is_complemented() {
                !w
            } else {
                w
            }
        };
        for fa in &blocks.fas {
            let (a, b, c) = (val(fa.inputs[0]), val(fa.inputs[1]), val(fa.inputs[2]));
            assert_eq!(val(fa.sum), a ^ b ^ c);
            assert_eq!(val(fa.carry), (a & b) | (a & c) | (b & c));
        }
        for ha in &blocks.has {
            let (a, b) = (val(ha.inputs[0]), val(ha.inputs[1]));
            assert_eq!(val(ha.sum), a ^ b);
            assert_eq!(val(ha.carry), a & b);
        }
    }
}
