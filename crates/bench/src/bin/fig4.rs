//! Regenerates **Figure 4**: FA reconstruction on technology-mapped
//! CSA (left) and Booth (right) multipliers — BoolE vs ABC vs Gamora,
//! exact and NPN counts against the theoretical upper bound.
//!
//! ```text
//! cargo run --release -p boole-bench --bin fig4 -- [--max-bits 16] [--step 4]
//! ```
//!
//! The paper sweeps 4..=128 bit on a 48-core Xeon; the laptop-scale
//! default sweeps 4..=16 (override with `--max-bits`).

use boole::{BoolE, BooleParams};
use boole_bench::{abc_counts, boole_counts, gamora_counts, prepare, Family, Prep};

fn main() {
    let max_bits = boole_bench::arg_usize("--max-bits", 16);
    let step = boole_bench::arg_usize("--step", 4);
    let model = baselines::GamoraModel::default_trained();

    for family in [Family::Csa, Family::Booth] {
        println!(
            "== Figure 4 ({}) — post-mapping (ASAP7-like) ==",
            family.name()
        );
        println!(
            "{:>5} {:>11} {:>9} {:>12} {:>11} {:>11} {:>13}",
            "bits", "UpperBound", "NPN-ABC", "NPN-Gamora", "NPN-BoolE", "Exact-ABC", "Exact-BoolE"
        );
        let mut n = 4;
        while n <= max_bits {
            if family == Family::Booth && n % 2 != 0 {
                n += step;
                continue;
            }
            // The upper bound is the number of NPN FAs cut enumeration
            // finds pre-mapping (the paper's protocol for Booth; for
            // CSA it equals (n−1)²−1).
            let pre = prepare(family, n, Prep::None);
            let upper = abc_counts(&pre).npn;
            if family == Family::Csa {
                assert_eq!(upper, aig::gen::csa_fa_upper_bound(n));
            }
            let mapped = prepare(family, n, Prep::Mapped);
            let abc = abc_counts(&mapped);
            let gam = gamora_counts(&mapped, &model);
            let result = BoolE::new(BooleParams::default()).run(&mapped);
            let boole = boole_counts(&result);
            println!(
                "{n:>5} {upper:>11} {:>9} {:>12} {:>11} {:>11} {:>13}",
                abc.npn, gam.npn, boole.npn, abc.exact, boole.exact
            );
            n += step;
        }
        println!();
    }
}
