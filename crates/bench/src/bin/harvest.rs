//! Developer tool implementing the paper's R2 harvesting methodology:
//! find 3-cuts computing ±MAJ / ±XOR3 in mapped/optimized benchmark
//! netlists and print their cone structures as candidate rewrite
//! patterns.
//!
//! ```text
//! cargo run --release -p boole-bench --bin harvest -- [--max-bits 8]
//! ```

use std::collections::BTreeMap;

use aig::cut::{cone_tt, enumerate_cuts, CutParams};
use aig::tt::Tt;
use aig::{Aig, Lit, Node, Var};

fn main() {
    let max_bits = boole_bench::arg_usize("--max-bits", 8);
    let mut maj_shapes: BTreeMap<String, usize> = BTreeMap::new();
    let mut xor_shapes: BTreeMap<String, usize> = BTreeMap::new();

    for n in (3..=max_bits).step_by(1) {
        for prep in [boole_bench::Prep::Mapped, boole_bench::Prep::Dch] {
            let aig = boole_bench::prepare(boole_bench::Family::Csa, n, prep);
            harvest(&aig, &mut maj_shapes, &mut xor_shapes);
        }
    }

    println!("== MAJ cone shapes (count desc) ==");
    let mut majs: Vec<_> = maj_shapes.into_iter().collect();
    majs.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (shape, count) in majs.iter().take(40) {
        println!("{count:>5}  {shape}");
    }
    println!("\n== XOR3 cone shapes (count desc) ==");
    let mut xors: Vec<_> = xor_shapes.into_iter().collect();
    xors.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    for (shape, count) in xors.iter().take(40) {
        println!("{count:>5}  {shape}");
    }
}

fn harvest(
    aig: &Aig,
    maj_shapes: &mut BTreeMap<String, usize>,
    xor_shapes: &mut BTreeMap<String, usize>,
) {
    let cuts = enumerate_cuts(aig, &CutParams { k: 3, max_cuts: 48 });
    for var in aig.and_vars() {
        for cut in &cuts[var.index()] {
            if cut.size() != 3 || cut.leaves.contains(&var) {
                continue;
            }
            let tt = cone_tt(aig, var, &cut.leaves).unwrap_or(cut.tt);
            let is_maj = tt == Tt::maj3() || tt == !Tt::maj3();
            let is_xor = tt == Tt::xor3() || tt == !Tt::xor3();
            if !is_maj && !is_xor {
                continue;
            }
            let pattern = cone_pattern(aig, var.lit(), &cut.leaves, 0);
            let map = if is_maj {
                &mut *maj_shapes
            } else {
                &mut *xor_shapes
            };
            *map.entry(pattern).or_insert(0) += 1;
        }
    }
}

/// Renders the cone of `lit` above `leaves` as a pattern s-expression.
fn cone_pattern(aig: &Aig, lit: Lit, leaves: &[Var], depth: usize) -> String {
    let inner = cone_pattern_var(aig, lit.var(), leaves, depth);
    if lit.is_complemented() {
        format!("(! {inner})")
    } else {
        inner
    }
}

fn cone_pattern_var(aig: &Aig, var: Var, leaves: &[Var], depth: usize) -> String {
    if let Some(pos) = leaves.iter().position(|&l| l == var) {
        return format!("?{}", (b'a' + pos as u8) as char);
    }
    if depth > 8 {
        return "?deep".to_owned();
    }
    match aig.node(var) {
        Node::Const => "false".to_owned(),
        Node::Input(_) => "?esc".to_owned(),
        Node::And(x, y) => {
            let sx = cone_pattern(aig, x, leaves, depth + 1);
            let sy = cone_pattern(aig, y, leaves, depth + 1);
            let (sx, sy) = if sy < sx { (sy, sx) } else { (sx, sy) };
            format!("(& {sx} {sy})")
        }
    }
}
