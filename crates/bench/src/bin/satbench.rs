//! `satbench` — the tracked saturation benchmark.
//!
//! Runs the generator corpus (CSA / Booth / Wallace multipliers at two
//! sizes, mapped and unmapped) through BoolE's two-phase `saturate`
//! and writes a machine-readable `BENCH_satbench.json` with wall-clock
//! time per phase (search / apply / rebuild), final e-graph sizes, and
//! matcher throughput. The committed copy of that file is the perf
//! baseline: re-run the binary after an engine change and compare the
//! `search_ms` totals to track the saturation-speed trajectory.
//!
//! ```text
//! cargo run --release -p boole-bench --bin satbench            # full corpus -> BENCH_satbench.json
//! cargo run --release -p boole-bench --bin satbench -- --smoke # smallest config, stdout only (CI)
//! ```
//!
//! Flags: `--sizes A,B` (default `4,6`), `--out PATH` (default
//! `BENCH_satbench.json`; `--smoke` defaults to stdout only),
//! `--label NAME` (recorded in the JSON), `--search-threads N`
//! (parallel rule search inside each saturation; default 1 = serial,
//! 0 = one thread per CPU; recorded in the JSON so baselines at
//! different thread counts are never compared by accident),
//! `--per-pattern` (search with one compiled VM program per rule
//! instead of the shared multi-pattern trie — the honest baseline the
//! trie is measured against; recorded as `"shared_search": false`),
//! `--compare-threads N` (after the main corpus pass, rerun the whole
//! corpus at `N` search threads and record the second pass's totals
//! under `"comparison"`, so one file holds both the serial baseline
//! and a threaded data point), `--compare-per-pattern` (run each
//! config under both matchers in an A,B,B,A pattern, keep the faster
//! of each matcher's two runs, and record the per-pattern side under
//! `"per_pattern_baseline"`; pairing the matchers within seconds of
//! each other and discarding each one's cold run keeps box-level
//! drift and per-config allocator warm-up — both ~10% effects, bigger
//! than the matcher difference itself — out of the comparison), and
//! `--verify-serial` (after each
//! parallel run, rerun the config at one thread and assert the
//! saturation outcome — sizes, iteration counts, stop reasons, match
//! totals — is identical; the benchmark doubles as the determinism
//! oracle).
//!
//! Timing semantics: `search_ms` counts only the e-matching fan-out;
//! the serial merge/bookkeeping that demultiplexes per-rule match
//! sets is reported separately as `merge_ms`. Baselines recorded
//! before this split folded the merge into `search_ms`, so historical
//! numbers are not directly comparable (see the `notes` field).

use std::time::Instant;

use boole::convert::aig_to_egraph;
use boole::json::{Json, ToJson};
use boole::{SaturateParams, SaturationStats};

/// One corpus entry: a generator family at a bit width, optionally
/// put through the technology-mapping round trip.
#[derive(Debug, Clone, Copy)]
struct Config {
    family: &'static str,
    bits: usize,
    mapped: bool,
}

fn generate(cfg: &Config) -> aig::Aig {
    let aig = match cfg.family {
        "csa" => aig::gen::csa_multiplier(cfg.bits),
        "booth" => aig::gen::booth_multiplier(cfg.bits),
        "wallace" => aig::gen::wallace_multiplier(cfg.bits),
        other => panic!("unknown family {other}"),
    };
    if cfg.mapped {
        aig::map::map_round_trip(&aig)
    } else {
        aig
    }
}

/// Deterministic saturation parameters: no wall-clock stop, so the
/// same corpus always produces the same e-graph and the timings are
/// comparable across machines and runs.
fn params() -> SaturateParams {
    SaturateParams {
        node_limit: 50_000,
        ..SaturateParams::default()
    }
    .without_time_limit()
}

struct RunRecord {
    cfg: Config,
    nodes_before: usize,
    stats: SaturationStats,
    wall_ms: f64,
}

fn run_one(cfg: Config, p: &SaturateParams) -> RunRecord {
    let aig = generate(&cfg);
    let net = aig_to_egraph::<()>(&aig);
    let nodes_before = net.egraph.total_number_of_nodes();
    let start = Instant::now();
    let (_, stats) = boole::saturate(net, p);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    RunRecord {
        cfg,
        nodes_before,
        stats,
        wall_ms,
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn record_json(r: &RunRecord) -> Json {
    let search_s = r.stats.search_time.as_secs_f64();
    let matches_per_sec = if search_s > 0.0 {
        r.stats.total_matches as f64 / search_s
    } else {
        0.0
    };
    Json::obj([
        ("family", Json::str(r.cfg.family)),
        ("bits", Json::from(r.cfg.bits)),
        ("mapped", Json::from(r.cfg.mapped)),
        ("nodes_before", Json::from(r.nodes_before)),
        ("nodes_after_r1", Json::from(r.stats.nodes_after_r1)),
        ("nodes_after_r2", Json::from(r.stats.nodes_after_r2)),
        ("classes", Json::from(r.stats.classes)),
        (
            "iterations",
            Json::from(r.stats.r1_iterations + r.stats.r2_iterations),
        ),
        ("r1_stop", r.stats.r1_stop.to_json()),
        ("r2_stop", r.stats.r2_stop.to_json()),
        ("search_ms", Json::from(ms(r.stats.search_time))),
        ("merge_ms", Json::from(ms(r.stats.merge_time))),
        ("apply_ms", Json::from(ms(r.stats.apply_time))),
        ("rebuild_ms", Json::from(ms(r.stats.rebuild_time))),
        ("saturate_ms", Json::from(r.wall_ms)),
        ("matches", Json::from(r.stats.total_matches)),
        ("matches_per_sec", Json::from(matches_per_sec)),
    ])
}

/// Aggregates per-rule saturation profiles across the whole corpus and
/// returns the top rules by total search time: the ranking answers
/// "which rewrite is the engine spending its matcher budget on", which
/// is where a scheduler or rule-set change shows up first.
fn top_rules_json(records: &[RunRecord], top_k: usize) -> Json {
    let mut agg: std::collections::BTreeMap<&str, (std::time::Duration, usize, usize)> =
        std::collections::BTreeMap::new();
    for record in records {
        for rule in &record.stats.rules {
            let entry = agg.entry(rule.name.as_str()).or_default();
            entry.0 += rule.search_time;
            entry.1 += rule.matches;
            entry.2 += rule.applications;
        }
    }
    let mut rows: Vec<_> = agg.into_iter().collect();
    // Sort by search time descending, name-tiebroken for stable output.
    rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
    Json::arr(
        rows.into_iter()
            .take(top_k)
            .map(|(name, (search, matches, applications))| {
                Json::obj([
                    ("rule", Json::str(name)),
                    ("search_ms", Json::from(ms(search))),
                    ("matches", Json::from(matches)),
                    ("applications", Json::from(applications)),
                ])
            }),
    )
}

/// Panics unless the two runs of the same config reached the same
/// saturation outcome. Wall-clock fields are deliberately ignored;
/// everything the canonical result is derived from must match.
fn assert_outcome_identical(parallel: &RunRecord, serial: &RunRecord) {
    let (p, s) = (&parallel.stats, &serial.stats);
    let outcome = |st: &SaturationStats| {
        (
            st.nodes_after_r1,
            st.nodes_after_r2,
            st.classes,
            st.r1_stop.clone(),
            st.r2_stop.clone(),
            st.r1_iterations,
            st.r2_iterations,
            st.pruned,
            st.total_matches,
        )
    };
    assert_eq!(
        outcome(p),
        outcome(s),
        "parallel search diverged from the serial oracle on {:?}",
        parallel.cfg
    );
    let per_rule = |st: &SaturationStats| -> Vec<(String, usize, usize)> {
        st.rules
            .iter()
            .map(|r| (r.name.clone(), r.matches, r.applications))
            .collect()
    };
    assert_eq!(
        per_rule(p),
        per_rule(s),
        "per-rule match/application counts diverged on {:?}",
        parallel.cfg
    );
}

/// Per-phase wall-clock totals over one corpus pass, in milliseconds.
#[derive(Default)]
struct Totals {
    search: f64,
    merge: f64,
    apply: f64,
    rebuild: f64,
}

impl Totals {
    fn json(&self) -> Json {
        Json::obj([
            ("search_ms", Json::from(self.search)),
            ("merge_ms", Json::from(self.merge)),
            ("apply_ms", Json::from(self.apply)),
            ("rebuild_ms", Json::from(self.rebuild)),
        ])
    }
}

fn print_header() {
    eprintln!(
        "{:>8} {:>5} {:>7} {:>8} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>10} {:>12}",
        "family",
        "bits",
        "mapped",
        "matcher",
        "search",
        "merge",
        "apply",
        "rebuild",
        "total",
        "matches",
        "matches/s"
    );
}

fn print_row(r: &RunRecord, matcher: &str) {
    let search_s = r.stats.search_time.as_secs_f64();
    eprintln!(
        "{:>8} {:>5} {:>7} {:>8} | {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms | {:>10} {:>12.0}",
        r.cfg.family,
        r.cfg.bits,
        r.cfg.mapped,
        matcher,
        ms(r.stats.search_time),
        ms(r.stats.merge_time),
        ms(r.stats.apply_time),
        ms(r.stats.rebuild_time),
        r.wall_ms,
        r.stats.total_matches,
        if search_s > 0.0 {
            r.stats.total_matches as f64 / search_s
        } else {
            0.0
        },
    );
}

fn print_totals(tag: &str, totals: &Totals) {
    eprintln!(
        "{tag} totals: search {:.1}ms  merge {:.1}ms  apply {:.1}ms  rebuild {:.1}ms",
        totals.search, totals.merge, totals.apply, totals.rebuild
    );
}

impl Totals {
    fn add(&mut self, r: &RunRecord) {
        self.search += ms(r.stats.search_time);
        self.merge += ms(r.stats.merge_time);
        self.apply += ms(r.stats.apply_time);
        self.rebuild += ms(r.stats.rebuild_time);
    }
}

fn matcher_tag(p: &SaturateParams) -> &'static str {
    if p.shared_search {
        "trie"
    } else {
        "solo"
    }
}

/// Runs the whole corpus once under `p`, printing a per-config row,
/// and returns the records plus phase totals.
fn run_corpus(
    configs: &[Config],
    p: &SaturateParams,
    verify_serial: bool,
) -> (Vec<RunRecord>, Totals) {
    print_header();
    let mut records = Vec::new();
    let mut totals = Totals::default();
    for &cfg in configs {
        let r = run_one(cfg, p);
        if verify_serial {
            let serial = run_one(cfg, &p.clone().with_search_threads(1));
            assert_outcome_identical(&r, &serial);
        }
        totals.add(&r);
        print_row(&r, matcher_tag(p));
        records.push(r);
    }
    print_totals("", &totals);
    (records, totals)
}

/// Runs each config under `p` and `base` in an A,B,B,A pattern and
/// keeps the faster (by search time) of each matcher's two runs. The
/// first run of each matcher warms the allocator and page cache for
/// this config's working set — measured at ~10% on a quiet 1-CPU box,
/// large enough to swamp a single-digit matcher difference — and the
/// mirrored order means slow box-level drift lands on both matchers
/// symmetrically instead of on whichever whole-corpus pass ran
/// second. Saturation is deterministic per (config, params), so the
/// two runs differ only in timing and taking the min is sound.
/// Returns (main records+totals, baseline records+totals).
fn run_corpus_paired(
    configs: &[Config],
    p: &SaturateParams,
    base: &SaturateParams,
    verify_serial: bool,
) -> (Vec<RunRecord>, Totals, Vec<RunRecord>, Totals) {
    print_header();
    let mut records = Vec::new();
    let mut totals = Totals::default();
    let mut base_records = Vec::new();
    let mut base_totals = Totals::default();
    for &cfg in configs {
        let run = |params: &SaturateParams| {
            let r = run_one(cfg, params);
            if verify_serial {
                let serial = run_one(cfg, &params.clone().with_search_threads(1));
                assert_outcome_identical(&r, &serial);
            }
            print_row(&r, matcher_tag(params));
            r
        };
        let min_by_search = |x: RunRecord, y: RunRecord| {
            assert_eq!(
                x.stats.total_matches, y.stats.total_matches,
                "repeat run diverged on {:?}",
                x.cfg
            );
            if x.stats.search_time <= y.stats.search_time {
                x
            } else {
                y
            }
        };
        let a1 = run(p);
        let b1 = run(base);
        let b2 = run(base);
        let a2 = run(p);
        let r = min_by_search(a1, a2);
        let b = min_by_search(b1, b2);
        totals.add(&r);
        base_totals.add(&b);
        records.push(r);
        base_records.push(b);
    }
    print_totals("main (min of 2)", &totals);
    print_totals("baseline (min of 2)", &base_totals);
    (records, totals, base_records, base_totals)
}

fn main() {
    let smoke = boole_bench::arg_flag("--smoke");
    let args: Vec<String> = std::env::args().collect();
    let arg_str = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let label = arg_str("--label").unwrap_or_else(|| "satbench".to_owned());
    let sizes: Vec<usize> = arg_str("--sizes")
        .unwrap_or_else(|| "4,6".to_owned())
        .split(',')
        .map(|s| s.trim().parse().expect("--sizes takes integers like 4,6"))
        .collect();
    let out = arg_str("--out");
    let search_threads: usize = arg_str("--search-threads")
        .map(|s| s.parse().expect("--search-threads takes an integer"))
        .unwrap_or(1);
    let per_pattern = boole_bench::arg_flag("--per-pattern");
    let compare_threads: Option<usize> = arg_str("--compare-threads")
        .map(|s| s.parse().expect("--compare-threads takes an integer"));
    let compare_per_pattern = boole_bench::arg_flag("--compare-per-pattern");
    let verify_serial = boole_bench::arg_flag("--verify-serial");

    let mut p = params();
    let configs: Vec<Config> = if smoke {
        p = SaturateParams {
            node_limit: 20_000,
            ..SaturateParams::small()
        }
        .without_time_limit();
        vec![Config {
            family: "csa",
            bits: 4,
            mapped: false,
        }]
    } else {
        let mut v = Vec::new();
        for &family in &["csa", "booth", "wallace"] {
            for &bits in &sizes {
                for &mapped in &[false, true] {
                    v.push(Config {
                        family,
                        bits,
                        mapped,
                    });
                }
            }
        }
        v
    };
    p = p
        .with_search_threads(search_threads)
        .with_shared_search(!per_pattern);

    let (records, totals, baseline) = if compare_per_pattern {
        let bp = p.clone().with_shared_search(false);
        eprintln!("paired main + per-pattern baseline pass (A,B,B,A per config, min of 2 kept)");
        let (records, totals, base_records, base_totals) =
            run_corpus_paired(&configs, &p, &bp, verify_serial);
        (records, totals, Some((bp, base_records, base_totals)))
    } else {
        let (records, totals) = run_corpus(&configs, &p, verify_serial);
        (records, totals, None)
    };

    let mut fields = vec![
        ("bench", Json::str("satbench")),
        ("label", Json::str(label)),
        ("smoke", Json::from(smoke)),
        ("node_limit", Json::from(p.node_limit)),
        ("match_limit", Json::from(p.match_limit)),
        ("search_threads", Json::from(p.search_threads)),
        ("shared_search", Json::from(p.shared_search)),
        (
            "notes",
            Json::str(
                "search_ms is the e-matching fan-out only; the serial merge is \
                 reported separately as merge_ms. Baseline history: files \
                 before the timing split folded the merge (scheduler/profile \
                 bookkeeping) into search_ms, and the pre-PR-9 committed file \
                 was a search_threads:4 run from a single-CPU box — neither is \
                 directly comparable to these numbers. Compare like with like: \
                 the main pass vs per_pattern_baseline (same threads; per \
                 config the two matchers run A,B,B,A and each side keeps its \
                 faster run, so box drift and allocator warm-up cancel), or \
                 the main pass vs comparison (same matcher).",
            ),
        ),
        ("totals", totals.json()),
        ("top_rules", top_rules_json(&records, 10)),
        ("runs", Json::arr(records.iter().map(record_json))),
    ];
    if let Some((bp, base_records, base_totals)) = baseline {
        fields.push((
            "per_pattern_baseline",
            Json::obj([
                ("search_threads", Json::from(bp.search_threads)),
                ("shared_search", Json::from(bp.shared_search)),
                (
                    "methodology",
                    Json::str(
                        "per config: main,baseline,baseline,main back-to-back, \
                         each side keeps its faster run (saturation is \
                         deterministic, so repeats differ only in timing)",
                    ),
                ),
                ("totals", base_totals.json()),
                ("runs", Json::arr(base_records.iter().map(record_json))),
            ]),
        ));
    }
    if let Some(threads) = compare_threads {
        eprintln!("--- comparison pass at {threads} search threads ---");
        let cp = p.clone().with_search_threads(threads);
        let (cmp_records, cmp_totals) = run_corpus(&configs, &cp, verify_serial);
        fields.push((
            "comparison",
            Json::obj([
                ("search_threads", Json::from(threads)),
                ("shared_search", Json::from(cp.shared_search)),
                ("totals", cmp_totals.json()),
                ("runs", Json::arr(cmp_records.iter().map(record_json))),
            ]),
        ));
    }
    let doc = Json::obj(fields);
    let text = doc.pretty();
    match (out, smoke) {
        (Some(path), _) => {
            std::fs::write(&path, format!("{text}\n")).expect("write benchmark file");
            eprintln!("wrote {path}");
        }
        (None, true) => println!("{text}"),
        (None, false) => {
            std::fs::write("BENCH_satbench.json", format!("{text}\n"))
                .expect("write BENCH_satbench.json");
            eprintln!("wrote BENCH_satbench.json");
        }
    }
}
