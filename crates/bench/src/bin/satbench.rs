//! `satbench` — the tracked saturation benchmark.
//!
//! Runs the generator corpus (CSA / Booth / Wallace multipliers at two
//! sizes, mapped and unmapped) through BoolE's two-phase `saturate`
//! and writes a machine-readable `BENCH_satbench.json` with wall-clock
//! time per phase (search / apply / rebuild), final e-graph sizes, and
//! matcher throughput. The committed copy of that file is the perf
//! baseline: re-run the binary after an engine change and compare the
//! `search_ms` totals to track the saturation-speed trajectory.
//!
//! ```text
//! cargo run --release -p boole-bench --bin satbench            # full corpus -> BENCH_satbench.json
//! cargo run --release -p boole-bench --bin satbench -- --smoke # smallest config, stdout only (CI)
//! ```
//!
//! Flags: `--sizes A,B` (default `4,6`), `--out PATH` (default
//! `BENCH_satbench.json`; `--smoke` defaults to stdout only),
//! `--label NAME` (recorded in the JSON), `--search-threads N`
//! (parallel rule search inside each saturation; default 1 = serial,
//! 0 = one thread per CPU; recorded in the JSON so baselines at
//! different thread counts are never compared by accident),
//! `--search-backend B` (which pluggable search backend runs the
//! e-matching fan-out: `per-pattern`, `shared-trie` (default), or
//! `relational`; recorded in the JSON as `"backend"`),
//! `--per-pattern` (deprecated alias of `--search-backend
//! per-pattern`, kept so old invocations keep working),
//! `--compare-threads N` (after the main corpus pass, rerun the whole
//! corpus at `N` search threads and record the second pass's totals
//! under `"comparison"`, so one file holds both the serial baseline
//! and a threaded data point), `--compare-backends` (run each config
//! under the main backend and every other backend in one mirrored
//! back-to-back sequence — e.g. A,B,C,C,B,A — keep the faster of each
//! backend's two runs, and record the non-main backends under
//! `"backend_comparisons"`; pairing the backends within seconds of
//! each other and discarding each one's cold run keeps box-level
//! drift and per-config allocator warm-up — both ~10% effects, bigger
//! than the backend difference itself — out of the comparison),
//! `--compare-per-pattern` (deprecated: the two-backend special case
//! of `--compare-backends`, recorded under `"per_pattern_baseline"`
//! in the pre-backend-refactor shape), `--note TEXT` (appended to
//! this run's `baseline_history` entry — the place to record what
//! the measured comparison showed), and `--verify-serial` (after
//! each parallel run, rerun the config at one thread and assert the
//! saturation outcome — sizes, iteration counts, stop reasons, match
//! totals — is identical; the benchmark doubles as the determinism
//! oracle).
//!
//! Timing semantics: `search_ms` counts only the e-matching fan-out;
//! the serial merge/bookkeeping that demultiplexes per-rule match
//! sets is reported separately as `merge_ms`, and the relational
//! backend's index-construction time (a subset of `search_ms`) as
//! `relation_build_ms`. Cross-run comparability caveats live in the
//! appendable `baseline_history` array: every run appends one entry
//! describing itself (label, backend, threads, totals, a short note),
//! and prior entries are carried over from the existing out-file, so
//! the history of what was measured under which semantics survives
//! rewrites of the file.

use std::time::Instant;

use boole::convert::aig_to_egraph;
use boole::json::{Json, ToJson};
use boole::{SaturateParams, SaturationStats, SearchBackendKind};

/// One corpus entry: a generator family at a bit width, optionally
/// put through the technology-mapping round trip.
#[derive(Debug, Clone, Copy)]
struct Config {
    family: &'static str,
    bits: usize,
    mapped: bool,
}

fn generate(cfg: &Config) -> aig::Aig {
    let aig = match cfg.family {
        "csa" => aig::gen::csa_multiplier(cfg.bits),
        "booth" => aig::gen::booth_multiplier(cfg.bits),
        "wallace" => aig::gen::wallace_multiplier(cfg.bits),
        other => panic!("unknown family {other}"),
    };
    if cfg.mapped {
        aig::map::map_round_trip(&aig)
    } else {
        aig
    }
}

/// Deterministic saturation parameters: no wall-clock stop, so the
/// same corpus always produces the same e-graph and the timings are
/// comparable across machines and runs.
fn params() -> SaturateParams {
    SaturateParams {
        node_limit: 50_000,
        ..SaturateParams::default()
    }
    .without_time_limit()
}

struct RunRecord {
    cfg: Config,
    nodes_before: usize,
    stats: SaturationStats,
    wall_ms: f64,
}

fn run_one(cfg: Config, p: &SaturateParams) -> RunRecord {
    let aig = generate(&cfg);
    let net = aig_to_egraph::<()>(&aig);
    let nodes_before = net.egraph.total_number_of_nodes();
    let start = Instant::now();
    let (_, stats) = boole::saturate(net, p);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    RunRecord {
        cfg,
        nodes_before,
        stats,
        wall_ms,
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn record_json(r: &RunRecord) -> Json {
    let search_s = r.stats.search_time.as_secs_f64();
    let matches_per_sec = if search_s > 0.0 {
        r.stats.total_matches as f64 / search_s
    } else {
        0.0
    };
    Json::obj([
        ("family", Json::str(r.cfg.family)),
        ("bits", Json::from(r.cfg.bits)),
        ("mapped", Json::from(r.cfg.mapped)),
        ("nodes_before", Json::from(r.nodes_before)),
        ("nodes_after_r1", Json::from(r.stats.nodes_after_r1)),
        ("nodes_after_r2", Json::from(r.stats.nodes_after_r2)),
        ("classes", Json::from(r.stats.classes)),
        (
            "iterations",
            Json::from(r.stats.r1_iterations + r.stats.r2_iterations),
        ),
        ("r1_stop", r.stats.r1_stop.to_json()),
        ("r2_stop", r.stats.r2_stop.to_json()),
        ("search_ms", Json::from(ms(r.stats.search_time))),
        ("merge_ms", Json::from(ms(r.stats.merge_time))),
        (
            "relation_build_ms",
            Json::from(ms(r.stats.relation_build_time)),
        ),
        ("apply_ms", Json::from(ms(r.stats.apply_time))),
        ("rebuild_ms", Json::from(ms(r.stats.rebuild_time))),
        ("saturate_ms", Json::from(r.wall_ms)),
        ("matches", Json::from(r.stats.total_matches)),
        ("matches_per_sec", Json::from(matches_per_sec)),
    ])
}

/// Aggregates per-rule saturation profiles across the whole corpus and
/// returns the top rules by total search time: the ranking answers
/// "which rewrite is the engine spending its matcher budget on", which
/// is where a scheduler or rule-set change shows up first.
fn top_rules_json(records: &[RunRecord], top_k: usize) -> Json {
    let mut agg: std::collections::BTreeMap<&str, (std::time::Duration, usize, usize)> =
        std::collections::BTreeMap::new();
    for record in records {
        for rule in &record.stats.rules {
            let entry = agg.entry(rule.name.as_str()).or_default();
            entry.0 += rule.search_time;
            entry.1 += rule.matches;
            entry.2 += rule.applications;
        }
    }
    let mut rows: Vec<_> = agg.into_iter().collect();
    // Sort by search time descending, name-tiebroken for stable output.
    rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
    Json::arr(
        rows.into_iter()
            .take(top_k)
            .map(|(name, (search, matches, applications))| {
                Json::obj([
                    ("rule", Json::str(name)),
                    ("search_ms", Json::from(ms(search))),
                    ("matches", Json::from(matches)),
                    ("applications", Json::from(applications)),
                ])
            }),
    )
}

/// Panics unless the two runs of the same config reached the same
/// saturation outcome. Wall-clock fields are deliberately ignored;
/// everything the canonical result is derived from must match.
fn assert_outcome_identical(parallel: &RunRecord, serial: &RunRecord) {
    let (p, s) = (&parallel.stats, &serial.stats);
    let outcome = |st: &SaturationStats| {
        (
            st.nodes_after_r1,
            st.nodes_after_r2,
            st.classes,
            st.r1_stop.clone(),
            st.r2_stop.clone(),
            st.r1_iterations,
            st.r2_iterations,
            st.pruned,
            st.total_matches,
        )
    };
    assert_eq!(
        outcome(p),
        outcome(s),
        "parallel search diverged from the serial oracle on {:?}",
        parallel.cfg
    );
    let per_rule = |st: &SaturationStats| -> Vec<(String, usize, usize)> {
        st.rules
            .iter()
            .map(|r| (r.name.clone(), r.matches, r.applications))
            .collect()
    };
    assert_eq!(
        per_rule(p),
        per_rule(s),
        "per-rule match/application counts diverged on {:?}",
        parallel.cfg
    );
}

/// Per-phase wall-clock totals over one corpus pass, in milliseconds.
#[derive(Default)]
struct Totals {
    search: f64,
    merge: f64,
    relation_build: f64,
    apply: f64,
    rebuild: f64,
}

impl Totals {
    fn json(&self) -> Json {
        Json::obj([
            ("search_ms", Json::from(self.search)),
            ("merge_ms", Json::from(self.merge)),
            ("relation_build_ms", Json::from(self.relation_build)),
            ("apply_ms", Json::from(self.apply)),
            ("rebuild_ms", Json::from(self.rebuild)),
        ])
    }

    fn add(&mut self, r: &RunRecord) {
        self.search += ms(r.stats.search_time);
        self.merge += ms(r.stats.merge_time);
        self.relation_build += ms(r.stats.relation_build_time);
        self.apply += ms(r.stats.apply_time);
        self.rebuild += ms(r.stats.rebuild_time);
    }
}

fn print_header() {
    eprintln!(
        "{:>8} {:>5} {:>7} {:>11} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>10} {:>12}",
        "family",
        "bits",
        "mapped",
        "backend",
        "search",
        "merge",
        "relbuild",
        "apply",
        "rebuild",
        "total",
        "matches",
        "matches/s"
    );
}

fn print_row(r: &RunRecord, backend: &str) {
    let search_s = r.stats.search_time.as_secs_f64();
    eprintln!(
        "{:>8} {:>5} {:>7} {:>11} | {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms | {:>10} {:>12.0}",
        r.cfg.family,
        r.cfg.bits,
        r.cfg.mapped,
        backend,
        ms(r.stats.search_time),
        ms(r.stats.merge_time),
        ms(r.stats.relation_build_time),
        ms(r.stats.apply_time),
        ms(r.stats.rebuild_time),
        r.wall_ms,
        r.stats.total_matches,
        if search_s > 0.0 {
            r.stats.total_matches as f64 / search_s
        } else {
            0.0
        },
    );
}

fn print_totals(tag: &str, totals: &Totals) {
    eprintln!(
        "{tag} totals: search {:.1}ms  merge {:.1}ms  relbuild {:.1}ms  apply {:.1}ms  rebuild {:.1}ms",
        totals.search, totals.merge, totals.relation_build, totals.apply, totals.rebuild
    );
}

fn backend_tag(p: &SaturateParams) -> &'static str {
    p.effective_backend().name()
}

/// Runs the whole corpus once under `p`, printing a per-config row,
/// and returns the records plus phase totals.
fn run_corpus(
    configs: &[Config],
    p: &SaturateParams,
    verify_serial: bool,
) -> (Vec<RunRecord>, Totals) {
    print_header();
    let mut records = Vec::new();
    let mut totals = Totals::default();
    for &cfg in configs {
        let r = run_one(cfg, p);
        if verify_serial {
            let serial = run_one(cfg, &p.clone().with_search_threads(1));
            assert_outcome_identical(&r, &serial);
        }
        totals.add(&r);
        print_row(&r, backend_tag(p));
        records.push(r);
    }
    print_totals("", &totals);
    (records, totals)
}

/// Runs each config under every parameter set in a mirrored
/// back-to-back sequence (`A,B,..,Z,Z,..,B,A`) and keeps the faster
/// (by search time) of each set's two runs. The first run of each
/// backend warms the allocator and page cache for this config's
/// working set — measured at ~10% on a quiet 1-CPU box, large enough
/// to swamp a single-digit backend difference — and the mirrored
/// order means slow box-level drift lands on every backend
/// symmetrically instead of on whichever whole-corpus pass ran
/// second. Saturation is deterministic per (config, params), so the
/// two runs differ only in timing and taking the min is sound.
/// Returns one (records, totals) pair per input parameter set, in
/// input order.
fn run_corpus_mirrored(
    configs: &[Config],
    param_sets: &[&SaturateParams],
    verify_serial: bool,
) -> Vec<(Vec<RunRecord>, Totals)> {
    print_header();
    let mut out: Vec<(Vec<RunRecord>, Totals)> = param_sets
        .iter()
        .map(|_| (Vec::new(), Totals::default()))
        .collect();
    for &cfg in configs {
        let run = |params: &SaturateParams| {
            let r = run_one(cfg, params);
            if verify_serial {
                let serial = run_one(cfg, &params.clone().with_search_threads(1));
                assert_outcome_identical(&r, &serial);
            }
            print_row(&r, backend_tag(params));
            r
        };
        let min_by_search = |x: RunRecord, y: RunRecord| {
            assert_eq!(
                x.stats.total_matches, y.stats.total_matches,
                "repeat run diverged on {:?}",
                x.cfg
            );
            if x.stats.search_time <= y.stats.search_time {
                x
            } else {
                y
            }
        };
        let firsts: Vec<RunRecord> = param_sets.iter().map(|p| run(p)).collect();
        let mut seconds: Vec<RunRecord> = param_sets.iter().rev().map(|p| run(p)).collect();
        seconds.reverse();
        for (slot, (a, b)) in out.iter_mut().zip(firsts.into_iter().zip(seconds)) {
            let best = min_by_search(a, b);
            slot.1.add(&best);
            slot.0.push(best);
        }
    }
    for ((_, totals), p) in out.iter().zip(param_sets) {
        print_totals(&format!("{} (min of 2)", backend_tag(p)), totals);
    }
    out
}

/// The appendable run history: parses the existing out-file (if any),
/// carries over its `baseline_history` array, and appends one entry
/// describing this run. Files written before the history existed
/// contribute nothing — the history starts at this run — but are
/// never a parse error. Each entry records what was measured and
/// under which timing semantics, so the caveats that used to be
/// re-edited prose in `notes` accrete as data instead.
fn baseline_history(prior: Option<&str>, entry: Json) -> Json {
    let mut history: Vec<Json> = prior
        .and_then(|text| Json::parse(text).ok())
        .and_then(|doc| doc.field("baseline_history").cloned())
        .and_then(|h| h.as_array().map(<[Json]>::to_vec))
        .unwrap_or_default();
    history.push(entry);
    Json::arr(history)
}

fn main() {
    let smoke = boole_bench::arg_flag("--smoke");
    let args: Vec<String> = std::env::args().collect();
    let arg_str = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let label = arg_str("--label").unwrap_or_else(|| "satbench".to_owned());
    let sizes: Vec<usize> = arg_str("--sizes")
        .unwrap_or_else(|| "4,6".to_owned())
        .split(',')
        .map(|s| s.trim().parse().expect("--sizes takes integers like 4,6"))
        .collect();
    let out = arg_str("--out");
    let search_threads: usize = arg_str("--search-threads")
        .map(|s| s.parse().expect("--search-threads takes an integer"))
        .unwrap_or(1);
    let backend: SearchBackendKind = match arg_str("--search-backend") {
        Some(name) => name.parse().expect("bad --search-backend"),
        // `--per-pattern` predates the backend enum; it keeps working
        // as an alias of `--search-backend per-pattern`.
        None if boole_bench::arg_flag("--per-pattern") => SearchBackendKind::PerPatternVm,
        None => SearchBackendKind::default(),
    };
    let compare_threads: Option<usize> = arg_str("--compare-threads")
        .map(|s| s.parse().expect("--compare-threads takes an integer"));
    let compare_backends = boole_bench::arg_flag("--compare-backends");
    // Deprecated alias: the two-backend special case, recorded in the
    // original `per_pattern_baseline` shape.
    let compare_per_pattern = boole_bench::arg_flag("--compare-per-pattern");
    let verify_serial = boole_bench::arg_flag("--verify-serial");

    let mut p = params();
    let configs: Vec<Config> = if smoke {
        p = SaturateParams {
            node_limit: 20_000,
            ..SaturateParams::small()
        }
        .without_time_limit();
        vec![Config {
            family: "csa",
            bits: 4,
            mapped: false,
        }]
    } else {
        let mut v = Vec::new();
        for &family in &["csa", "booth", "wallace"] {
            for &bits in &sizes {
                for &mapped in &[false, true] {
                    v.push(Config {
                        family,
                        bits,
                        mapped,
                    });
                }
            }
        }
        v
    };
    p = p
        .with_search_threads(search_threads)
        .with_search_backend(backend);

    // Which other backends ride along as paired baselines: all
    // non-oracle backends except the main one under
    // `--compare-backends`, just the per-pattern VM under the
    // deprecated `--compare-per-pattern`.
    let baseline_backends: Vec<SearchBackendKind> = if compare_backends {
        [
            SearchBackendKind::PerPatternVm,
            SearchBackendKind::SharedTrie,
            SearchBackendKind::Relational,
        ]
        .into_iter()
        .filter(|&k| k != backend)
        .collect()
    } else if compare_per_pattern && backend != SearchBackendKind::PerPatternVm {
        vec![SearchBackendKind::PerPatternVm]
    } else {
        Vec::new()
    };

    let (records, totals, baselines) = if baseline_backends.is_empty() {
        let (records, totals) = run_corpus(&configs, &p, verify_serial);
        (records, totals, Vec::new())
    } else {
        let baseline_params: Vec<SaturateParams> = baseline_backends
            .iter()
            .map(|&k| p.clone().with_search_backend(k))
            .collect();
        let mut param_sets: Vec<&SaturateParams> = vec![&p];
        param_sets.extend(baseline_params.iter());
        eprintln!(
            "paired pass over backends {:?} (mirrored back-to-back per config, min of 2 kept)",
            param_sets
                .iter()
                .map(|q| backend_tag(q))
                .collect::<Vec<_>>()
        );
        let mut results = run_corpus_mirrored(&configs, &param_sets, verify_serial);
        let (records, totals) = results.remove(0);
        let baselines: Vec<(SearchBackendKind, Vec<RunRecord>, Totals)> = baseline_backends
            .iter()
            .zip(results)
            .map(|(&k, (r, t))| (k, r, t))
            .collect();
        (records, totals, baselines)
    };

    let out_path: Option<&str> = match (&out, smoke) {
        (Some(path), _) => Some(path.as_str()),
        (None, true) => None,
        (None, false) => Some("BENCH_satbench.json"),
    };
    let prior = out_path.and_then(|path| std::fs::read_to_string(path).ok());
    let history_entry = Json::obj([
        ("label", Json::str(label.clone())),
        ("backend", Json::str(backend.name())),
        ("search_threads", Json::from(p.search_threads)),
        ("smoke", Json::from(smoke)),
        ("totals", totals.json()),
        (
            "note",
            Json::str(format!(
                "search_ms = e-matching fan-out only (merge_ms separate, \
                 relation_build_ms subset of search_ms); main backend {} \
                 paired against {:?}{}{}",
                backend.name(),
                baselines
                    .iter()
                    .map(|(k, _, _)| k.name())
                    .collect::<Vec<_>>(),
                if arg_str("--note").is_some() {
                    ". "
                } else {
                    ""
                },
                arg_str("--note").unwrap_or_default(),
            )),
        ),
    ]);

    let mut fields = vec![
        ("bench", Json::str("satbench")),
        ("label", Json::str(label)),
        ("smoke", Json::from(smoke)),
        ("node_limit", Json::from(p.node_limit)),
        ("match_limit", Json::from(p.match_limit)),
        ("search_threads", Json::from(p.search_threads)),
        ("backend", Json::str(backend.name())),
        ("shared_search", Json::from(p.shared_search)),
        (
            "notes",
            Json::str(
                "search_ms is the e-matching fan-out only; the serial merge is \
                 reported separately as merge_ms, and the relational backend's \
                 index construction (a subset of search_ms) as \
                 relation_build_ms. Per-run comparability caveats accrete in \
                 baseline_history; compare like with like: the main pass vs a \
                 backend_comparisons entry (same threads, backends paired \
                 back-to-back per config with each side keeping its faster \
                 run, so box drift and allocator warm-up cancel), or the main \
                 pass vs comparison (same backend, different threads).",
            ),
        ),
        ("totals", totals.json()),
        ("top_rules", top_rules_json(&records, 10)),
        ("runs", Json::arr(records.iter().map(record_json))),
    ];
    if compare_backends {
        fields.push((
            "backend_comparisons",
            Json::arr(baselines.iter().map(|(k, base_records, base_totals)| {
                Json::obj([
                    ("backend", Json::str(k.name())),
                    ("search_threads", Json::from(p.search_threads)),
                    (
                        "methodology",
                        Json::str(
                            "per config: all backends back-to-back in mirrored \
                             order, each side keeps its faster run (saturation \
                             is deterministic, so repeats differ only in \
                             timing)",
                        ),
                    ),
                    ("totals", base_totals.json()),
                    ("runs", Json::arr(base_records.iter().map(record_json))),
                ])
            })),
        ));
    } else if let Some((k, base_records, base_totals)) = baselines.first() {
        // Deprecated `--compare-per-pattern` shape, kept byte-compatible
        // with pre-backend-refactor consumers.
        assert_eq!(*k, SearchBackendKind::PerPatternVm);
        fields.push((
            "per_pattern_baseline",
            Json::obj([
                ("search_threads", Json::from(p.search_threads)),
                ("shared_search", Json::from(false)),
                (
                    "methodology",
                    Json::str(
                        "per config: main,baseline,baseline,main back-to-back, \
                         each side keeps its faster run (saturation is \
                         deterministic, so repeats differ only in timing)",
                    ),
                ),
                ("totals", base_totals.json()),
                ("runs", Json::arr(base_records.iter().map(record_json))),
            ]),
        ));
    }
    if let Some(threads) = compare_threads {
        eprintln!("--- comparison pass at {threads} search threads ---");
        let cp = p.clone().with_search_threads(threads);
        let (cmp_records, cmp_totals) = run_corpus(&configs, &cp, verify_serial);
        fields.push((
            "comparison",
            Json::obj([
                ("search_threads", Json::from(threads)),
                ("backend", Json::str(backend.name())),
                ("totals", cmp_totals.json()),
                ("runs", Json::arr(cmp_records.iter().map(record_json))),
            ]),
        ));
    }
    fields.push((
        "baseline_history",
        baseline_history(prior.as_deref(), history_entry),
    ));
    let doc = Json::obj(fields);
    let text = doc.pretty();
    match out_path {
        Some(path) => {
            std::fs::write(path, format!("{text}\n")).expect("write benchmark file");
            eprintln!("wrote {path}");
        }
        None => println!("{text}"),
    }
}
