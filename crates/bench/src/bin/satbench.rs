//! `satbench` — the tracked saturation benchmark.
//!
//! Runs the generator corpus (CSA / Booth / Wallace multipliers at two
//! sizes, mapped and unmapped) through BoolE's two-phase `saturate`
//! and writes a machine-readable `BENCH_satbench.json` with wall-clock
//! time per phase (search / apply / rebuild), final e-graph sizes, and
//! matcher throughput. The committed copy of that file is the perf
//! baseline: re-run the binary after an engine change and compare the
//! `search_ms` totals to track the saturation-speed trajectory.
//!
//! ```text
//! cargo run --release -p boole-bench --bin satbench            # full corpus -> BENCH_satbench.json
//! cargo run --release -p boole-bench --bin satbench -- --smoke # smallest config, stdout only (CI)
//! ```
//!
//! Flags: `--sizes A,B` (default `4,6`), `--out PATH` (default
//! `BENCH_satbench.json`; `--smoke` defaults to stdout only),
//! `--label NAME` (recorded in the JSON), `--search-threads N`
//! (parallel rule search inside each saturation; default 1 = serial,
//! 0 = one thread per CPU; recorded in the JSON so baselines at
//! different thread counts are never compared by accident), and
//! `--verify-serial` (after each parallel run, rerun the config at
//! one thread and assert the saturation outcome — sizes, iteration
//! counts, stop reasons, match totals — is identical; the benchmark
//! doubles as the determinism oracle).

use std::time::Instant;

use boole::convert::aig_to_egraph;
use boole::json::{Json, ToJson};
use boole::{SaturateParams, SaturationStats};

/// One corpus entry: a generator family at a bit width, optionally
/// put through the technology-mapping round trip.
#[derive(Debug, Clone, Copy)]
struct Config {
    family: &'static str,
    bits: usize,
    mapped: bool,
}

fn generate(cfg: &Config) -> aig::Aig {
    let aig = match cfg.family {
        "csa" => aig::gen::csa_multiplier(cfg.bits),
        "booth" => aig::gen::booth_multiplier(cfg.bits),
        "wallace" => aig::gen::wallace_multiplier(cfg.bits),
        other => panic!("unknown family {other}"),
    };
    if cfg.mapped {
        aig::map::map_round_trip(&aig)
    } else {
        aig
    }
}

/// Deterministic saturation parameters: no wall-clock stop, so the
/// same corpus always produces the same e-graph and the timings are
/// comparable across machines and runs.
fn params() -> SaturateParams {
    SaturateParams {
        node_limit: 50_000,
        ..SaturateParams::default()
    }
    .without_time_limit()
}

struct RunRecord {
    cfg: Config,
    nodes_before: usize,
    stats: SaturationStats,
    wall_ms: f64,
}

fn run_one(cfg: Config, p: &SaturateParams) -> RunRecord {
    let aig = generate(&cfg);
    let net = aig_to_egraph::<()>(&aig);
    let nodes_before = net.egraph.total_number_of_nodes();
    let start = Instant::now();
    let (_, stats) = boole::saturate(net, p);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    RunRecord {
        cfg,
        nodes_before,
        stats,
        wall_ms,
    }
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn record_json(r: &RunRecord) -> Json {
    let search_s = r.stats.search_time.as_secs_f64();
    let matches_per_sec = if search_s > 0.0 {
        r.stats.total_matches as f64 / search_s
    } else {
        0.0
    };
    Json::obj([
        ("family", Json::str(r.cfg.family)),
        ("bits", Json::from(r.cfg.bits)),
        ("mapped", Json::from(r.cfg.mapped)),
        ("nodes_before", Json::from(r.nodes_before)),
        ("nodes_after_r1", Json::from(r.stats.nodes_after_r1)),
        ("nodes_after_r2", Json::from(r.stats.nodes_after_r2)),
        ("classes", Json::from(r.stats.classes)),
        (
            "iterations",
            Json::from(r.stats.r1_iterations + r.stats.r2_iterations),
        ),
        ("r1_stop", r.stats.r1_stop.to_json()),
        ("r2_stop", r.stats.r2_stop.to_json()),
        ("search_ms", Json::from(ms(r.stats.search_time))),
        ("apply_ms", Json::from(ms(r.stats.apply_time))),
        ("rebuild_ms", Json::from(ms(r.stats.rebuild_time))),
        ("saturate_ms", Json::from(r.wall_ms)),
        ("matches", Json::from(r.stats.total_matches)),
        ("matches_per_sec", Json::from(matches_per_sec)),
    ])
}

/// Aggregates per-rule saturation profiles across the whole corpus and
/// returns the top rules by total search time: the ranking answers
/// "which rewrite is the engine spending its matcher budget on", which
/// is where a scheduler or rule-set change shows up first.
fn top_rules_json(records: &[RunRecord], top_k: usize) -> Json {
    let mut agg: std::collections::BTreeMap<&str, (std::time::Duration, usize, usize)> =
        std::collections::BTreeMap::new();
    for record in records {
        for rule in &record.stats.rules {
            let entry = agg.entry(rule.name.as_str()).or_default();
            entry.0 += rule.search_time;
            entry.1 += rule.matches;
            entry.2 += rule.applications;
        }
    }
    let mut rows: Vec<_> = agg.into_iter().collect();
    // Sort by search time descending, name-tiebroken for stable output.
    rows.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
    Json::arr(
        rows.into_iter()
            .take(top_k)
            .map(|(name, (search, matches, applications))| {
                Json::obj([
                    ("rule", Json::str(name)),
                    ("search_ms", Json::from(ms(search))),
                    ("matches", Json::from(matches)),
                    ("applications", Json::from(applications)),
                ])
            }),
    )
}

/// Panics unless the two runs of the same config reached the same
/// saturation outcome. Wall-clock fields are deliberately ignored;
/// everything the canonical result is derived from must match.
fn assert_outcome_identical(parallel: &RunRecord, serial: &RunRecord) {
    let (p, s) = (&parallel.stats, &serial.stats);
    let outcome = |st: &SaturationStats| {
        (
            st.nodes_after_r1,
            st.nodes_after_r2,
            st.classes,
            st.r1_stop.clone(),
            st.r2_stop.clone(),
            st.r1_iterations,
            st.r2_iterations,
            st.pruned,
            st.total_matches,
        )
    };
    assert_eq!(
        outcome(p),
        outcome(s),
        "parallel search diverged from the serial oracle on {:?}",
        parallel.cfg
    );
    let per_rule = |st: &SaturationStats| -> Vec<(String, usize, usize)> {
        st.rules
            .iter()
            .map(|r| (r.name.clone(), r.matches, r.applications))
            .collect()
    };
    assert_eq!(
        per_rule(p),
        per_rule(s),
        "per-rule match/application counts diverged on {:?}",
        parallel.cfg
    );
}

fn main() {
    let smoke = boole_bench::arg_flag("--smoke");
    let args: Vec<String> = std::env::args().collect();
    let arg_str = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let label = arg_str("--label").unwrap_or_else(|| "satbench".to_owned());
    let sizes: Vec<usize> = arg_str("--sizes")
        .unwrap_or_else(|| "4,6".to_owned())
        .split(',')
        .map(|s| s.trim().parse().expect("--sizes takes integers like 4,6"))
        .collect();
    let out = arg_str("--out");
    let search_threads: usize = arg_str("--search-threads")
        .map(|s| s.parse().expect("--search-threads takes an integer"))
        .unwrap_or(1);
    let verify_serial = boole_bench::arg_flag("--verify-serial");

    let mut p = params();
    let configs: Vec<Config> = if smoke {
        p = SaturateParams {
            node_limit: 20_000,
            ..SaturateParams::small()
        }
        .without_time_limit();
        vec![Config {
            family: "csa",
            bits: 4,
            mapped: false,
        }]
    } else {
        let mut v = Vec::new();
        for &family in &["csa", "booth", "wallace"] {
            for &bits in &sizes {
                for &mapped in &[false, true] {
                    v.push(Config {
                        family,
                        bits,
                        mapped,
                    });
                }
            }
        }
        v
    };
    p = p.with_search_threads(search_threads);

    eprintln!(
        "{:>8} {:>5} {:>7} | {:>9} {:>9} {:>9} {:>9} | {:>10} {:>12}",
        "family", "bits", "mapped", "search", "apply", "rebuild", "total", "matches", "matches/s"
    );
    let mut records = Vec::new();
    let mut search_total = 0.0;
    let mut apply_total = 0.0;
    let mut rebuild_total = 0.0;
    for cfg in configs {
        let r = run_one(cfg, &p);
        if verify_serial {
            let serial = run_one(cfg, &p.clone().with_search_threads(1));
            assert_outcome_identical(&r, &serial);
        }
        search_total += ms(r.stats.search_time);
        apply_total += ms(r.stats.apply_time);
        rebuild_total += ms(r.stats.rebuild_time);
        let search_s = r.stats.search_time.as_secs_f64();
        eprintln!(
            "{:>8} {:>5} {:>7} | {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms | {:>10} {:>12.0}",
            r.cfg.family,
            r.cfg.bits,
            r.cfg.mapped,
            ms(r.stats.search_time),
            ms(r.stats.apply_time),
            ms(r.stats.rebuild_time),
            r.wall_ms,
            r.stats.total_matches,
            if search_s > 0.0 {
                r.stats.total_matches as f64 / search_s
            } else {
                0.0
            },
        );
        records.push(r);
    }
    eprintln!(
        "totals: search {search_total:.1}ms  apply {apply_total:.1}ms  rebuild {rebuild_total:.1}ms"
    );

    let doc = Json::obj([
        ("bench", Json::str("satbench")),
        ("label", Json::str(label)),
        ("smoke", Json::from(smoke)),
        ("node_limit", Json::from(p.node_limit)),
        ("match_limit", Json::from(p.match_limit)),
        ("search_threads", Json::from(p.search_threads)),
        (
            "totals",
            Json::obj([
                ("search_ms", Json::from(search_total)),
                ("apply_ms", Json::from(apply_total)),
                ("rebuild_ms", Json::from(rebuild_total)),
            ]),
        ),
        ("top_rules", top_rules_json(&records, 10)),
        ("runs", Json::arr(records.iter().map(record_json))),
    ]);
    let text = doc.pretty();
    match (out, smoke) {
        (Some(path), _) => {
            std::fs::write(&path, format!("{text}\n")).expect("write benchmark file");
            eprintln!("wrote {path}");
        }
        (None, true) => println!("{text}"),
        (None, false) => {
            std::fs::write("BENCH_satbench.json", format!("{text}\n"))
                .expect("write BENCH_satbench.json");
            eprintln!("wrote BENCH_satbench.json");
        }
    }
}
