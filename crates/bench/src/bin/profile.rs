//! Developer tool: per-phase timing of the BoolE pipeline.
//!
//! ```text
//! cargo run --release -p boole-bench --bin profile -- [--bits 4] [--mapped]
//! ```

use std::time::Instant;

use boole::{aig_to_egraph, extract_dag, pair_full_adders, reconstruct_aig, saturate};
use boole::{NetlistEGraph, SaturateParams};

fn main() {
    let n = boole_bench::arg_usize("--bits", 4);
    let mapped = boole_bench::arg_flag("--mapped");
    let aig = if boole_bench::arg_flag("--booth") {
        aig::gen::booth_multiplier(n)
    } else {
        aig::gen::csa_multiplier(n)
    };
    let aig = if mapped {
        aig::map::map_round_trip(&aig)
    } else if boole_bench::arg_flag("--dch") {
        aig::opt::dch(&aig)
    } else {
        aig
    };
    println!(
        "netlist: {} ANDs ({} inputs)",
        aig.num_ands(),
        aig.num_inputs()
    );

    let t0 = Instant::now();
    let net: NetlistEGraph = aig_to_egraph(&aig);
    println!(
        "convert      : {:?} ({} classes)",
        t0.elapsed(),
        net.egraph.num_classes()
    );

    let mut params = if boole_bench::arg_flag("--small") {
        SaturateParams::small()
    } else {
        SaturateParams::default()
    };
    params.r1_growth = boole_bench::arg_usize("--growth", params.r1_growth as usize) as f64;
    params.r1_iters = boole_bench::arg_usize("--r1-iters", params.r1_iters);
    params.r2_iters = boole_bench::arg_usize("--r2-iters", params.r2_iters);
    let t1 = Instant::now();
    let (mut net, stats) = saturate(net, &params);
    println!(
        "saturate     : {:?} (R1 {} iters -> {} nodes [{}], R2 {} iters -> {} nodes [{}], pruned {})",
        t1.elapsed(),
        stats.r1_iterations,
        stats.nodes_after_r1,
        stats.r1_stop,
        stats.r2_iterations,
        stats.nodes_after_r2,
        stats.r2_stop,
        stats.pruned
    );

    let t2 = Instant::now();
    let pairing = pair_full_adders(&mut net.egraph);
    println!(
        "pair         : {:?} ({} fa inserted; {} xor3 / {} maj triples)",
        t2.elapsed(),
        pairing.fa_inserted,
        pairing.xor3_triples,
        pairing.maj_triples
    );

    let t3 = Instant::now();
    let extraction = extract_dag(&net.egraph);
    println!(
        "extract      : {:?} ({} classes chosen)",
        t3.elapsed(),
        extraction.len()
    );

    let t4 = Instant::now();
    let (out, fas) = reconstruct_aig(&net.egraph, &extraction, aig.num_inputs(), &net.outputs);
    println!(
        "reconstruct  : {:?} ({} ANDs, {} exact FAs; upper bound {})",
        t4.elapsed(),
        out.num_ands(),
        fas.len(),
        aig::gen::csa_fa_upper_bound(n)
    );
    assert!(aig::sim::random_equiv_check(&aig, &out, 4, 0xFACE));
    println!("equivalence  : ok");

    if boole_bench::arg_flag("--dump-fas") {
        println!("recovered FAs (inputs -> sum/carry):");
        for fa in &fas {
            println!("  {:?} -> {:?} / {:?}", fa.inputs, fa.sum, fa.carry);
        }
        if !mapped {
            let m = aig::gen::csa_multiplier_with_stats(n);
            println!("generator ground truth:");
            for fa in &m.fas {
                println!("  {:?} -> {:?} / {:?}", fa.inputs, fa.sum, fa.carry);
            }
        }
    }
}
