//! Prints the rewriting library (**Table I**): rule counts and the
//! full rule listing with truth-table-verified soundness.
//!
//! ```text
//! cargo run --release -p boole-bench --bin ruleset_report [-- --full]
//! ```

fn main() {
    let r1 = boole::rules::r1_table();
    let maj = boole::rules::maj_table();
    let xor = boole::rules::xor_table();
    let light = boole::rules::r1_lightweight_table();

    println!("== Table I — BoolE rewriting library ==");
    println!("R1 (basic Boolean rules):        {:>4}", r1.len());
    println!("R2 (MAJ identification):         {:>4}", maj.len());
    println!("R2 (XOR identification):         {:>4}", xor.len());
    println!("R1 lightweight subset:           {:>4}", light.len());
    println!();
    println!("Paper (Table I): 68 basic + 39 MAJ + 90 XOR rules.");

    if boole_bench::arg_flag("--full") {
        for (title, table) in [("R1", &r1), ("R2/MAJ", &maj), ("R2/XOR", &xor)] {
            println!("\n-- {title} --");
            for (name, lhs, rhs) in table {
                println!("{name:<24} {lhs}  =>  {rhs}");
            }
        }
    } else {
        println!("(pass --full to list every rule)");
        println!("\nExamples (cf. Table I):");
        for (name, lhs, rhs) in r1.iter().take(4) {
            println!("  {name:<20} {lhs}  =>  {rhs}");
        }
        for (name, lhs, rhs) in maj.iter().take(2) {
            println!("  {name:<20} {lhs}  =>  {rhs}");
        }
        for (name, lhs, rhs) in xor.iter().take(2) {
            println!("  {name:<20} {lhs}  =>  {rhs}");
        }
    }
}
