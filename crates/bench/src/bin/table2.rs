//! Regenerates **Table II**: RevSCA-2.0-style verification of
//! `dch`-optimized CSA multipliers, with and without BoolE.
//!
//! ```text
//! cargo run --release -p boole-bench --bin table2 -- [--max-bits 12] [--to-terms 300000] [--json]
//! ```
//!
//! Rows: bitwidth, exact-FA upper bound, exact FAs for BoolE /
//! baseline, max polynomial size, end-to-end runtime; `TO` marks runs
//! that exceeded the term budget (the stand-in for the paper's 72 h
//! timeout).

use std::time::Instant;

use boole::json::{Json, ToJson};
use boole::{BoolE, BooleParams};
use boole_bench::{baseline_blocks, prepare, verifier_blocks, Family, Prep};
use sca::{verify_multiplier, MulSpec, VerifyParams};

fn main() {
    let max_bits = boole_bench::arg_usize("--max-bits", 12);
    let to_terms = boole_bench::arg_usize("--to-terms", 300_000);
    let as_json = boole_bench::arg_flag("--json");
    let params = VerifyParams {
        max_terms: to_terms,
        ..VerifyParams::default()
    };

    if !as_json {
        println!("== Table II — verification of dch-optimized CSA multipliers ==");
        println!(
            "{:>5} {:>7} | {:>11} {:>13} | {:>10} {:>13} | {:>11} {:>14}",
            "bits",
            "UB",
            "ExactFA-Be",
            "ExactFA-Base",
            "MaxPoly-Be",
            "MaxPoly-Base",
            "Time-Be(s)",
            "Time-Base(s)"
        );
    }
    let mut rows: Vec<Json> = Vec::new();

    let mut n = 4;
    while n <= max_bits {
        let opt = prepare(Family::Csa, n, Prep::Dch);
        let upper = aig::gen::csa_fa_upper_bound(n);

        // Baseline: RevSCA's own cut-enumeration detector on the
        // optimized netlist.
        let base_start = Instant::now();
        let base_report = baselines::detect_blocks_atree(&opt);
        let base_blocks = baseline_blocks(&base_report);
        let base_exact = base_blocks.fas.len();
        let base = verify_multiplier(&opt, MulSpec::unsigned(n), &base_blocks, &params);
        let base_time = base_start.elapsed();
        assert!(base.verified || base.timed_out, "baseline must not refute");

        // BoolE-assisted: reason about the netlist, then verify the
        // *original* optimized netlist with the recovered blocks
        // mapped back to its signals.
        let be_start = Instant::now();
        let result = BoolE::new(BooleParams::default()).run(&opt);
        let blocks = verifier_blocks(&result, &opt);
        let be = verify_multiplier(&opt, MulSpec::unsigned(n), &blocks, &params);
        let be_time = be_start.elapsed();

        if as_json {
            let side = |exact: usize, outcome: &sca::VerifyOutcome, time: std::time::Duration| {
                Json::obj([
                    ("exact_fas", Json::from(exact)),
                    ("verified", Json::from(outcome.verified)),
                    ("timed_out", Json::from(outcome.timed_out)),
                    ("max_poly_size", Json::from(outcome.max_poly_size)),
                    ("time_ms", Json::duration_ms(time)),
                ])
            };
            rows.push(Json::obj([
                ("bits", Json::from(n)),
                ("upper_bound", Json::from(upper)),
                ("boole", side(blocks.fas.len(), &be, be_time)),
                ("baseline", side(base_exact, &base, base_time)),
                ("boole_stats", result.saturation.to_json()),
            ]));
        } else {
            let fmt_time = |t: std::time::Duration, timed_out: bool| {
                if timed_out {
                    "TO".to_owned()
                } else {
                    format!("{:.3}", t.as_secs_f64())
                }
            };
            let fmt_size = |size: usize, timed_out: bool| {
                if timed_out {
                    format!(">{size}")
                } else {
                    size.to_string()
                }
            };
            println!(
                "{n:>5} {upper:>7} | {:>11} {base_exact:>13} | {:>10} {:>13} | {:>11} {:>14}",
                blocks.fas.len(),
                fmt_size(be.max_poly_size, be.timed_out),
                fmt_size(base.max_poly_size, base.timed_out),
                fmt_time(be_time, be.timed_out),
                fmt_time(base_time, base.timed_out),
            );
        }
        n += 4;
    }
    if as_json {
        println!(
            "{}",
            Json::obj([
                ("experiment", Json::str("table2")),
                ("rows", Json::arr(rows))
            ])
            .pretty()
        );
    }
}
