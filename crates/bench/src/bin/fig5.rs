//! Regenerates **Figure 5**: BoolE end-to-end runtime versus input
//! netlist size (AIG node count) on post-mapping CSA and Booth
//! multipliers.
//!
//! ```text
//! cargo run --release -p boole-bench --bin fig5 -- [--max-bits 16] [--step 4]
//! ```

use boole::{BoolE, BooleParams};
use boole_bench::{prepare, Family, Prep};

fn main() {
    let max_bits = boole_bench::arg_usize("--max-bits", 16);
    let step = boole_bench::arg_usize("--step", 4);

    println!("== Figure 5 — BoolE runtime vs AIG node count ==");
    println!(
        "{:>7} {:>5} {:>11} {:>12} {:>12} {:>10}",
        "family", "bits", "aig-nodes", "egraph-nodes", "exact-FAs", "runtime-s"
    );
    for family in [Family::Csa, Family::Booth] {
        let mut n = 4;
        while n <= max_bits {
            if family == Family::Booth && n % 2 != 0 {
                n += step;
                continue;
            }
            let mapped = prepare(family, n, Prep::Mapped);
            let nodes = mapped.num_ands();
            let result = BoolE::new(BooleParams::default()).run(&mapped);
            println!(
                "{:>7} {n:>5} {nodes:>11} {:>12} {:>12} {:>10.3}",
                family.name(),
                result.saturation.nodes_after_r2,
                result.exact_fa_count(),
                result.runtime.as_secs_f64()
            );
            n += step;
        }
    }
}
