//! Throughput benchmark for the batch-reasoning service: a mixed
//! workload of generated and technology-mapped multipliers, run
//! serially and on worker pools of increasing width, plus a cache-hit
//! pass over the same batch.
//!
//! ```text
//! cargo run --release -p boole-bench --bin service_throughput -- \
//!     [--jobs 16] [--max-workers 8] [--json]
//! ```

use std::time::Instant;

use boole::json::{Json, ToJson};
use boole::BooleParams;
use boole_service::{run_spec_serial, GenSpec, JobSpec, Service, ServiceConfig};

/// A deterministic mixed workload of *distinct* jobs (distinct
/// structural fingerprints, so the in-batch cache cannot collapse
/// them): families and preparations cycle, widths grow slowly.
fn workload(jobs: usize) -> Vec<JobSpec> {
    (0..jobs)
        .map(|i| {
            // (family, prep) is unique within a block of 9; the width
            // round advances every block, so all jobs are distinct.
            let family = ["csa", "wallace", "booth"][i % 3];
            let prep = ["", ":mapped", ":dch"][(i / 3) % 3];
            let round = i / 9;
            // Booth widths must be even.
            let width = if family == "booth" {
                4 + 2 * round
            } else {
                3 + round
            };
            let spec = GenSpec::parse(&format!("{family}:{width}{prep}")).unwrap();
            JobSpec::generated(spec).with_params(BooleParams::small().without_time_limit())
        })
        .collect()
}

fn main() {
    let jobs = boole_bench::arg_usize("--jobs", 16);
    let max_workers = boole_bench::arg_usize("--max-workers", 8);
    let as_json = boole_bench::arg_flag("--json");

    // Serial reference.
    let serial_start = Instant::now();
    let serial: Vec<_> = workload(jobs).into_iter().map(run_spec_serial).collect();
    let serial_time = serial_start.elapsed();
    let total_fas: usize = serial
        .iter()
        .filter_map(|o| o.summary().map(|s| s.exact_fa_count))
        .sum();

    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if !as_json {
        println!(
            "== service throughput — {jobs} mixed jobs (host parallelism: {host_parallelism}) =="
        );
        println!(
            "{:>9} {:>11} {:>9} {:>11} {:>11}",
            "workers", "time(s)", "speedup", "jobs/s", "cache-pass"
        );
        println!(
            "{:>9} {:>11.3} {:>9.2} {:>11.2} {:>11}",
            "serial",
            serial_time.as_secs_f64(),
            1.0,
            jobs as f64 / serial_time.as_secs_f64(),
            "-"
        );
    }
    let mut rows: Vec<Json> = Vec::new();
    let mut workers = 1;
    while workers <= max_workers {
        let service = Service::new(ServiceConfig {
            num_workers: workers,
            queue_capacity: jobs.max(1),
            cache_capacity: jobs.max(1),
            cache_dir: None,
            telemetry: None,
            search_threads: None,
            ..ServiceConfig::default()
        });
        let pool_start = Instant::now();
        let outcomes = service.run_batch(workload(jobs));
        let pool_time = pool_start.elapsed();

        // Resubmit the identical batch: every job must now be answered
        // from the structural-hash cache.
        let cached_start = Instant::now();
        let cached = service.run_batch(workload(jobs));
        let cached_time = cached_start.elapsed();
        let hits = cached.iter().filter(|o| o.from_cache).count();
        let stats = service.shutdown();

        let pool_fas: usize = outcomes
            .iter()
            .filter_map(|o| o.summary().map(|s| s.exact_fa_count))
            .sum();
        assert_eq!(pool_fas, total_fas, "pool results diverged from serial");
        assert_eq!(hits, jobs, "resubmitted batch must be fully cached");

        if as_json {
            rows.push(Json::obj([
                ("workers", Json::from(workers)),
                ("time_ms", Json::duration_ms(pool_time)),
                (
                    "speedup",
                    Json::Float(serial_time.as_secs_f64() / pool_time.as_secs_f64()),
                ),
                ("cached_pass_ms", Json::duration_ms(cached_time)),
                ("cache_hits", Json::from(hits)),
                ("service", stats.to_json()),
            ]));
        } else {
            println!(
                "{workers:>9} {:>11.3} {:>9.2} {:>11.2} {:>10.3}s",
                pool_time.as_secs_f64(),
                serial_time.as_secs_f64() / pool_time.as_secs_f64(),
                jobs as f64 / pool_time.as_secs_f64(),
                cached_time.as_secs_f64(),
            );
        }
        workers *= 2;
    }
    if as_json {
        println!(
            "{}",
            Json::obj([
                ("experiment", Json::str("service_throughput")),
                ("jobs", Json::from(jobs)),
                ("host_parallelism", Json::from(host_parallelism)),
                ("serial_ms", Json::duration_ms(serial_time)),
                ("rows", Json::arr(rows)),
            ])
            .pretty()
        );
    }
}
