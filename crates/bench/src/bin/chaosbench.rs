//! Chaos harness for the batch-reasoning service: seeded random fault
//! schedules over seeded random batches, checked against the service's
//! liveness and accounting invariants. A run is reproducible from its
//! seed; any violated invariant panics (non-zero exit), so this binary
//! doubles as a CI smoke gate:
//!
//! ```text
//! cargo run --release -p boole-bench --bin chaosbench -- \
//!     [--seed 1] [--rounds 8] [--smoke] [--json]
//! ```
//!
//! Invariants enforced every round:
//! * every submitted job reaches exactly one terminal status within the
//!   round budget — no handle hangs, no worker dies permanently;
//! * `submitted == completed + cancelled + failed + panicked + shed`;
//! * `shutdown` drains: after it returns, every handle is terminal;
//! * a dedicated heal round: injected disk-write corruption must read
//!   as a miss for a fresh service on the same directory, then serve a
//!   clean hit after the rewrite.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use boole::json::{Json, ToJson};
use boole::BooleParams;
use boole_service::faults::site;
use boole_service::{
    FaultAction, FaultPolicy, FaultRegistry, GenSpec, JobHandle, JobSpec, Service, ServiceConfig,
    ServiceStats, ShedPolicy, Trigger,
};

/// Local splitmix64 (the registry's own stream stays private): one
/// seed reproduces the whole run — schedule, config, and batch.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn below(state: &mut u64, n: u64) -> u64 {
    splitmix64(state) % n.max(1)
}

fn spec(text: &str) -> JobSpec {
    JobSpec::generated(GenSpec::parse(text).unwrap())
        .with_params(BooleParams::lightweight().without_time_limit())
}

fn temp_dir(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!("boole-chaosbench-{tag}-{}", std::process::id()))
}

/// A randomly-armed registry. Panic is never installed at
/// `queue.accept`: that failpoint fires on the submitter's thread
/// (this harness), outside any worker's panic-isolation boundary.
fn random_faults(rng: &mut u64) -> Arc<FaultRegistry> {
    let faults = Arc::new(FaultRegistry::new());
    for &name in site::ALL {
        if below(rng, 2) == 0 {
            continue;
        }
        let trigger = match below(rng, 4) {
            0 => Trigger::Nth(1 + below(rng, 3)),
            1 => Trigger::EveryKth(2 + below(rng, 2)),
            2 => Trigger::Always,
            _ => Trigger::Probability {
                numerator: 1 + below(rng, 3),
                denominator: 4,
                seed: splitmix64(rng),
            },
        };
        let action = match below(rng, 3) {
            0 if name != site::QUEUE_ACCEPT => FaultAction::Panic,
            1 => FaultAction::Corrupt,
            _ => FaultAction::Error,
        };
        faults.configure(name, FaultPolicy { trigger, action });
    }
    faults
}

struct RoundReport {
    stats: ServiceStats,
    faults_fired: u64,
    elapsed: Duration,
}

/// One chaos round: random schedule, random config, random batch.
/// Panics on any violated invariant.
fn chaos_round(seed: u64, round: u64, jobs: usize) -> RoundReport {
    let mut rng = seed ^ round.wrapping_mul(0x517c_c1b7_2722_0a95);
    let faults = random_faults(&mut rng);
    let shed_policy = match below(&mut rng, 3) {
        0 => ShedPolicy::Block,
        1 => ShedPolicy::Shed,
        _ => ShedPolicy::Timeout(Duration::from_millis(2)),
    };
    let cache_dir = (below(&mut rng, 2) == 0).then(|| temp_dir(splitmix64(&mut rng)));
    let mut config = ServiceConfig::default()
        .with_workers(1 + below(&mut rng, 3) as usize)
        .with_queue_capacity(1 + below(&mut rng, 4) as usize)
        .with_shed_policy(shed_policy)
        .with_max_retries(below(&mut rng, 3) as u32)
        .with_retry_base(Duration::from_millis(1))
        .with_faults(Arc::clone(&faults));
    if let Some(dir) = &cache_dir {
        config = config.with_cache_dir(dir);
    }
    let service = Service::new(config);

    // Duplicates on purpose: single-flight leadership must survive
    // injected panics (followers re-elect, nobody hangs).
    let pool = ["csa:3", "wallace:3", "booth:4", "csa:3"];
    let start = Instant::now();
    let handles: Vec<JobHandle> = (0..jobs)
        .map(|i| {
            let handle = service.submit(spec(pool[i % pool.len()]));
            if below(&mut rng, 4) == 0 {
                handle.cancel();
            }
            handle
        })
        .collect();
    for handle in &handles {
        let outcome = handle
            .wait_timeout(Duration::from_secs(120))
            .unwrap_or_else(|| {
                panic!(
                    "liveness violated (seed {seed}, round {round}): job {} never terminal",
                    handle.id()
                )
            });
        assert!(outcome.status().is_terminal());
    }
    let stats = service.shutdown();
    for handle in &handles {
        assert!(
            handle.status().is_terminal(),
            "drain violated (seed {seed}, round {round}): job {} non-terminal after shutdown",
            handle.id()
        );
    }
    assert_eq!(
        stats.submitted, jobs as u64,
        "accounting violated (seed {seed}, round {round}): submissions"
    );
    assert_eq!(
        stats.submitted,
        stats.completed + stats.cancelled + stats.failed + stats.panicked + stats.shed,
        "accounting violated (seed {seed}, round {round}): {stats:?}"
    );
    if let Some(dir) = cache_dir {
        std::fs::remove_dir_all(&dir).ok();
    }
    RoundReport {
        stats,
        faults_fired: faults.fired_total(),
        elapsed: start.elapsed(),
    }
}

/// The heal invariant: a service whose every disk write was corrupted
/// leaves a cache a fresh service reads as misses, reruns, and repairs
/// durably.
fn heal_round(seed: u64) {
    let dir = temp_dir(seed ^ 0x4ea1_0000_0000_0000);
    std::fs::remove_dir_all(&dir).ok();
    let faults = Arc::new(FaultRegistry::new());
    faults.configure(
        site::DISK_WRITE,
        FaultPolicy {
            trigger: Trigger::Always,
            action: FaultAction::Corrupt,
        },
    );
    let service = Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_cache_dir(&dir)
            .with_faults(faults),
    );
    assert!(service.submit(spec("csa:3")).wait().summary().is_some());
    service.shutdown();

    let service = Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_cache_dir(&dir),
    );
    let outcome = service.submit(spec("csa:3")).wait();
    assert!(
        !outcome.from_cache,
        "heal violated (seed {seed}): corrupt entry served as a hit"
    );
    assert!(outcome.summary().is_some());
    service.shutdown();

    let service = Service::new(
        ServiceConfig::default()
            .with_workers(1)
            .with_cache_dir(&dir),
    );
    assert!(
        service.submit(spec("csa:3")).wait().from_cache,
        "heal violated (seed {seed}): rewritten entry not served as a hit"
    );
    service.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

fn main() {
    let seed = boole_bench::arg_usize("--seed", 1) as u64;
    let smoke = boole_bench::arg_flag("--smoke");
    let default_rounds = if smoke { 2 } else { 8 };
    let rounds = boole_bench::arg_usize("--rounds", default_rounds) as u64;
    let jobs = if smoke { 4 } else { 8 };
    let as_json = boole_bench::arg_flag("--json");

    if !as_json {
        println!("== chaosbench — seed {seed}, {rounds} rounds x {jobs} jobs ==");
        println!(
            "{:>7} {:>6} {:>10} {:>10} {:>8} {:>6} {:>8} {:>8} {:>10}",
            "round",
            "fired",
            "completed",
            "cancelled",
            "failed",
            "shed",
            "panicked",
            "retried",
            "time(s)"
        );
    }
    let mut rows: Vec<Json> = Vec::new();
    let mut totals = (0u64, 0u64);
    for round in 0..rounds {
        let report = chaos_round(seed, round, jobs);
        let s = &report.stats;
        totals.0 += s.submitted;
        totals.1 += report.faults_fired;
        if as_json {
            rows.push(Json::obj([
                ("round", Json::from(round as usize)),
                ("faults_fired", Json::from(report.faults_fired as usize)),
                ("elapsed_ms", Json::duration_ms(report.elapsed)),
                ("service", s.to_json()),
            ]));
        } else {
            println!(
                "{round:>7} {:>6} {:>10} {:>10} {:>8} {:>6} {:>8} {:>8} {:>9.2}s",
                report.faults_fired,
                s.completed,
                s.cancelled,
                s.failed,
                s.shed,
                s.panicked,
                s.retried,
                report.elapsed.as_secs_f64(),
            );
        }
    }
    heal_round(seed);
    if as_json {
        println!(
            "{}",
            Json::obj([
                ("experiment", Json::str("chaosbench")),
                ("seed", Json::from(seed as usize)),
                ("rounds", Json::from(rounds as usize)),
                ("jobs_per_round", Json::from(jobs)),
                ("jobs_total", Json::from(totals.0 as usize)),
                ("faults_fired_total", Json::from(totals.1 as usize)),
                ("heal_round", Json::str("ok")),
                ("invariants", Json::str("ok")),
                ("rows", Json::arr(rows)),
            ])
            .pretty()
        );
    } else {
        println!(
            "all invariants held: {} jobs terminal, {} faults fired, disk heal ok",
            totals.0, totals.1
        );
    }
}
