//! `jsonlint` — strict NDJSON gate for CI.
//!
//! Reads stdin line by line and runs every non-empty line through the
//! repo's own strict parser (`boole::json::Json::parse`). Exits
//! non-zero naming the first offending line. Used by the CI
//! `events-smoke` step to prove that a `--events - --metrics -
//! --compact` run keeps stdout fully line-parseable: telemetry events,
//! the metrics snapshot, and the result document alike.

use std::io::BufRead;

fn main() -> std::process::ExitCode {
    let stdin = std::io::stdin();
    let mut lines = 0u64;
    for (index, line) in stdin.lock().lines().enumerate() {
        let line = line.expect("read stdin");
        if line.is_empty() {
            continue;
        }
        if let Err(e) = boole::json::Json::parse(&line) {
            eprintln!("line {} is not strict JSON: {e:?}\n{line}", index + 1);
            return std::process::ExitCode::FAILURE;
        }
        lines += 1;
    }
    eprintln!("jsonlint: {lines} strict JSON lines");
    std::process::ExitCode::SUCCESS
}
