//! Regenerates **RQ1** (Section V-A): pre-mapping FA identification —
//! both ABC-style cut enumeration and BoolE must reach the theoretical
//! upper bound, demonstrating that ruleset `R2` alone dominates
//! pre-mapping reasoning.
//!
//! ```text
//! cargo run --release -p boole-bench --bin rq1 -- [--max-bits 16] [--step 4]
//! ```

use boole::{BoolE, BooleParams};
use boole_bench::{abc_counts, prepare, Family, Prep};

fn main() {
    let max_bits = boole_bench::arg_usize("--max-bits", 16);
    let step = boole_bench::arg_usize("--step", 4);

    println!("== RQ1 — pre-mapping FA identification ==");
    println!(
        "{:>7} {:>5} {:>11} {:>9} {:>11} {:>8}",
        "family", "bits", "UpperBound", "NPN-ABC", "Exact-BoolE", "optimal"
    );
    for family in [Family::Csa, Family::Booth] {
        let mut n = 4;
        while n <= max_bits {
            if family == Family::Booth && n % 2 != 0 {
                n += step;
                continue;
            }
            let pre = prepare(family, n, Prep::None);
            let upper = abc_counts(&pre).npn;
            let result = BoolE::new(BooleParams::default()).run(&pre);
            let optimal = result.exact_fa_count() >= upper;
            println!(
                "{:>7} {n:>5} {upper:>11} {:>9} {:>11} {:>8}",
                family.name(),
                upper,
                result.exact_fa_count(),
                if optimal { "yes" } else { "NO" }
            );
            n += step;
        }
    }
}
