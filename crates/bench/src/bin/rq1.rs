//! Regenerates **RQ1** (Section V-A): pre-mapping FA identification —
//! both ABC-style cut enumeration and BoolE must reach the theoretical
//! upper bound, demonstrating that ruleset `R2` alone dominates
//! pre-mapping reasoning.
//!
//! ```text
//! cargo run --release -p boole-bench --bin rq1 -- [--max-bits 16] [--step 4] [--json]
//! ```
//!
//! With `--json`, a machine-readable document (one object per row plus
//! the full per-run statistics) is printed to stdout instead of the
//! table.

use boole::json::{Json, ToJson};
use boole::{BoolE, BooleParams};
use boole_bench::{abc_counts, prepare, Family, Prep};

fn main() {
    let max_bits = boole_bench::arg_usize("--max-bits", 16);
    let step = boole_bench::arg_usize("--step", 4);
    let as_json = boole_bench::arg_flag("--json");

    if !as_json {
        println!("== RQ1 — pre-mapping FA identification ==");
        println!(
            "{:>7} {:>5} {:>11} {:>9} {:>11} {:>8}",
            "family", "bits", "UpperBound", "NPN-ABC", "Exact-BoolE", "optimal"
        );
    }
    let mut rows: Vec<Json> = Vec::new();
    for family in [Family::Csa, Family::Booth] {
        let mut n = 4;
        while n <= max_bits {
            if family == Family::Booth && n % 2 != 0 {
                n += step;
                continue;
            }
            let pre = prepare(family, n, Prep::None);
            let upper = abc_counts(&pre).npn;
            let result = BoolE::new(BooleParams::default()).run(&pre);
            let optimal = result.exact_fa_count() >= upper;
            if as_json {
                rows.push(Json::obj([
                    ("family", Json::str(family.name())),
                    ("bits", Json::from(n)),
                    ("upper_bound", Json::from(upper)),
                    ("exact_fa_count", Json::from(result.exact_fa_count())),
                    ("optimal", Json::from(optimal)),
                    ("saturation", result.saturation.to_json()),
                    ("pairing", result.pairing.to_json()),
                    ("runtime_ms", Json::duration_ms(result.runtime)),
                ]));
            } else {
                println!(
                    "{:>7} {n:>5} {upper:>11} {:>9} {:>11} {:>8}",
                    family.name(),
                    upper,
                    result.exact_fa_count(),
                    if optimal { "yes" } else { "NO" }
                );
            }
            n += step;
        }
    }
    if as_json {
        println!(
            "{}",
            Json::obj([("experiment", Json::str("rq1")), ("rows", Json::arr(rows))]).pretty()
        );
    }
}
