//! Parallel-search determinism: BoolE saturation at any
//! `search_threads` value must be byte-identical to the serial oracle.
//!
//! The runner's parallel path only fans the *search* phase out —
//! workers run the compiled VM over disjoint rule chunks against the
//! shared immutable e-graph, and match sets are merged in rule-index
//! order before the apply phase — so everything downstream (iteration
//! counts, stop reasons, final e-graph, extraction, reconstruction)
//! must be indistinguishable from a one-thread run. These tests pin
//! that contract across generator families, bit widths, and the
//! technology-mapping round trip.

use std::time::{Duration, Instant};

use boole::convert::aig_to_egraph;
use boole::{saturate, BoolE, BooleParams, CancelToken, SaturateParams, SaturationStats, ToJson};
use proptest::prelude::*;

fn netlist(family: usize, bits: usize, mapped: bool) -> aig::Aig {
    let aig = match family {
        0 => aig::gen::csa_multiplier(bits),
        // Booth recoding needs an even width; round up instead of
        // shrinking the strategy's range.
        1 => aig::gen::booth_multiplier(bits + (bits & 1)),
        _ => aig::gen::wallace_multiplier(bits),
    };
    if mapped {
        aig::map::map_round_trip(&aig)
    } else {
        aig
    }
}

/// Tight-but-real saturation budget: small enough to keep the proptest
/// cases fast, large enough that both phases run several iterations
/// and the backoff scheduler actually bans rules (ban bookkeeping is
/// the part of the schedule most likely to diverge under reordering).
fn params(threads: usize) -> SaturateParams {
    SaturateParams {
        node_limit: 6_000,
        ..SaturateParams::small()
    }
    .without_time_limit()
    .with_search_threads(threads)
}

/// The struct-only fields the canonical JSON deliberately omits,
/// normalized to be machine-independent (no wall-clock durations).
fn struct_outcome(stats: &SaturationStats) -> Vec<(String, usize, usize)> {
    stats
        .rules
        .iter()
        .map(|r| (r.name.clone(), r.matches, r.applications))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn saturation_is_identical_at_any_thread_count(
        family in 0usize..3,
        bits in 3usize..5,
        mapped: bool,
        extra_threads in 3usize..8,
    ) {
        let aig = netlist(family, bits, mapped);
        let run = |threads: usize| {
            let net = aig_to_egraph::<()>(&aig);
            saturate(net, &params(threads))
        };
        let (serial_net, serial) = run(1);
        let serial_json = serial.to_json().to_string();
        let serial_nodes = serial_net.egraph.total_number_of_nodes();
        for threads in [2, extra_threads] {
            let (net, stats) = run(threads);
            // The canonical JSON document — what job results, the
            // cache, and the disk store are built from — must be
            // byte-identical to the serial oracle's.
            prop_assert_eq!(
                stats.to_json().to_string(),
                serial_json.clone(),
                "canonical stats diverged at {} threads",
                threads
            );
            // And so must the fields the canonical JSON omits: the
            // final e-graph and the per-rule match/application ledger.
            prop_assert_eq!(net.egraph.total_number_of_nodes(), serial_nodes);
            prop_assert_eq!(
                struct_outcome(&stats),
                struct_outcome(&serial),
                "per-rule accounting diverged at {} threads",
                threads
            );
        }
    }

    #[test]
    fn full_pipeline_output_is_identical_at_any_thread_count(
        family in 0usize..3,
        threads in 2usize..6,
    ) {
        // End to end: extraction and reconstruction consume the final
        // e-graph, so comparing the reconstructed netlist text catches
        // any divergence the stats summary could mask.
        let aig = netlist(family, 3, false);
        let run = |threads: usize| {
            let params = BooleParams {
                saturate: params(threads),
            };
            BoolE::new(params).run(&aig)
        };
        let serial = run(1);
        let parallel = run(threads);
        prop_assert_eq!(
            aig::aiger::to_aag(&parallel.reconstructed),
            aig::aiger::to_aag(&serial.reconstructed)
        );
        prop_assert_eq!(&parallel.fas, &serial.fas);
        prop_assert_eq!(&parallel.original_fas, &serial.original_fas);
        prop_assert_eq!(
            parallel.pairing.to_json().to_string(),
            serial.pairing.to_json().to_string()
        );
    }
}

#[test]
fn parallel_saturation_cancels_mid_search() {
    // A budget that would otherwise run for a very long time: the only
    // way this test finishes promptly is the cancel token reaching the
    // search workers. Fired from another thread while saturation is in
    // flight, so the trip lands mid-search, not at a phase boundary.
    let token = CancelToken::new();
    let params = SaturateParams {
        node_limit: 10_000_000,
        r1_iters: 10_000,
        r2_iters: 10_000,
        cancel: token.clone(),
        ..SaturateParams::default()
    }
    .without_time_limit()
    .with_search_threads(4);

    let killer = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.cancel();
        })
    };
    let net = aig_to_egraph::<()>(&aig::gen::csa_multiplier(6));
    let start = Instant::now();
    let (_, stats) = saturate(net, &params);
    let elapsed = start.elapsed();
    killer.join().unwrap();

    assert!(
        stats.was_cancelled(),
        "stops: {:?} / {:?}",
        stats.r1_stop,
        stats.r2_stop
    );
    // Generous bound: cancellation must beat the hours-scale budget by
    // orders of magnitude even on a slow, loaded machine.
    assert!(
        elapsed < Duration::from_secs(60),
        "cancellation took {elapsed:?}"
    );
}
