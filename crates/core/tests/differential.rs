//! Differential tests of the compiled e-matching VM on BoolE's own
//! workload: for every rule pattern in `R1` and `R2` (197 left-hand
//! sides plus their right-hand sides), the VM must find exactly the
//! same match sets on real netlist e-graphs as the legacy recursive
//! matcher (`Pattern::search_oracle`, enabled via the egraph crate's
//! `oracle` feature).

use boole::convert::aig_to_egraph;
use boole::{rules, saturate, BoolLang, SaturateParams};
use egraph::{
    make_backend, CancelToken, EGraph, Id, Pattern, RuleDirective, RuleSetProgram,
    SearchBackendKind, SearchMatches, Subst,
};

/// The benchmark netlists the patterns are matched against: a lone
/// full adder, a ripple-carry stage, and a small CSA multiplier —
/// covering the structural shapes the identification rules target.
fn test_egraphs() -> Vec<EGraph<BoolLang>> {
    let mut netlists = Vec::new();
    {
        let mut a = aig::Aig::new();
        let x = a.add_input();
        let y = a.add_input();
        let z = a.add_input();
        let (s, c) = aig::gen::full_adder(&mut a, x, y, z);
        a.add_output("s", s);
        a.add_output("c", c);
        netlists.push(a);
    }
    netlists.push(aig::gen::csa_multiplier(3));

    netlists
        .into_iter()
        .map(|aig| {
            // A short saturation run unions in enough equivalent
            // shapes to make the classes interesting (multiple nodes
            // per class, merged children) without growing past the
            // matcher's deterministic caps — truncated match sets are
            // not comparable across enumeration orders.
            let net = aig_to_egraph::<()>(&aig);
            let params = SaturateParams {
                r1_iters: 3,
                r2_iters: 2,
                node_limit: 4_000,
                prune: false,
                ..SaturateParams::small()
            }
            .without_time_limit();
            let (net, _) = saturate(net, &params);
            net.egraph
        })
        .collect()
}

fn flatten(matches: Vec<SearchMatches>) -> Vec<(Id, Vec<Subst>)> {
    let mut v: Vec<_> = matches.into_iter().map(|m| (m.eclass, m.substs)).collect();
    v.sort_unstable_by_key(|(id, _)| *id);
    v
}

fn all_rule_patterns() -> Vec<(String, String)> {
    let mut specs = rules::r1_table();
    specs.extend(rules::maj_table());
    specs.extend(rules::xor_table());
    // Both sides of every rule are legitimate search patterns (the
    // rhs shapes also occur as lhs of other rules' inverses).
    specs
        .into_iter()
        .flat_map(|(name, lhs, rhs)| [(format!("{name}:lhs"), lhs), (format!("{name}:rhs"), rhs)])
        .collect()
}

#[test]
fn vm_matches_oracle_on_every_boole_rule_pattern() {
    let egraphs = test_egraphs();
    let patterns = all_rule_patterns();
    assert!(patterns.len() >= 2 * 197, "expected all 197 rules");
    for (i, eg) in egraphs.iter().enumerate() {
        for (name, src) in &patterns {
            let p: Pattern<BoolLang> = src
                .parse()
                .unwrap_or_else(|e| panic!("pattern {name} ({src}) must parse: {e}"));
            let vm = flatten(p.search(eg));
            let oracle = flatten(p.search_oracle(eg));
            assert_eq!(
                vm, oracle,
                "match sets diverged for rule pattern {name} ({src}) on e-graph #{i}"
            );
        }
    }
}

#[test]
fn shared_trie_matches_vm_and_oracle_on_full_ruleset() {
    // The tentpole guarantee: compiling *every* BoolE rule LHS into
    // one shared-prefix trie and searching the whole ruleset in a
    // single pass demultiplexes exactly the per-rule match sets the
    // single-pattern VM and the recursive oracle find — serial and
    // threaded alike.
    let egraphs = test_egraphs();
    let rules: Vec<egraph::Rewrite<BoolLang, ()>> = rules::r1_rules()
        .into_iter()
        .chain(rules::r2_rules())
        .collect();
    assert!(rules.len() >= 197, "expected all 197 rules");
    let patterns: Vec<&Pattern<BoolLang>> = rules.iter().map(|r| r.searcher()).collect();
    let program = RuleSetProgram::compile(&patterns);
    let directives = vec![RuleDirective::Limit(usize::MAX); patterns.len()];
    for (i, eg) in egraphs.iter().enumerate() {
        for threads in [1usize, 2] {
            let slots = program.search(eg, &directives, &CancelToken::new(), None, threads);
            assert_eq!(slots.len(), rules.len());
            for (rule, slot) in rules.iter().zip(slots) {
                let (matches, _) = slot.expect("no skip without cancel/deadline");
                let shared = flatten(matches);
                let solo = flatten(rule.searcher().search(eg));
                let oracle = flatten(rule.searcher().search_oracle(eg));
                assert_eq!(
                    shared,
                    solo,
                    "shared trie vs per-pattern VM diverged for rule {} on e-graph #{i} at {threads} threads",
                    rule.name()
                );
                assert_eq!(
                    shared,
                    oracle,
                    "shared trie vs oracle diverged for rule {} on e-graph #{i}",
                    rule.name()
                );
            }
        }
    }
}

#[test]
fn all_backends_match_on_full_ruleset() {
    // The four-way differential: every pluggable search backend —
    // per-pattern VM, shared trie, relational generic join, and the
    // recursive oracle — demultiplexes exactly the same per-rule
    // match sets across all 197 R1/R2 rules on real netlist e-graphs,
    // serial and threaded alike. The per-pattern VM is the reference.
    let egraphs = test_egraphs();
    let rules: Vec<egraph::Rewrite<BoolLang, ()>> = rules::r1_rules()
        .into_iter()
        .chain(rules::r2_rules())
        .collect();
    assert!(rules.len() >= 197, "expected all 197 rules");
    let patterns: Vec<&Pattern<BoolLang>> = rules.iter().map(|r| r.searcher()).collect();
    let directives = vec![RuleDirective::Limit(usize::MAX); patterns.len()];
    let kinds = [
        SearchBackendKind::PerPatternVm,
        SearchBackendKind::SharedTrie,
        SearchBackendKind::Relational,
        SearchBackendKind::Oracle,
    ];
    for (i, eg) in egraphs.iter().enumerate() {
        let reference: Vec<_> = rules
            .iter()
            .map(|r| flatten(r.searcher().search(eg)))
            .collect();
        for kind in kinds {
            let mut backend = make_backend::<BoolLang, ()>(kind, patterns.clone());
            for threads in [1usize, 2, 4] {
                let result = backend.search(eg, &directives, &CancelToken::new(), None, threads);
                assert_eq!(result.slots.len(), rules.len());
                for ((rule, expected), slot) in rules.iter().zip(&reference).zip(result.slots) {
                    let (matches, _) = slot.expect("no skip without cancel/deadline");
                    assert_eq!(
                        &flatten(matches),
                        expected,
                        "{kind} vs per-pattern VM diverged for rule {} on e-graph #{i} at {threads} threads",
                        rule.name()
                    );
                }
            }
        }
    }
}

#[test]
fn vm_matches_oracle_through_rewrite_search() {
    // The `Rewrite::search` entry point (what the saturation runner
    // uses, modulo scheduling limits) agrees with the oracle as well.
    let egraphs = test_egraphs();
    let rules: Vec<egraph::Rewrite<BoolLang, ()>> = rules::r1_rules();
    for eg in &egraphs {
        for rule in &rules {
            let vm = flatten(rule.search(eg));
            let oracle = flatten(rule.searcher().search_oracle(eg));
            assert_eq!(vm, oracle, "rule {} diverged", rule.name());
        }
    }
}
