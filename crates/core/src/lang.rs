//! [`BoolLang`]: the Boolean term language BoolE saturates over.

use std::fmt;

use egraph::{FromOp, FromOpError, Id, Language, Symbol};

/// The Boolean operators of BoolE's e-graph.
///
/// Besides the plain gate algebra (`&`, `|`, `!`, `^`), the language has
/// first-class 3-input XOR (`^3`) and majority (`maj`) operators that
/// the identification ruleset `R2` rewrites into, plus the multi-output
/// full-adder machinery of Section IV-B: `fa` produces a (carry, sum)
/// tuple, and the pseudo-operations `fst`/`snd` project the carry and
/// sum out of it.
///
/// ```
/// use boole::BoolLang;
/// use egraph::RecExpr;
/// let e: RecExpr<BoolLang> = "(maj a b (! c))".parse().unwrap();
/// assert_eq!(e.to_string(), "(maj a b (! c))");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoolLang {
    /// Constant false/true.
    Const(bool),
    /// A named input signal.
    Var(Symbol),
    /// Negation.
    Not(Id),
    /// 2-input AND.
    And([Id; 2]),
    /// 2-input OR.
    Or([Id; 2]),
    /// 2-input XOR.
    Xor([Id; 2]),
    /// 3-input XOR (a full-adder sum).
    Xor3([Id; 3]),
    /// 3-input majority (a full-adder carry).
    Maj([Id; 3]),
    /// A full adder over three inputs, producing a (carry, sum) tuple.
    Fa([Id; 3]),
    /// Projects the carry out of an [`BoolLang::Fa`] tuple.
    Fst(Id),
    /// Projects the sum out of an [`BoolLang::Fa`] tuple.
    Snd(Id),
}

/// The operator tag of a [`BoolLang`] node (its
/// [`Language::Discriminant`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolOp {
    /// `false` / `true`.
    Const(bool),
    /// A named input.
    Var(Symbol),
    /// `!`
    Not,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `^3`
    Xor3,
    /// `maj`
    Maj,
    /// `fa`
    Fa,
    /// `fst`
    Fst,
    /// `snd`
    Snd,
}

impl BoolLang {
    /// Convenience constructor for a named variable.
    pub fn var(name: impl Into<Symbol>) -> Self {
        BoolLang::Var(name.into())
    }

    /// Returns `true` for the symmetric operators whose operand order
    /// is semantically irrelevant (used by redundancy pruning).
    pub fn is_symmetric(&self) -> bool {
        matches!(
            self,
            BoolLang::And(_)
                | BoolLang::Or(_)
                | BoolLang::Xor(_)
                | BoolLang::Xor3(_)
                | BoolLang::Maj(_)
                | BoolLang::Fa(_)
        )
    }
}

impl Language for BoolLang {
    type Discriminant = BoolOp;

    fn discriminant(&self) -> BoolOp {
        match self {
            BoolLang::Const(b) => BoolOp::Const(*b),
            BoolLang::Var(s) => BoolOp::Var(*s),
            BoolLang::Not(_) => BoolOp::Not,
            BoolLang::And(_) => BoolOp::And,
            BoolLang::Or(_) => BoolOp::Or,
            BoolLang::Xor(_) => BoolOp::Xor,
            BoolLang::Xor3(_) => BoolOp::Xor3,
            BoolLang::Maj(_) => BoolOp::Maj,
            BoolLang::Fa(_) => BoolOp::Fa,
            BoolLang::Fst(_) => BoolOp::Fst,
            BoolLang::Snd(_) => BoolOp::Snd,
        }
    }

    fn children(&self) -> &[Id] {
        match self {
            BoolLang::Const(_) | BoolLang::Var(_) => &[],
            BoolLang::Not(c) | BoolLang::Fst(c) | BoolLang::Snd(c) => std::slice::from_ref(c),
            BoolLang::And(c) | BoolLang::Or(c) | BoolLang::Xor(c) => c,
            BoolLang::Xor3(c) | BoolLang::Maj(c) | BoolLang::Fa(c) => c,
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            BoolLang::Const(_) | BoolLang::Var(_) => &mut [],
            BoolLang::Not(c) | BoolLang::Fst(c) | BoolLang::Snd(c) => std::slice::from_mut(c),
            BoolLang::And(c) | BoolLang::Or(c) | BoolLang::Xor(c) => c,
            BoolLang::Xor3(c) | BoolLang::Maj(c) | BoolLang::Fa(c) => c,
        }
    }
}

impl fmt::Display for BoolLang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolLang::Const(b) => write!(f, "{b}"),
            BoolLang::Var(s) => write!(f, "{s}"),
            BoolLang::Not(_) => write!(f, "!"),
            BoolLang::And(_) => write!(f, "&"),
            BoolLang::Or(_) => write!(f, "|"),
            BoolLang::Xor(_) => write!(f, "^"),
            BoolLang::Xor3(_) => write!(f, "^3"),
            BoolLang::Maj(_) => write!(f, "maj"),
            BoolLang::Fa(_) => write!(f, "fa"),
            BoolLang::Fst(_) => write!(f, "fst"),
            BoolLang::Snd(_) => write!(f, "snd"),
        }
    }
}

impl FromOp for BoolLang {
    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, FromOpError> {
        let arity = children.len();
        let c1 = |c: &[Id]| c[0];
        let c2 = |c: &[Id]| [c[0], c[1]];
        let c3 = |c: &[Id]| [c[0], c[1], c[2]];
        match (op, arity) {
            ("true", 0) => Ok(BoolLang::Const(true)),
            ("false", 0) => Ok(BoolLang::Const(false)),
            ("!", 1) => Ok(BoolLang::Not(c1(&children))),
            ("&", 2) => Ok(BoolLang::And(c2(&children))),
            ("|", 2) => Ok(BoolLang::Or(c2(&children))),
            ("^", 2) => Ok(BoolLang::Xor(c2(&children))),
            ("^3", 3) => Ok(BoolLang::Xor3(c3(&children))),
            ("maj", 3) => Ok(BoolLang::Maj(c3(&children))),
            ("fa", 3) => Ok(BoolLang::Fa(c3(&children))),
            ("fst", 1) => Ok(BoolLang::Fst(c1(&children))),
            ("snd", 1) => Ok(BoolLang::Snd(c1(&children))),
            (name, 0)
                if !name.is_empty()
                    && !name.starts_with('?')
                    && name.chars().all(|c| c.is_alphanumeric() || c == '_') =>
            {
                Ok(BoolLang::var(name))
            }
            _ => Err(FromOpError::new(op, arity)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph::RecExpr;

    #[test]
    fn parse_roundtrip() {
        for s in [
            "(& a b)",
            "(| (! a) (^ b c))",
            "(^3 a b c)",
            "(maj a b c)",
            "(snd (fa a b c))",
            "true",
            "(& x0 false)",
        ] {
            let e: RecExpr<BoolLang> = s.parse().unwrap();
            assert_eq!(e.to_string(), s);
        }
    }

    #[test]
    fn rejects_bad_arity() {
        assert!("(& a)".parse::<RecExpr<BoolLang>>().is_err());
        assert!("(! a b)".parse::<RecExpr<BoolLang>>().is_err());
        assert!("(maj a b)".parse::<RecExpr<BoolLang>>().is_err());
    }

    #[test]
    fn symmetric_classification() {
        let e: RecExpr<BoolLang> = "(maj a b c)".parse().unwrap();
        assert!(e.as_slice().last().unwrap().is_symmetric());
        let e: RecExpr<BoolLang> = "(! a)".parse().unwrap();
        assert!(!e.as_slice().last().unwrap().is_symmetric());
    }
}
