//! A hand-rolled JSON round-trip layer (no serde) for machine-readable
//! output and the service's persistent result store.
//!
//! The workspace is dependency-free by design, so results are
//! serialized through a tiny document model: build a [`Json`] value,
//! then render it with its `Display` impl (compact) or
//! [`Json::pretty`] (indented). Object keys keep insertion order, so
//! output is byte-stable across runs — the service's batch mode relies
//! on that to compare concurrent and serial results.
//!
//! The inverse direction is [`Json::parse`] (a recursive-descent
//! parser over the same grammar the writer emits) plus the [`FromJson`]
//! trait, which rebuilds result types from parsed documents. Canonical
//! documents round-trip exactly: `Json::parse(&doc.to_string())`
//! returns `doc` for every document the writer produces that contains
//! no non-integral finite floats (the only lossy corner: `Float(2.0)`
//! prints as `2`, which re-parses as `Int(2)`; canonical result
//! documents contain no such floats).

use std::fmt::Write as _;
use std::time::Duration;

use egraph::StopReason;

use crate::pair::PairStats;
use crate::pipeline::BooleResult;
use crate::saturate::SaturationStats;

/// A JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A duration, serialized as fractional milliseconds.
    pub fn duration_ms(d: Duration) -> Json {
        Json::Float(d.as_secs_f64() * 1e3)
    }

    /// Renders indented JSON (two spaces per level).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` on f64 prints the shortest round-trip form
                    // but omits a decimal point for integral values;
                    // that is still valid JSON.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, level, '{', '}', pairs.len(), |out, i| {
                let (k, v) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, level + 1);
            }),
        }
    }
}

/// An error from [`Json::parse`] or a [`FromJson`] conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description; parse errors include a byte offset.
    pub message: String,
}

impl JsonError {
    /// Builds an error from any displayable message.
    pub fn new(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JsonError {}

/// Accessors used by [`FromJson`] implementations. All return `None`
/// on a variant mismatch; the `expect_*` variants wrap that in a
/// [`JsonError`] naming the field for store-corruption diagnostics.
impl Json {
    /// Parses a JSON document. The whole input must be one value
    /// (trailing non-whitespace is an error). Nesting is limited to
    /// [`Json::MAX_PARSE_DEPTH`] levels so hostile inputs fail with an
    /// error instead of exhausting the stack.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing content after document"));
        }
        Ok(value)
    }

    /// Maximum nesting depth [`Json::parse`] accepts.
    pub const MAX_PARSE_DEPTH: usize = 128;

    /// Looks up `key` in an object; `None` on other variants.
    pub fn field(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative `usize`, if this is an `Int` in
    /// range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_int().and_then(|n| usize::try_from(n).ok())
    }

    /// The numeric value, if this is an `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean value, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an `Arr`.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// [`Json::field`] with a descriptive error on absence.
    pub fn expect_field(&self, key: &str) -> Result<&Json, JsonError> {
        self.field(key)
            .ok_or_else(|| JsonError::new(format!("missing object field {key:?}")))
    }

    /// [`Json::as_usize`] with a descriptive error, for field `name`.
    pub fn expect_usize(&self, name: &str) -> Result<usize, JsonError> {
        self.as_usize()
            .ok_or_else(|| JsonError::new(format!("field {name:?} is not a non-negative integer")))
    }
}

/// Checks that `json` is an object holding exactly the keys in
/// `expected` (any order, no duplicates, no extras) and returns the
/// values in `expected` order. [`FromJson`] impls use this to reject
/// stale or corrupt store documents instead of filling defaults.
pub fn expect_exact_fields<'a, const N: usize>(
    json: &'a Json,
    expected: [&str; N],
) -> Result<[&'a Json; N], JsonError> {
    let Json::Obj(pairs) = json else {
        return Err(JsonError::new("expected a JSON object"));
    };
    for (key, _) in pairs {
        if !expected.contains(&key.as_str()) {
            return Err(JsonError::new(format!("unexpected object field {key:?}")));
        }
    }
    let mut values = [json; N];
    for (slot, key) in values.iter_mut().zip(expected) {
        let mut found = pairs.iter().filter(|(k, _)| k == key);
        *slot = found
            .next()
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError::new(format!("missing object field {key:?}")))?;
        if found.next().is_some() {
            return Err(JsonError::new(format!("duplicate object field {key:?}")));
        }
    }
    Ok(values)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", char::from(expected))))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > Json::MAX_PARSE_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uDC00–\uDFFF escape
                                // must follow to complete the pair.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let scalar = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("lone low surrogate"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x20 => {
                    return Err(self.error("unescaped control character"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a &str, so
                    // slicing at the next char boundary cannot fail.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).expect("input was a &str");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.bytes.get(self.pos) {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("expected four hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let int_digits = self.digit_run();
        if int_digits == 0 {
            return Err(self.error("expected a digit"));
        }
        // JSON forbids leading zeros ("01"); a single "0" is fine.
        if int_digits > 1 && self.bytes[self.pos - int_digits] == b'0' {
            return Err(self.error("leading zero in number"));
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            if self.digit_run() == 0 {
                return Err(self.error("expected a digit after '.'"));
            }
        }
        if let Some(b'e' | b'E') = self.bytes.get(self.pos) {
            is_float = true;
            self.pos += 1;
            if let Some(b'+' | b'-') = self.bytes.get(self.pos) {
                self.pos += 1;
            }
            if self.digit_run() == 0 {
                return Err(self.error("expected a digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
            // Integral but outside i64: fall through to f64.
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("malformed number"))
    }

    fn digit_run(&mut self) -> usize {
        let start = self.pos;
        while let Some(b'0'..=b'9') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
        self.pos - start
    }
}

/// Compact rendering (no whitespace); use [`Json::pretty`] for
/// indented output.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (level + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(i64::from(n))
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Types with a canonical JSON representation.
pub trait ToJson {
    /// Converts to a [`Json`] document.
    fn to_json(&self) -> Json;
}

/// Types reconstructible from their canonical JSON representation.
///
/// Implementations are strict: a document with missing, duplicate,
/// extra, or mistyped fields is rejected, so the service's persistent
/// store treats any format drift as a cache miss instead of loading a
/// half-right result. For every value `v` whose canonical document
/// omits wall-clock fields, `from_json(&v.to_json())` re-serializes
/// byte-identically to `v.to_json()`.
pub trait FromJson: Sized {
    /// Rebuilds a value from a [`Json`] document.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl FromJson for StopReason {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json {
            Json::Str(s) if s == "saturated" => Ok(StopReason::Saturated),
            Json::Str(s) if s == "cancelled" => Ok(StopReason::Cancelled),
            Json::Obj(pairs) if pairs.len() == 1 => {
                let (key, value) = &pairs[0];
                match key.as_str() {
                    "iter_limit" => Ok(StopReason::IterLimit(value.expect_usize("iter_limit")?)),
                    "node_limit" => Ok(StopReason::NodeLimit(value.expect_usize("node_limit")?)),
                    "time_limit_ms" => {
                        let ms = value.as_f64().ok_or_else(|| {
                            JsonError::new("field \"time_limit_ms\" is not a duration")
                        })?;
                        // try_: a negative, non-finite, or
                        // Duration-overflowing value in a corrupt store
                        // record must be a conversion error (= cache
                        // miss), never a panic.
                        Duration::try_from_secs_f64(ms / 1e3)
                            .map(StopReason::TimeLimit)
                            .map_err(|_| JsonError::new("field \"time_limit_ms\" is out of range"))
                    }
                    other => Err(JsonError::new(format!("unknown stop reason {other:?}"))),
                }
            }
            _ => Err(JsonError::new("malformed stop reason")),
        }
    }
}

impl FromJson for SaturationStats {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let [nodes_after_r1, nodes_after_r2, classes, r1_stop, r2_stop, r1_iterations, r2_iterations, pruned, total_matches, cancelled] =
            expect_exact_fields(
                json,
                [
                    "nodes_after_r1",
                    "nodes_after_r2",
                    "classes",
                    "r1_stop",
                    "r2_stop",
                    "r1_iterations",
                    "r2_iterations",
                    "pruned",
                    "total_matches",
                    "cancelled",
                ],
            )?;
        let stats = SaturationStats {
            nodes_after_r1: nodes_after_r1.expect_usize("nodes_after_r1")?,
            nodes_after_r2: nodes_after_r2.expect_usize("nodes_after_r2")?,
            classes: classes.expect_usize("classes")?,
            r1_stop: StopReason::from_json(r1_stop)?,
            r2_stop: StopReason::from_json(r2_stop)?,
            r1_iterations: r1_iterations.expect_usize("r1_iterations")?,
            r2_iterations: r2_iterations.expect_usize("r2_iterations")?,
            pruned: pruned.expect_usize("pruned")?,
            // Wall-clock phase times are deliberately absent from the
            // canonical document (see `ToJson`); a summary reloaded
            // from the persistent store reports zero phase times.
            search_time: Duration::ZERO,
            merge_time: Duration::ZERO,
            apply_time: Duration::ZERO,
            rebuild_time: Duration::ZERO,
            relation_build_time: Duration::ZERO,
            total_matches: total_matches.expect_usize("total_matches")?,
            // Per-rule profiles are struct-only like the phase times.
            rules: Vec::new(),
        };
        let claimed = cancelled
            .as_bool()
            .ok_or_else(|| JsonError::new("field \"cancelled\" is not a boolean"))?;
        if claimed != stats.was_cancelled() {
            return Err(JsonError::new(
                "field \"cancelled\" contradicts the stop reasons",
            ));
        }
        Ok(stats)
    }
}

impl FromJson for PairStats {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let [fa_inserted, xor3_triples, maj_triples] =
            expect_exact_fields(json, ["fa_inserted", "xor3_triples", "maj_triples"])?;
        Ok(PairStats {
            fa_inserted: fa_inserted.expect_usize("fa_inserted")?,
            xor3_triples: xor3_triples.expect_usize("xor3_triples")?,
            maj_triples: maj_triples.expect_usize("maj_triples")?,
        })
    }
}

fn lit_from_json(json: &Json, name: &str) -> Result<aig::Lit, JsonError> {
    let raw = json
        .as_int()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| JsonError::new(format!("field {name:?} is not a raw literal")))?;
    Ok(aig::Lit(raw))
}

impl FromJson for crate::pipeline::RecoveredFa {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let [inputs, sum, carry] = expect_exact_fields(json, ["inputs", "sum", "carry"])?;
        let items = inputs
            .as_array()
            .filter(|items| items.len() == 3)
            .ok_or_else(|| JsonError::new("field \"inputs\" is not a 3-literal array"))?;
        Ok(crate::pipeline::RecoveredFa {
            inputs: [
                lit_from_json(&items[0], "inputs")?,
                lit_from_json(&items[1], "inputs")?,
                lit_from_json(&items[2], "inputs")?,
            ],
            sum: lit_from_json(sum, "sum")?,
            carry: lit_from_json(carry, "carry")?,
        })
    }
}

impl ToJson for StopReason {
    fn to_json(&self) -> Json {
        match self {
            StopReason::Saturated => Json::str("saturated"),
            StopReason::IterLimit(n) => Json::obj([("iter_limit", Json::from(*n))]),
            StopReason::NodeLimit(n) => Json::obj([("node_limit", Json::from(*n))]),
            StopReason::TimeLimit(d) => Json::obj([("time_limit_ms", Json::duration_ms(*d))]),
            StopReason::Cancelled => Json::str("cancelled"),
        }
    }
}

impl ToJson for SaturationStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("nodes_after_r1", Json::from(self.nodes_after_r1)),
            ("nodes_after_r2", Json::from(self.nodes_after_r2)),
            ("classes", Json::from(self.classes)),
            ("r1_stop", self.r1_stop.to_json()),
            ("r2_stop", self.r2_stop.to_json()),
            ("r1_iterations", Json::from(self.r1_iterations)),
            ("r2_iterations", Json::from(self.r2_iterations)),
            ("pruned", Json::from(self.pruned)),
            // No wall-clock phase times here: job-result JSON must be
            // byte-identical across serial and concurrent runs (see
            // the service CLI tests); `satbench` reads the timing
            // fields straight off the struct instead.
            ("total_matches", Json::from(self.total_matches)),
            ("cancelled", Json::from(self.was_cancelled())),
        ])
    }
}

impl ToJson for PairStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("fa_inserted", Json::from(self.fa_inserted)),
            ("xor3_triples", Json::from(self.xor3_triples)),
            ("maj_triples", Json::from(self.maj_triples)),
        ])
    }
}

impl ToJson for crate::pipeline::RecoveredFa {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "inputs",
                Json::arr(self.inputs.iter().map(|l| Json::from(l.raw()))),
            ),
            ("sum", Json::from(self.sum.raw())),
            ("carry", Json::from(self.carry.raw())),
        ])
    }
}

impl ToJson for BooleResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("exact_fa_count", Json::from(self.exact_fa_count())),
            (
                "reconstructed",
                Json::obj([
                    ("inputs", Json::from(self.reconstructed.num_inputs())),
                    ("outputs", Json::from(self.reconstructed.num_outputs())),
                    ("ands", Json::from(self.reconstructed.num_ands())),
                ]),
            ),
            ("fas", Json::arr(self.fas.iter().map(ToJson::to_json))),
            (
                "original_fas",
                Json::arr(self.original_fas.iter().map(ToJson::to_json)),
            ),
            ("saturation", self.saturation.to_json()),
            ("pairing", self.pairing.to_json()),
            ("runtime_ms", Json::duration_ms(self.runtime)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_deterministic() {
        let doc = Json::obj([
            ("b", Json::from(true)),
            ("a", Json::from(1usize)),
            ("s", Json::str("x\"y\\z\n")),
            ("arr", Json::arr([Json::Null, Json::Float(1.5)])),
            ("empty", Json::obj::<String>([])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"b":true,"a":1,"s":"x\"y\\z\n","arr":[null,1.5],"empty":{}}"#
        );
        // Key order is insertion order, not sorted.
        assert!(doc.to_string().find("\"b\"").unwrap() < doc.to_string().find("\"a\"").unwrap());
    }

    #[test]
    fn pretty_rendering_indents() {
        let doc = Json::obj([("k", Json::arr([Json::Int(1)]))]);
        assert_eq!(doc.pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        let mut s = String::new();
        write_escaped(&mut s, "\u{1}");
        assert_eq!(s, "\"\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parser_accepts_the_grammar() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Float(-2500.0));
        assert_eq!(Json::parse("2E-1").unwrap(), Json::Float(0.2));
        assert_eq!(Json::parse("\"a\"").unwrap(), Json::str("a"));
        assert_eq!(
            Json::parse("[1, [2], {}]").unwrap(),
            Json::arr([
                Json::Int(1),
                Json::arr([Json::Int(2)]),
                Json::obj::<String>([])
            ])
        );
        assert_eq!(
            Json::parse("{ \"a\" : 1 , \"b\" : [ ] }").unwrap(),
            Json::obj([("a", Json::Int(1)), ("b", Json::arr([]))])
        );
        // i64 overflow degrades to a float instead of erroring.
        assert_eq!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(1e20)
        );
    }

    #[test]
    fn parser_decodes_escapes() {
        assert_eq!(
            Json::parse(r#""x\"y\\z\n\r\t\/\b\f""#).unwrap(),
            Json::str("x\"y\\z\n\r\t/\u{8}\u{c}")
        );
        assert_eq!(Json::parse(r#""A""#).unwrap(), Json::str("A"));
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::str("é"));
        // Surrogate pair: U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("\u{1F600}"));
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::str("héllo"));
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in [
            "",
            "tru",
            "nul",
            "01",
            "-",
            "1.",
            ".5",
            "1e",
            "+1",
            "[1,]",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"lone \\ud800 surrogate\"",
            "\"\u{1}\"",
            "1 2",
            "null trailing",
            "[1] []",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail to parse");
        }
        // Deep nesting is an error, not a stack overflow.
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn exact_fields_is_order_insensitive_but_strict() {
        let doc = Json::obj([("b", Json::Int(2)), ("a", Json::Int(1))]);
        let [a, b] = expect_exact_fields(&doc, ["a", "b"]).unwrap();
        assert_eq!((a, b), (&Json::Int(1), &Json::Int(2)));
        assert!(expect_exact_fields(&doc, ["a"]).is_err(), "extra field");
        assert!(expect_exact_fields(&doc, ["a", "b", "c"]).is_err());
        let dup = Json::Obj(vec![
            ("a".to_owned(), Json::Int(1)),
            ("a".to_owned(), Json::Int(2)),
        ]);
        assert!(expect_exact_fields(&dup, ["a"]).is_err(), "duplicate");
        assert!(expect_exact_fields(&Json::Int(3), ["a"]).is_err());
    }

    #[test]
    fn stop_reason_round_trips() {
        let reasons = [
            StopReason::Saturated,
            StopReason::Cancelled,
            StopReason::IterLimit(7),
            StopReason::NodeLimit(100_000),
            StopReason::TimeLimit(Duration::from_millis(250)),
        ];
        for reason in reasons {
            let doc = reason.to_json();
            let back = StopReason::from_json(&Json::parse(&doc.to_string()).unwrap()).unwrap();
            assert_eq!(
                back.to_json().to_string(),
                doc.to_string(),
                "{reason:?} did not round-trip"
            );
        }
        assert!(StopReason::from_json(&Json::str("exploded")).is_err());
        assert!(StopReason::from_json(&Json::obj([("warp_limit", Json::Int(1))])).is_err());
        assert!(StopReason::from_json(&Json::obj([("time_limit_ms", Json::Float(-1.0))])).is_err());
        // Finite but Duration-overflowing: an error, never a panic —
        // a corrupt store record must degrade to a miss.
        assert!(StopReason::from_json(&Json::obj([("time_limit_ms", Json::Float(1e30))])).is_err());
    }

    #[test]
    fn saturation_stats_reject_contradictory_cancelled_flag() {
        let aig = aig::gen::csa_multiplier(3);
        let result = crate::BoolE::new(crate::BooleParams::small()).run(&aig);
        let mut doc = result.saturation.to_json();
        let Json::Obj(pairs) = &mut doc else {
            panic!("stats serialize as an object")
        };
        let flag = pairs
            .iter_mut()
            .find(|(k, _)| k == "cancelled")
            .expect("cancelled field");
        flag.1 = Json::Bool(true); // stops say otherwise
        assert!(SaturationStats::from_json(&doc).is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(128))]

        #[test]
        fn parse_is_the_inverse_of_print(doc in arb_json()) {
            let text = doc.to_string();
            let parsed = Json::parse(&text).expect("writer output must parse");
            proptest::prop_assert_eq!(&parsed, &doc, "parse(print(doc)) != doc for {}", text);
            // And printing the parse is a fixpoint.
            proptest::prop_assert_eq!(parsed.to_string(), text);
        }

        #[test]
        fn parse_is_the_inverse_of_pretty_print(doc in arb_json()) {
            let parsed = Json::parse(&doc.pretty()).expect("pretty output must parse");
            proptest::prop_assert_eq!(&parsed, &doc);
        }

        #[test]
        fn stats_documents_round_trip(
            stats in arb_saturation_stats(),
            pairing in arb_pair_stats(),
            fa in arb_recovered_fa(),
        ) {
            let doc = stats.to_json();
            let back = SaturationStats::from_json(&Json::parse(&doc.to_string()).unwrap())
                .expect("canonical stats must parse");
            proptest::prop_assert_eq!(back.to_json().to_string(), doc.to_string());

            let doc = pairing.to_json();
            let back = PairStats::from_json(&Json::parse(&doc.to_string()).unwrap()).unwrap();
            proptest::prop_assert_eq!(back.to_json().to_string(), doc.to_string());

            let doc = fa.to_json();
            let back = crate::pipeline::RecoveredFa::from_json(
                &Json::parse(&doc.to_string()).unwrap(),
            )
            .unwrap();
            proptest::prop_assert_eq!(back.to_json().to_string(), doc.to_string());
        }
    }

    /// Random canonical-shaped documents: every variant, but floats are
    /// restricted to values whose shortest printed form re-parses to
    /// the same variant (`Float(2.0)` prints as `2`, which re-parses as
    /// `Int(2)` — the writer never emits such floats in canonical
    /// documents).
    fn arb_json() -> impl proptest::Strategy<Value = Json> {
        use proptest::Strategy as _;
        let leaf = proptest::prop_oneof![
            proptest::Just(Json::Null),
            proptest::any::<bool>().prop_map(Json::Bool),
            proptest::any::<i64>().prop_map(Json::Int),
            (-1_000_000i64..1_000_000).prop_map(|n| Json::Float(n as f64 + 0.5)),
            arb_string().prop_map(Json::Str),
        ];
        leaf.prop_recursive(3, 24, 4, |inner| {
            proptest::prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Json::Arr),
                proptest::collection::vec((arb_string(), inner), 0..4).prop_map(Json::Obj),
            ]
        })
    }

    fn arb_string() -> impl proptest::Strategy<Value = String> {
        use proptest::Strategy as _;
        proptest::collection::vec(
            proptest::prop_oneof![
                (32u32..127).prop_map(|c| char::from_u32(c).unwrap()),
                proptest::Just('"'),
                proptest::Just('\\'),
                proptest::Just('\n'),
                proptest::Just('\u{1}'),
                proptest::Just('é'),
                proptest::Just('\u{1F600}'),
            ],
            0..8,
        )
        .prop_map(|chars| chars.into_iter().collect())
    }

    fn arb_stop_reason() -> impl proptest::Strategy<Value = StopReason> {
        use proptest::Strategy as _;
        proptest::prop_oneof![
            proptest::Just(StopReason::Saturated),
            proptest::Just(StopReason::Cancelled),
            (0usize..1000).prop_map(StopReason::IterLimit),
            (0usize..1_000_000).prop_map(StopReason::NodeLimit),
            // Whole milliseconds survive the f64-ms encoding exactly.
            (0u64..100_000).prop_map(|ms| StopReason::TimeLimit(Duration::from_millis(ms))),
        ]
    }

    fn arb_saturation_stats() -> impl proptest::Strategy<Value = SaturationStats> {
        use proptest::Strategy as _;
        (
            (0usize..10_000, 0usize..10_000, 0usize..10_000),
            (arb_stop_reason(), arb_stop_reason()),
            (0usize..100, 0usize..100, 0usize..10_000, 0usize..1_000_000),
        )
            .prop_map(|((n1, n2, classes), (r1, r2), (i1, i2, pruned, matches))| {
                SaturationStats {
                    nodes_after_r1: n1,
                    nodes_after_r2: n2,
                    classes,
                    r1_stop: r1,
                    r2_stop: r2,
                    r1_iterations: i1,
                    r2_iterations: i2,
                    pruned,
                    search_time: Duration::ZERO,
                    merge_time: Duration::ZERO,
                    apply_time: Duration::ZERO,
                    rebuild_time: Duration::ZERO,
                    relation_build_time: Duration::ZERO,
                    total_matches: matches,
                    rules: Vec::new(),
                }
            })
    }

    fn arb_pair_stats() -> impl proptest::Strategy<Value = PairStats> {
        use proptest::Strategy as _;
        (0usize..1000, 0usize..1000, 0usize..1000).prop_map(|(fa, xor3, maj)| PairStats {
            fa_inserted: fa,
            xor3_triples: xor3,
            maj_triples: maj,
        })
    }

    fn arb_recovered_fa() -> impl proptest::Strategy<Value = crate::pipeline::RecoveredFa> {
        use proptest::Strategy as _;
        (
            (0u32..10_000, 0u32..10_000, 0u32..10_000),
            0u32..10_000,
            0u32..10_000,
        )
            .prop_map(|((a, b, c), sum, carry)| crate::pipeline::RecoveredFa {
                inputs: [aig::Lit(a), aig::Lit(b), aig::Lit(c)],
                sum: aig::Lit(sum),
                carry: aig::Lit(carry),
            })
    }

    #[test]
    fn boole_result_serializes() {
        let aig = aig::gen::csa_multiplier(3);
        let result = crate::BoolE::new(crate::BooleParams::small()).run(&aig);
        let text = result.to_json().to_string();
        assert!(text.contains("\"exact_fa_count\":"));
        assert!(text.contains("\"saturation\":"));
        assert!(text.contains("\"runtime_ms\":"));
        // Stats sub-documents round through their own impls.
        assert!(result
            .saturation
            .to_json()
            .to_string()
            .contains("nodes_after_r1"));
        assert!(result.pairing.to_json().to_string().contains("fa_inserted"));
    }
}
