//! A hand-rolled JSON writer (no serde) for machine-readable output.
//!
//! The workspace is dependency-free by design, so results are
//! serialized through a tiny document model: build a [`Json`] value,
//! then render it with [`Json::to_string`] (compact) or
//! [`Json::pretty`] (indented). Object keys keep insertion order, so
//! output is byte-stable across runs — the service's batch mode relies
//! on that to compare concurrent and serial results.

use std::fmt::Write as _;
use std::time::Duration;

use egraph::StopReason;

use crate::pair::PairStats;
use crate::pipeline::BooleResult;
use crate::saturate::SaturationStats;

/// A JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A duration, serialized as fractional milliseconds.
    pub fn duration_ms(d: Duration) -> Json {
        Json::Float(d.as_secs_f64() * 1e3)
    }

    /// Renders indented JSON (two spaces per level).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{}` on f64 prints the shortest round-trip form
                    // but omits a decimal point for integral values;
                    // that is still valid JSON.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, level, '{', '}', pairs.len(), |out, i| {
                let (k, v) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, level + 1);
            }),
        }
    }
}

/// Compact rendering (no whitespace); use [`Json::pretty`] for
/// indented output.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (level + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as i64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(i64::from(n))
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Types with a canonical JSON representation.
pub trait ToJson {
    /// Converts to a [`Json`] document.
    fn to_json(&self) -> Json;
}

impl ToJson for StopReason {
    fn to_json(&self) -> Json {
        match self {
            StopReason::Saturated => Json::str("saturated"),
            StopReason::IterLimit(n) => Json::obj([("iter_limit", Json::from(*n))]),
            StopReason::NodeLimit(n) => Json::obj([("node_limit", Json::from(*n))]),
            StopReason::TimeLimit(d) => Json::obj([("time_limit_ms", Json::duration_ms(*d))]),
            StopReason::Cancelled => Json::str("cancelled"),
        }
    }
}

impl ToJson for SaturationStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("nodes_after_r1", Json::from(self.nodes_after_r1)),
            ("nodes_after_r2", Json::from(self.nodes_after_r2)),
            ("classes", Json::from(self.classes)),
            ("r1_stop", self.r1_stop.to_json()),
            ("r2_stop", self.r2_stop.to_json()),
            ("r1_iterations", Json::from(self.r1_iterations)),
            ("r2_iterations", Json::from(self.r2_iterations)),
            ("pruned", Json::from(self.pruned)),
            // No wall-clock phase times here: job-result JSON must be
            // byte-identical across serial and concurrent runs (see
            // the service CLI tests); `satbench` reads the timing
            // fields straight off the struct instead.
            ("total_matches", Json::from(self.total_matches)),
            ("cancelled", Json::from(self.was_cancelled())),
        ])
    }
}

impl ToJson for PairStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("fa_inserted", Json::from(self.fa_inserted)),
            ("xor3_triples", Json::from(self.xor3_triples)),
            ("maj_triples", Json::from(self.maj_triples)),
        ])
    }
}

impl ToJson for crate::pipeline::RecoveredFa {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "inputs",
                Json::arr(self.inputs.iter().map(|l| Json::from(l.raw()))),
            ),
            ("sum", Json::from(self.sum.raw())),
            ("carry", Json::from(self.carry.raw())),
        ])
    }
}

impl ToJson for BooleResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("exact_fa_count", Json::from(self.exact_fa_count())),
            (
                "reconstructed",
                Json::obj([
                    ("inputs", Json::from(self.reconstructed.num_inputs())),
                    ("outputs", Json::from(self.reconstructed.num_outputs())),
                    ("ands", Json::from(self.reconstructed.num_ands())),
                ]),
            ),
            ("fas", Json::arr(self.fas.iter().map(ToJson::to_json))),
            (
                "original_fas",
                Json::arr(self.original_fas.iter().map(ToJson::to_json)),
            ),
            ("saturation", self.saturation.to_json()),
            ("pairing", self.pairing.to_json()),
            ("runtime_ms", Json::duration_ms(self.runtime)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_deterministic() {
        let doc = Json::obj([
            ("b", Json::from(true)),
            ("a", Json::from(1usize)),
            ("s", Json::str("x\"y\\z\n")),
            ("arr", Json::arr([Json::Null, Json::Float(1.5)])),
            ("empty", Json::obj::<String>([])),
        ]);
        assert_eq!(
            doc.to_string(),
            r#"{"b":true,"a":1,"s":"x\"y\\z\n","arr":[null,1.5],"empty":{}}"#
        );
        // Key order is insertion order, not sorted.
        assert!(doc.to_string().find("\"b\"").unwrap() < doc.to_string().find("\"a\"").unwrap());
    }

    #[test]
    fn pretty_rendering_indents() {
        let doc = Json::obj([("k", Json::arr([Json::Int(1)]))]);
        assert_eq!(doc.pretty(), "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        let mut s = String::new();
        write_escaped(&mut s, "\u{1}");
        assert_eq!(s, "\"\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn boole_result_serializes() {
        let aig = aig::gen::csa_multiplier(3);
        let result = crate::BoolE::new(crate::BooleParams::small()).run(&aig);
        let text = result.to_json().to_string();
        assert!(text.contains("\"exact_fa_count\":"));
        assert!(text.contains("\"saturation\":"));
        assert!(text.contains("\"runtime_ms\":"));
        // Stats sub-documents round through their own impls.
        assert!(result
            .saturation
            .to_json()
            .to_string()
            .contains("nodes_after_r1"));
        assert!(result.pairing.to_json().to_string().contains("fa_inserted"));
    }
}
