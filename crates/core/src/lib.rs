//! **BoolE** — exact Boolean symbolic reasoning via equality
//! saturation (reproduction of Yin et al., DAC 2025).
//!
//! BoolE takes a gate-level netlist ([`aig::Aig`]), converts it into an
//! e-graph ([`convert`]), saturates it with a domain-specific Boolean
//! ruleset ([`rules`]: `R1` basic algebra, `R2` XOR/MAJ
//! identification), pairs XOR3/MAJ e-nodes sharing the same inputs into
//! multi-output full-adder (`fa`) nodes with `fst`/`snd` projections
//! ([`pair`]), and runs a DAG-cost extraction that maximizes the number
//! of exact FAs ([`extract`]). The result is reconstructed as an AIG
//! whose adder tree is explicit again ([`reconstruct`]).
//!
//! # Quickstart
//!
//! ```
//! use boole::{BoolE, BooleParams};
//!
//! // A 3-bit CSA multiplier, technology-mapped (the paper's Fig. 1).
//! let aig = aig::gen::csa_multiplier(3);
//! let mapped = aig::map::map_round_trip(&aig);
//! let result = BoolE::new(BooleParams::default()).run(&mapped);
//! assert!(result.exact_fa_count() >= 1);
//! ```

#![warn(missing_docs)]

pub mod convert;
pub mod extract;
pub mod json;
mod lang;
pub mod pair;
pub mod pipeline;
pub mod reconstruct;
pub mod rules;
pub mod saturate;
pub mod telemetry;

pub use convert::{aig_to_egraph, NetlistEGraph};
pub use egraph::{CancelToken, SearchBackendKind};
pub use extract::{extract_dag, DagChoice, DagExtraction};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use lang::{BoolLang, BoolOp};
pub use pair::{pair_full_adders, PairStats};
pub use pipeline::{
    BoolE, BooleParams, BooleResult, Cancelled, Phase, PhaseCallback, PhaseEvent, RecoveredFa,
};
pub use reconstruct::reconstruct_aig;
pub use saturate::{
    saturate, saturate_observed, IterationObserver, RuleSummary, SaturateParams, SaturationStats,
};
pub use telemetry::{
    CacheTier, EventBus, EventKind, MetricsRegistry, Telemetry, TelemetryEvent, TelemetrySink,
};
