//! Out-of-band observability: a bounded structured event bus and a
//! metrics registry, both snapshotable through the strict
//! [`crate::json`] layer.
//!
//! Everything in this module is *strictly out-of-band*: publishing an
//! event or bumping a metric never blocks a worker (a full event ring
//! drops the event and counts the drop), and nothing here feeds back
//! into canonical result documents — the byte-identity guarantees of
//! the pipeline and service layers are untouched whether telemetry is
//! attached or not.
//!
//! # Event stream contract
//!
//! Every published event gets a monotonically increasing sequence
//! number and a timestamp (microseconds since the bus was created).
//! When the bounded ring is full, incoming events are *dropped but
//! still consume a sequence number*; the next successful publish (or
//! the next drain) first emits an explicit [`EventKind::Dropped`]
//! marker whose `count` equals the number of burned sequence numbers.
//! Consumers can therefore verify losslessness: consecutive received
//! events have gapless sequence numbers, except immediately before a
//! `dropped` marker, where the gap size equals the marker's count.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Default bound of the event ring (events held between drains).
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Which cache tier answered (or failed to answer) a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-memory result-cache tier.
    Memory,
    /// The persistent disk tier.
    Disk,
}

impl CacheTier {
    /// Stable lowercase name used in event payloads.
    pub fn name(self) -> &'static str {
        match self {
            CacheTier::Memory => "memory",
            CacheTier::Disk => "disk",
        }
    }
}

/// The typed payload of a [`TelemetryEvent`].
#[derive(Debug, Clone)]
pub enum EventKind {
    /// A job entered the service queue (or the serial runner's list).
    JobSubmitted {
        /// Service-assigned job id.
        job: u64,
        /// Human-readable job label (usually the netlist path or spec).
        label: String,
    },
    /// A worker picked the job up and began executing it.
    JobStarted {
        /// Service-assigned job id.
        job: u64,
    },
    /// A pipeline phase is about to run.
    PhaseStarted {
        /// Service-assigned job id.
        job: u64,
        /// Stable phase name (`convert`, `saturate`, …).
        phase: &'static str,
    },
    /// A pipeline phase completed.
    PhaseFinished {
        /// Service-assigned job id.
        job: u64,
        /// Stable phase name.
        phase: &'static str,
        /// Wall-clock time the phase took.
        elapsed: Duration,
    },
    /// One saturation iteration completed.
    Iteration {
        /// Service-assigned job id.
        job: u64,
        /// Which ruleset phase is running (`r1` or `r2`).
        ruleset: &'static str,
        /// Zero-based iteration index within the ruleset phase.
        index: usize,
        /// E-nodes after the iteration.
        nodes: usize,
        /// E-classes after the iteration.
        classes: usize,
        /// Substitutions found this iteration (post-scheduling).
        matches: usize,
        /// Time the search backend spent (re)building shared
        /// relations this iteration (relational backend only).
        relation_build: Duration,
    },
    /// A cache tier answered a lookup.
    CacheHit {
        /// Service-assigned job id.
        job: u64,
        /// Which tier hit.
        tier: CacheTier,
    },
    /// A cache tier had no usable record.
    CacheMiss {
        /// Service-assigned job id.
        job: u64,
        /// Which tier missed.
        tier: CacheTier,
    },
    /// The in-memory cache evicted an entry to make room.
    CacheEvicted {
        /// Entries evicted in this insertion's eviction pass.
        entries: u64,
    },
    /// A persistent-cache write failed (disk full, permissions, …).
    DiskWriteError {
        /// The I/O error, rendered.
        message: String,
    },
    /// A job's transient failure is being retried after a backoff
    /// delay (the service's bounded-retry policy).
    JobRetry {
        /// Service-assigned job id.
        job: u64,
        /// One-based retry attempt about to run.
        attempt: u32,
        /// Backoff the worker slept before this attempt.
        delay: Duration,
    },
    /// A job reached a terminal state. Emitted exactly once per job,
    /// whatever the outcome (completed, failed, cancelled, panicked).
    JobDone {
        /// Service-assigned job id.
        job: u64,
        /// Terminal status name (`completed`, `failed`, `cancelled`).
        status: String,
        /// Whether the result was served from a cache tier.
        from_cache: bool,
    },
    /// Marker standing in for `count` events dropped under
    /// backpressure. The dropped events' sequence numbers are the
    /// `count` numbers immediately preceding this marker's.
    Dropped {
        /// How many events were dropped.
        count: u64,
    },
}

impl EventKind {
    /// Stable snake_case event name (the `"event"` field in NDJSON).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::JobSubmitted { .. } => "job_submitted",
            EventKind::JobStarted { .. } => "job_started",
            EventKind::PhaseStarted { .. } => "phase_started",
            EventKind::PhaseFinished { .. } => "phase_finished",
            EventKind::Iteration { .. } => "iteration",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::CacheEvicted { .. } => "cache_evicted",
            EventKind::DiskWriteError { .. } => "disk_write_error",
            EventKind::JobRetry { .. } => "job_retry",
            EventKind::JobDone { .. } => "job_done",
            EventKind::Dropped { .. } => "dropped",
        }
    }
}

/// One event on the bus: a sequence number, a timestamp, and a typed
/// payload.
#[derive(Debug, Clone)]
pub struct TelemetryEvent {
    /// Monotonic sequence number (gapless except across explicit
    /// [`EventKind::Dropped`] markers).
    pub seq: u64,
    /// Microseconds since the bus was created.
    pub ts_us: u64,
    /// The payload.
    pub kind: EventKind,
}

impl TelemetryEvent {
    /// Renders the event as one flat JSON object (an NDJSON line once
    /// compact-printed). Every document this produces survives the
    /// strict [`Json::parse`] round trip.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("seq".into(), Json::Int(self.seq as i64)),
            ("ts_us".into(), Json::Int(self.ts_us as i64)),
            ("event".into(), Json::str(self.kind.name())),
        ];
        let mut push = |k: &str, v: Json| fields.push((k.to_owned(), v));
        match &self.kind {
            EventKind::JobSubmitted { job, label } => {
                push("job", Json::Int(*job as i64));
                push("label", Json::str(label.clone()));
            }
            EventKind::JobStarted { job } => push("job", Json::Int(*job as i64)),
            EventKind::PhaseStarted { job, phase } => {
                push("job", Json::Int(*job as i64));
                push("phase", Json::str(*phase));
            }
            EventKind::PhaseFinished {
                job,
                phase,
                elapsed,
            } => {
                push("job", Json::Int(*job as i64));
                push("phase", Json::str(*phase));
                push(
                    "elapsed_us",
                    Json::Int(i64::try_from(elapsed.as_micros()).unwrap_or(i64::MAX)),
                );
            }
            EventKind::Iteration {
                job,
                ruleset,
                index,
                nodes,
                classes,
                matches,
                relation_build,
            } => {
                push("job", Json::Int(*job as i64));
                push("ruleset", Json::str(*ruleset));
                push("index", Json::Int(*index as i64));
                push("nodes", Json::Int(*nodes as i64));
                push("classes", Json::Int(*classes as i64));
                push("matches", Json::Int(*matches as i64));
                push(
                    "relation_build_us",
                    Json::Int(i64::try_from(relation_build.as_micros()).unwrap_or(i64::MAX)),
                );
            }
            EventKind::CacheHit { job, tier } => {
                push("job", Json::Int(*job as i64));
                push("tier", Json::str(tier.name()));
            }
            EventKind::CacheMiss { job, tier } => {
                push("job", Json::Int(*job as i64));
                push("tier", Json::str(tier.name()));
            }
            EventKind::CacheEvicted { entries } => push("entries", Json::Int(*entries as i64)),
            EventKind::DiskWriteError { message } => push("message", Json::str(message.clone())),
            EventKind::JobRetry {
                job,
                attempt,
                delay,
            } => {
                push("job", Json::Int(*job as i64));
                push("attempt", Json::Int(i64::from(*attempt)));
                push(
                    "delay_us",
                    Json::Int(i64::try_from(delay.as_micros()).unwrap_or(i64::MAX)),
                );
            }
            EventKind::JobDone {
                job,
                status,
                from_cache,
            } => {
                push("job", Json::Int(*job as i64));
                push("status", Json::str(status.clone()));
                push("from_cache", Json::Bool(*from_cache));
            }
            EventKind::Dropped { count } => push("count", Json::Int(*count as i64)),
        }
        Json::Obj(fields)
    }
}

#[derive(Debug)]
struct BusState {
    queue: VecDeque<TelemetryEvent>,
    next_seq: u64,
    /// Events dropped since the last emitted `Dropped` marker; their
    /// sequence numbers are already burned.
    dropped_pending: u64,
    closed: bool,
}

/// A bounded multi-producer event ring.
///
/// Publishing never blocks: when the ring is full the event is dropped
/// (and accounted — see the module docs for the marker protocol).
/// Consumers call [`EventBus::drain`] (non-blocking) or
/// [`EventBus::wait`] (parks until events arrive or the bus closes).
#[derive(Debug)]
pub struct EventBus {
    capacity: usize,
    epoch: Instant,
    state: Mutex<BusState>,
    available: Condvar,
    dropped_total: AtomicU64,
}

impl Default for EventBus {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventBus {
    /// Creates a bus holding at most `capacity` undrained events.
    pub fn with_capacity(capacity: usize) -> EventBus {
        EventBus {
            capacity: capacity.max(1),
            epoch: Instant::now(),
            state: Mutex::new(BusState {
                queue: VecDeque::new(),
                next_seq: 0,
                dropped_pending: 0,
                closed: false,
            }),
            available: Condvar::new(),
            dropped_total: AtomicU64::new(0),
        }
    }

    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Publishes an event. Never blocks; a full ring drops the event
    /// (burning its sequence number) and a closed bus ignores it.
    pub fn publish(&self, kind: EventKind) {
        let ts_us = self.now_us();
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return;
        }
        // Flush an outstanding drop marker ahead of the incoming event
        // whenever the ring has any room at all: the marker accounts
        // for the seq gap immediately preceding it, so it must never
        // be starved behind newer events. The incoming event then
        // competes for whatever room is left (and may itself join the
        // dropped batch). The previous `len + 1 < capacity` condition
        // held the marker back under sustained exactly-at-capacity
        // load, letting an event slip in ahead of the gap it should
        // have explained.
        if s.dropped_pending > 0 && s.queue.len() < self.capacity {
            let count = std::mem::take(&mut s.dropped_pending);
            let seq = s.next_seq;
            s.next_seq += 1;
            s.queue.push_back(TelemetryEvent {
                seq,
                ts_us,
                kind: EventKind::Dropped { count },
            });
        }
        if s.queue.len() >= self.capacity {
            s.dropped_pending += 1;
            s.next_seq += 1; // the dropped event still burns its seq
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.queue.push_back(TelemetryEvent { seq, ts_us, kind });
        drop(s);
        self.available.notify_all();
    }

    fn drain_locked(&self, s: &mut BusState, ts_us: u64) -> Vec<TelemetryEvent> {
        if s.dropped_pending > 0 {
            let count = std::mem::take(&mut s.dropped_pending);
            let seq = s.next_seq;
            s.next_seq += 1;
            s.queue.push_back(TelemetryEvent {
                seq,
                ts_us,
                kind: EventKind::Dropped { count },
            });
        }
        s.queue.drain(..).collect()
    }

    /// Removes and returns all buffered events (flushing any pending
    /// drop marker). Non-blocking.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        let ts_us = self.now_us();
        let mut s = self.state.lock().unwrap();
        self.drain_locked(&mut s, ts_us)
    }

    /// Blocks until at least one event is available, then drains.
    /// Returns an empty vector only when the bus is closed and empty —
    /// the consumer's signal to stop.
    pub fn wait(&self) -> Vec<TelemetryEvent> {
        let mut s = self.state.lock().unwrap();
        loop {
            if !s.queue.is_empty() || s.dropped_pending > 0 {
                let ts_us = self.now_us();
                return self.drain_locked(&mut s, ts_us);
            }
            if s.closed {
                return vec![];
            }
            s = self.available.wait(s).unwrap();
        }
    }

    /// Closes the bus: later publishes are ignored and a consumer
    /// blocked in [`EventBus::wait`] wakes up (draining what is left).
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap();
        s.closed = true;
        drop(s);
        self.available.notify_all();
    }

    /// Total events dropped under backpressure since creation.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, in-flight
/// jobs, live e-graph sizes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in milliseconds. The final
/// implicit `+inf` bucket catches everything beyond the last bound.
pub const DEFAULT_LATENCY_BUCKETS_MS: [f64; 12] = [
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0,
];

/// A fixed-bucket latency histogram (cumulative, Prometheus-style:
/// each bucket counts observations `<=` its upper bound).
#[derive(Debug)]
pub struct Histogram {
    bounds_ms: Vec<f64>,
    /// One count per bound, plus a trailing `+inf` bucket.
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given upper bounds (milliseconds,
    /// ascending). An `+inf` bucket is appended implicitly.
    pub fn new(bounds_ms: &[f64]) -> Histogram {
        Histogram {
            bounds_ms: bounds_ms.to_vec(),
            counts: (0..=bounds_ms.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, d: Duration) {
        let ms = d.as_secs_f64() * 1e3;
        let idx = self
            .bounds_ms
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(self.bounds_ms.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(
            u64::try_from(d.as_micros()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Snapshot as a strict-parseable JSON object. Bucket upper bounds
    /// are emitted under `"le"`; the `+inf` bucket's bound is `null`.
    pub fn to_json(&self) -> Json {
        let mut buckets = Vec::with_capacity(self.counts.len());
        for (i, count) in self.counts.iter().enumerate() {
            let le = match self.bounds_ms.get(i) {
                Some(&b) => Json::Float(b),
                None => Json::Null,
            };
            buckets.push(Json::obj([
                ("le_ms", le),
                ("count", Json::Int(count.load(Ordering::Relaxed) as i64)),
            ]));
        }
        Json::obj([
            ("buckets", Json::Arr(buckets)),
            ("count", Json::Int(self.count() as i64)),
            (
                "sum_ms",
                Json::Float(self.sum_us.load(Ordering::Relaxed) as f64 / 1e3),
            ),
        ])
    }
}

/// A registry of named counters, gauges, and histograms. Metrics are
/// created on first use and snapshot in name order, so snapshots are
/// deterministic given the same set of touched metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created zeroed on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// The gauge named `name`, created zeroed on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .unwrap()
                .entry(name.to_owned())
                .or_default(),
        )
    }

    /// The histogram named `name`, created with the default latency
    /// buckets on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new(&DEFAULT_LATENCY_BUCKETS_MS))),
        )
    }

    /// Snapshots every touched metric into one strict-parseable JSON
    /// document: `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}`, each section keyed by metric name in
    /// lexicographic order.
    pub fn snapshot(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .lock()
                .unwrap()
                .iter()
                .map(|(name, c)| (name.clone(), Json::Int(c.get() as i64)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(name, g)| (name.clone(), Json::Int(g.get())))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(name, h)| (name.clone(), h.to_json()))
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }
}

/// The full telemetry surface handed around the service: an event bus
/// plus a metrics registry. Cheaply shareable as a [`TelemetrySink`].
#[derive(Debug, Default)]
pub struct Telemetry {
    /// The structured event bus.
    pub events: EventBus,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// Creates a telemetry hub with the default event capacity.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Creates a telemetry hub bounding the event ring at `capacity`.
    pub fn with_event_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            events: EventBus::with_capacity(capacity),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Final metrics snapshot, including the bus's own drop counter as
    /// the `events_dropped` counter.
    pub fn metrics_snapshot(&self) -> Json {
        let dropped = self.metrics.counter("events_dropped");
        let total = self.events.dropped_total();
        dropped.add(total.saturating_sub(dropped.get()));
        self.metrics.snapshot()
    }
}

/// A shared handle to a [`Telemetry`] hub.
pub type TelemetrySink = Arc<Telemetry>;

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(events: &[TelemetryEvent]) -> Vec<u64> {
        events.iter().map(|e| e.seq).collect()
    }

    /// The ordering invariant consumers rely on: gapless sequence
    /// numbers, except that a `dropped` marker accounts for exactly
    /// the burned gap before it.
    fn assert_gapless(events: &[TelemetryEvent]) {
        let mut expected = events.first().map(|e| e.seq).unwrap_or(0);
        for e in events {
            if let EventKind::Dropped { count } = e.kind {
                expected += count;
            }
            assert_eq!(
                e.seq,
                expected,
                "seq gap not accounted for by a dropped marker: {:?}",
                seqs(events)
            );
            expected += 1;
        }
    }

    #[test]
    fn publish_drain_preserves_order_and_seqs() {
        let bus = EventBus::with_capacity(16);
        for job in 0..5 {
            bus.publish(EventKind::JobStarted { job });
        }
        let events = bus.drain();
        assert_eq!(seqs(&events), vec![0, 1, 2, 3, 4]);
        assert_gapless(&events);
        assert_eq!(bus.dropped_total(), 0);
        assert!(bus.drain().is_empty());
    }

    #[test]
    fn full_ring_drops_and_emits_marker_with_burned_seqs() {
        let bus = EventBus::with_capacity(3);
        for job in 0..7 {
            bus.publish(EventKind::JobStarted { job });
        }
        // Ring held 0,1,2; events 3..7 were dropped (seqs burned).
        assert_eq!(bus.dropped_total(), 4);
        let first = bus.drain();
        assert_eq!(first.len(), 4, "3 events + 1 drop marker");
        assert!(matches!(first[3].kind, EventKind::Dropped { count: 4 }));
        assert_eq!(first[3].seq, 7, "marker takes the next seq after the gap");
        assert_gapless(&first);
        // Publishing resumes seamlessly after the marker.
        bus.publish(EventKind::JobStarted { job: 99 });
        let next = bus.drain();
        assert_eq!(seqs(&next), vec![8]);
    }

    #[test]
    fn marker_is_flushed_by_next_publish_with_room() {
        let bus = EventBus::with_capacity(2);
        bus.publish(EventKind::JobStarted { job: 0 });
        bus.publish(EventKind::JobStarted { job: 1 });
        bus.publish(EventKind::JobStarted { job: 2 }); // dropped
        assert_eq!(bus.dropped_total(), 1);
        let events = bus.drain();
        assert_gapless(&events);
        bus.publish(EventKind::JobStarted { job: 3 });
        let events = bus.drain();
        // Marker was already flushed by the drain above; the new event
        // continues the sequence.
        assert_eq!(events.len(), 1);
        assert_gapless(&events);
    }

    #[test]
    fn sustained_at_capacity_load_flushes_the_marker_ahead_of_new_events() {
        // Repeated fill-to-capacity / overflow / drain cycles, the
        // regime in which the marker used to starve: the flush
        // condition required room for the marker *and* the incoming
        // event (`len + 1 < capacity`), so at `len == capacity - 1`
        // a new event could be enqueued ahead of the gap the pending
        // marker explains. The marker must always come first, and the
        // accounting must stay gapless across every cycle.
        let bus = EventBus::with_capacity(2);
        for cycle in 0..5u64 {
            bus.publish(EventKind::JobStarted { job: cycle * 10 });
            bus.publish(EventKind::JobStarted {
                job: cycle * 10 + 1,
            });
            bus.publish(EventKind::JobStarted {
                job: cycle * 10 + 2,
            }); // dropped
            bus.publish(EventKind::JobStarted {
                job: cycle * 10 + 3,
            }); // dropped
            let events = bus.drain();
            assert_eq!(events.len(), 3, "2 events + 1 marker, cycle {cycle}");
            assert!(
                matches!(events[2].kind, EventKind::Dropped { count: 2 }),
                "cycle {cycle}: {:?}",
                seqs(&events)
            );
            assert_gapless(&events);
            // A marker in the stream must never be preceded by an
            // event published *after* the drops it accounts for.
            let marker_seq = events[2].seq;
            assert!(events[..2].iter().all(|e| e.seq < marker_seq - 2));
        }
        assert_eq!(bus.dropped_total(), 10);
    }

    #[test]
    fn closed_bus_ignores_publishes_and_wakes_waiters() {
        let bus = Arc::new(EventBus::with_capacity(8));
        let waiter = {
            let bus = Arc::clone(&bus);
            std::thread::spawn(move || bus.wait())
        };
        // Give the waiter a moment to park, then close.
        std::thread::sleep(Duration::from_millis(20));
        bus.close();
        assert!(waiter.join().unwrap().is_empty());
        bus.publish(EventKind::JobStarted { job: 0 });
        assert!(bus.drain().is_empty(), "closed bus accepts nothing");
    }

    #[test]
    fn wait_returns_published_events() {
        let bus = Arc::new(EventBus::with_capacity(8));
        let waiter = {
            let bus = Arc::clone(&bus);
            std::thread::spawn(move || bus.wait())
        };
        bus.publish(EventKind::JobStarted { job: 7 });
        let events = waiter.join().unwrap();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].kind, EventKind::JobStarted { job: 7 }));
    }

    #[test]
    fn every_event_kind_renders_strict_parseable_json() {
        let kinds = vec![
            EventKind::JobSubmitted {
                job: 1,
                label: "bench/a.blif".into(),
            },
            EventKind::JobStarted { job: 1 },
            EventKind::PhaseStarted {
                job: 1,
                phase: "saturate",
            },
            EventKind::PhaseFinished {
                job: 1,
                phase: "saturate",
                elapsed: Duration::from_micros(1234),
            },
            EventKind::Iteration {
                job: 1,
                ruleset: "r1",
                index: 0,
                nodes: 100,
                classes: 40,
                matches: 17,
                relation_build: Duration::from_micros(250),
            },
            EventKind::CacheHit {
                job: 1,
                tier: CacheTier::Memory,
            },
            EventKind::CacheMiss {
                job: 1,
                tier: CacheTier::Disk,
            },
            EventKind::CacheEvicted { entries: 2 },
            EventKind::DiskWriteError {
                message: "disk full: \"/tmp/x\"".into(),
            },
            EventKind::JobDone {
                job: 1,
                status: "completed".into(),
                from_cache: false,
            },
            EventKind::Dropped { count: 3 },
        ];
        for (seq, kind) in kinds.into_iter().enumerate() {
            let event = TelemetryEvent {
                seq: seq as u64,
                ts_us: 42,
                kind,
            };
            let line = event.to_json().to_string();
            let parsed =
                Json::parse(&line).unwrap_or_else(|e| panic!("event line must parse: {e}: {line}"));
            assert_eq!(parsed.to_string(), line, "round trip must be exact");
            assert!(!line.contains('\n'), "one event is one line");
        }
    }

    #[test]
    fn metrics_snapshot_is_deterministic_and_parseable() {
        let metrics = MetricsRegistry::new();
        metrics.counter("jobs_completed").add(3);
        metrics.counter("cache_memory_hits").inc();
        metrics.gauge("queue_depth").set(5);
        metrics.gauge("queue_depth").add(-2);
        let h = metrics.histogram("job_ms");
        h.observe(Duration::from_millis(3));
        h.observe(Duration::from_secs(30)); // lands in +inf
        let snap = metrics.snapshot();
        let text = snap.to_string();
        let parsed = Json::parse(&text).expect("snapshot must strict-parse");
        assert_eq!(parsed.to_string(), text);
        // Deterministic: same mutations, same rendering order.
        assert!(text.find("cache_memory_hits").unwrap() < text.find("jobs_completed").unwrap());
        assert_eq!(metrics.gauge("queue_depth").get(), 3);
        assert_eq!(metrics.histogram("job_ms").count(), 2);
    }

    #[test]
    fn histogram_buckets_are_cumulative_by_position() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(Duration::from_micros(500)); // <=1ms
        h.observe(Duration::from_millis(5)); // <=10ms
        h.observe(Duration::from_millis(50)); // +inf
        let json = h.to_json().to_string();
        assert!(json.contains("\"le_ms\":1"));
        assert!(json.contains("\"le_ms\":null"));
        assert_eq!(h.count(), 3);
    }
}
