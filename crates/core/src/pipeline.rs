//! The end-to-end BoolE pipeline (Figure 2): parse → e-graph →
//! two-phase saturation → FA pairing → DAG extraction → AIG
//! reconstruction.

use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use aig::Aig;
use egraph::CancelToken;

use crate::convert::aig_to_egraph;
use crate::extract::extract_dag;
use crate::pair::{pair_full_adders, PairStats};
use crate::reconstruct::reconstruct_aig;
pub use crate::reconstruct::RecoveredFa;
use crate::saturate::{SaturateParams, SaturationStats};

/// A stage of the BoolE pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Netlist → e-graph conversion.
    Convert,
    /// Two-phase equality saturation (`R1` then `R2`).
    Saturate,
    /// XOR3/MAJ pairing into `fa` nodes.
    Pair,
    /// DAG-cost extraction.
    Extract,
    /// AIG reconstruction.
    Reconstruct,
}

impl Phase {
    /// All phases in execution order.
    pub const ALL: [Phase; 5] = [
        Phase::Convert,
        Phase::Saturate,
        Phase::Pair,
        Phase::Extract,
        Phase::Reconstruct,
    ];

    /// Stable lowercase name (used in JSON and job status displays).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Convert => "convert",
            Phase::Saturate => "saturate",
            Phase::Pair => "pair",
            Phase::Extract => "extract",
            Phase::Reconstruct => "reconstruct",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Progress notification emitted by [`BoolE::try_run`] around each
/// pipeline phase.
#[derive(Debug, Clone)]
pub enum PhaseEvent {
    /// The phase is about to run.
    Started(Phase),
    /// The phase completed, taking `elapsed`.
    Finished {
        /// Which phase finished.
        phase: Phase,
        /// Wall-clock time the phase took.
        elapsed: Duration,
    },
    /// One saturation iteration completed (emitted between the
    /// [`Phase::Saturate`] `Started`/`Finished` pair — fine-grained
    /// progress for the longest phase).
    Iteration {
        /// Which ruleset phase is running (`"r1"` or `"r2"`).
        ruleset: &'static str,
        /// Zero-based iteration index within the ruleset phase.
        index: usize,
        /// E-nodes after the iteration.
        nodes: usize,
        /// E-classes after the iteration.
        classes: usize,
        /// Substitutions found this iteration (post-scheduling).
        matches: usize,
        /// Time the search backend spent (re)building shared
        /// relations this iteration (zero unless the relational
        /// backend rebuilt its tuple stores).
        relation_build: Duration,
    },
}

/// Observer callback for [`PhaseEvent`]s. Must be `Send + Sync`: the
/// service invokes it from worker threads.
pub type PhaseCallback = Arc<dyn Fn(&PhaseEvent) + Send + Sync>;

/// Error returned by [`BoolE::try_run`] when the run's [`CancelToken`]
/// fired before the pipeline completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cancelled {
    /// The phase during (or before) which cancellation was observed.
    pub phase: Phase,
}

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BoolE run cancelled during {} phase", self.phase)
    }
}

impl std::error::Error for Cancelled {}

/// Configuration of a [`BoolE`] run.
#[derive(Debug, Clone, Default)]
pub struct BooleParams {
    /// Saturation configuration (iterations, limits, pruning).
    pub saturate: SaturateParams,
}

impl BooleParams {
    /// Parameters tuned for large benchmarks: lightweight `R1` and a
    /// tighter node budget (the paper's scalability configuration).
    pub fn lightweight() -> Self {
        BooleParams {
            saturate: SaturateParams {
                lightweight: true,
                ..SaturateParams::default()
            },
        }
    }

    /// A small configuration for unit tests and tiny netlists.
    pub fn small() -> Self {
        BooleParams {
            saturate: SaturateParams::small(),
        }
    }

    /// Disables saturation's wall-clock limit (see
    /// [`SaturateParams::without_time_limit`] for why deterministic
    /// deployments want this).
    pub fn without_time_limit(mut self) -> Self {
        self.saturate = self.saturate.without_time_limit();
        self
    }

    /// Sets how many threads saturation's rule search fans out across
    /// (see [`SaturateParams::search_threads`]; `1` = serial, `0` =
    /// one per available CPU). Results are byte-identical at any
    /// thread count.
    pub fn with_search_threads(mut self, threads: usize) -> Self {
        self.saturate.search_threads = threads;
        self
    }

    /// Selects the e-matching backend for saturation's rule search
    /// (see [`SaturateParams::search_backend`]). Results are
    /// byte-identical across backends.
    pub fn with_search_backend(mut self, backend: egraph::SearchBackendKind) -> Self {
        self.saturate = self.saturate.with_search_backend(backend);
        self
    }

    /// Attaches a shared cancellation flag, plumbed through to both
    /// saturation phases and checked between pipeline phases.
    pub fn with_cancellation(mut self, flag: Arc<AtomicBool>) -> Self {
        self.saturate.cancel = CancelToken::from_flag(flag);
        self
    }

    /// Attaches a [`CancelToken`] (equivalent to
    /// [`BooleParams::with_cancellation`]).
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.saturate.cancel = token;
        self
    }

    /// The cancellation token this run will observe.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.saturate.cancel
    }
}

/// The result of a BoolE run.
#[derive(Debug)]
pub struct BooleResult {
    /// The reconstructed netlist with explicit adder-tree structure.
    pub reconstructed: Aig,
    /// The recovered full adders (exact by construction: each pairs an
    /// XOR3 and MAJ over the same e-class signals), as literals of the
    /// *reconstructed* netlist.
    pub fas: Vec<RecoveredFa>,
    /// Recovered full adders whose five signals all exist in the
    /// *input* netlist, expressed as its literals — the form
    /// verification backends consume (they rewrite the original
    /// netlist, with BoolE's blocks eliminating the vanishing
    /// monomials).
    pub original_fas: Vec<RecoveredFa>,
    /// Saturation statistics.
    pub saturation: SaturationStats,
    /// FA pairing statistics.
    pub pairing: PairStats,
    /// End-to-end wall-clock time.
    pub runtime: Duration,
}

impl BooleResult {
    /// Number of exact FAs recovered (distinct `fa` nodes extracted).
    pub fn exact_fa_count(&self) -> usize {
        self.fas.len()
    }
}

/// The BoolE exact symbolic reasoning engine.
///
/// ```
/// use boole::{BoolE, BooleParams};
/// let aig = aig::gen::csa_multiplier(3);
/// let result = BoolE::new(BooleParams::default()).run(&aig);
/// // Pre-mapping, the full adder tree is recovered completely.
/// assert_eq!(result.exact_fa_count(), aig::gen::csa_fa_upper_bound(3));
/// ```
#[derive(Clone, Default)]
pub struct BoolE {
    params: BooleParams,
    on_phase: Option<PhaseCallback>,
}

impl fmt::Debug for BoolE {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoolE")
            .field("params", &self.params)
            .field("on_phase", &self.on_phase.as_ref().map(|_| "<callback>"))
            .finish()
    }
}

impl BoolE {
    /// Creates an engine with the given parameters.
    pub fn new(params: BooleParams) -> Self {
        Self {
            params,
            on_phase: None,
        }
    }

    /// Registers an observer invoked with a [`PhaseEvent`] before and
    /// after every pipeline phase (from the thread running the
    /// pipeline).
    pub fn with_phase_callback(mut self, callback: PhaseCallback) -> Self {
        self.on_phase = Some(callback);
        self
    }

    fn emit(&self, event: PhaseEvent) {
        if let Some(cb) = &self.on_phase {
            cb(&event);
        }
    }

    /// Runs one phase with progress events, bailing out first if the
    /// token already fired — the hook that makes a whole pipeline run
    /// cooperatively killable between its coarse-grained stages.
    fn phase<T>(
        &self,
        phase: Phase,
        cancel: &CancelToken,
        f: impl FnOnce() -> T,
    ) -> Result<T, Cancelled> {
        if cancel.is_cancelled() {
            return Err(Cancelled { phase });
        }
        self.emit(PhaseEvent::Started(phase));
        let start = Instant::now();
        let out = f();
        self.emit(PhaseEvent::Finished {
            phase,
            elapsed: start.elapsed(),
        });
        Ok(out)
    }

    /// Runs the full pipeline on a netlist.
    ///
    /// Ignores cancellation outcomes: if the run's token fires
    /// mid-saturation the result is still produced from whatever the
    /// e-graph held at that point. Use [`BoolE::try_run`] to abort
    /// instead.
    pub fn run(&self, netlist: &Aig) -> BooleResult {
        match self.run_pipeline(netlist, &CancelToken::new()) {
            Ok(result) => result,
            Err(c) => unreachable!("fresh token cannot cancel: {c}"),
        }
    }

    /// Runs the full pipeline, aborting promptly with [`Cancelled`] if
    /// the parameters' [`CancelToken`] fires: saturation stops at its
    /// next internal check point, and later phases are skipped
    /// entirely.
    pub fn try_run(&self, netlist: &Aig) -> Result<BooleResult, Cancelled> {
        self.run_pipeline(netlist, &self.params.saturate.cancel)
    }

    /// Shared pipeline body. `cancel` governs the phase-boundary
    /// checks: [`BoolE::run`] passes a fresh token so the pipeline
    /// always completes (even if the params token stopped saturation
    /// early), while [`BoolE::try_run`] passes the params token so the
    /// whole run aborts.
    fn run_pipeline(&self, netlist: &Aig, cancel: &CancelToken) -> Result<BooleResult, Cancelled> {
        let start = Instant::now();
        let net = self.phase(Phase::Convert, cancel, || aig_to_egraph(netlist))?;
        // Forward per-iteration progress through the phase callback, so
        // observers see saturation advance inside its Started/Finished
        // bracket. The observer is passive: attaching it cannot change
        // the run.
        let observer: Option<crate::saturate::IterationObserver> =
            self.on_phase.clone().map(|cb| {
                Arc::new(
                    move |ruleset: &'static str, index: usize, it: &egraph::Iteration| {
                        cb(&PhaseEvent::Iteration {
                            ruleset,
                            index,
                            nodes: it.egraph_nodes,
                            classes: it.egraph_classes,
                            matches: it.total_matches,
                            relation_build: it.relation_build_time,
                        });
                    },
                ) as crate::saturate::IterationObserver
            });
        let (mut net, saturation) = self.phase(Phase::Saturate, cancel, || {
            crate::saturate::saturate_observed(net, &self.params.saturate, observer)
        })?;
        // Saturation checks the params token internally; a strict run
        // that was cancelled mid-phase must not proceed to extraction.
        if cancel.is_cancelled() && saturation.was_cancelled() {
            return Err(Cancelled {
                phase: Phase::Saturate,
            });
        }
        let pairing = self.phase(Phase::Pair, cancel, || pair_full_adders(&mut net.egraph))?;
        let extraction = self.phase(Phase::Extract, cancel, || extract_dag(&net.egraph))?;
        let (original_fas, (reconstructed, fas)) =
            self.phase(Phase::Reconstruct, cancel, || {
                (
                    map_fas_to_original(&net),
                    reconstruct_aig(&net.egraph, &extraction, netlist.num_inputs(), &net.outputs),
                )
            })?;
        Ok(BooleResult {
            reconstructed,
            fas,
            original_fas,
            saturation,
            pairing,
            runtime: start.elapsed(),
        })
    }
}

/// Maps every paired FA whose input/sum/carry e-classes correspond to
/// signals of the original netlist back onto original literals.
///
/// Soundness: e-class membership proves the original literal computes
/// exactly the FA signal, so each returned block satisfies
/// `sum = a⊕b⊕c`, `carry = maj(a,b,c)` over real netlist wires.
fn map_fas_to_original(net: &crate::convert::NetlistEGraph) -> Vec<RecoveredFa> {
    use crate::BoolLang;
    use std::collections::HashMap;

    let egraph = &net.egraph;
    // Reverse map: canonical e-class -> original literal (first /
    // topologically earliest wins; complements via explicit Not
    // lookups).
    let mut rm: HashMap<egraph::Id, aig::Lit> = HashMap::new();
    for (var_idx, &class) in net.vmap.iter().enumerate() {
        let lit = aig::Var(var_idx as u32).lit();
        let canon = egraph.find(class);
        rm.entry(canon).or_insert(lit);
        if let Some(neg) = egraph.lookup(&BoolLang::Not(canon)) {
            rm.entry(egraph.find(neg)).or_insert(!lit);
        }
    }

    let mut out = Vec::new();
    for fa_class in crate::pair::fa_classes(egraph) {
        let Some(BoolLang::Fa([a, b, c])) = egraph
            .eclass(fa_class)
            .iter()
            .find(|n| matches!(n, BoolLang::Fa(_)))
            .cloned()
        else {
            continue;
        };
        let sum_class = egraph.lookup(&BoolLang::Snd(fa_class));
        let carry_class = egraph.lookup(&BoolLang::Fst(fa_class));
        let signals = [
            rm.get(&egraph.find(a)).copied(),
            rm.get(&egraph.find(b)).copied(),
            rm.get(&egraph.find(c)).copied(),
            sum_class.and_then(|s| rm.get(&egraph.find(s)).copied()),
            carry_class.and_then(|s| rm.get(&egraph.find(s)).copied()),
        ];
        if let [Some(la), Some(lb), Some(lc), Some(sum), Some(carry)] = signals {
            out.push(RecoveredFa {
                inputs: [la, lb, lc],
                sum,
                carry,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::gen::{csa_fa_upper_bound, csa_multiplier};
    use aig::sim::random_equiv_check;

    #[test]
    fn recovers_all_fas_pre_mapping() {
        for n in [3usize, 4] {
            let aig = csa_multiplier(n);
            let result = BoolE::new(BooleParams::small()).run(&aig);
            assert_eq!(
                result.exact_fa_count(),
                csa_fa_upper_bound(n),
                "pre-mapping exact FAs for n={n}"
            );
            assert!(
                random_equiv_check(&aig, &result.reconstructed, 8, 0xE9),
                "reconstruction must preserve function (n={n})"
            );
        }
    }

    #[test]
    fn recovers_fas_post_mapping() {
        let aig = csa_multiplier(3);
        let mapped = aig::map::map_round_trip(&aig);
        let result = BoolE::new(BooleParams::small()).run(&mapped);
        assert!(
            result.exact_fa_count() >= 1,
            "post-mapping recovery, got {}",
            result.exact_fa_count()
        );
        assert!(random_equiv_check(&mapped, &result.reconstructed, 8, 0xEA));
    }

    #[test]
    fn phase_events_cover_all_phases_in_order() {
        use std::sync::Mutex;
        let events: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&events);
        let engine = BoolE::new(BooleParams::small()).with_phase_callback(Arc::new(move |e| {
            let tag = match e {
                PhaseEvent::Started(p) => format!("start:{p}"),
                PhaseEvent::Finished { phase, .. } => format!("end:{phase}"),
                // Iteration events interleave inside the saturate
                // bracket; this test checks the coarse structure only.
                PhaseEvent::Iteration { .. } => return,
            };
            sink.lock().unwrap().push(tag);
        }));
        let result = engine.try_run(&csa_multiplier(3)).unwrap();
        assert!(result.exact_fa_count() >= 1);
        let seen = events.lock().unwrap().clone();
        let expected: Vec<String> = Phase::ALL
            .iter()
            .flat_map(|p| [format!("start:{p}"), format!("end:{p}")])
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn iteration_events_arrive_inside_the_saturate_bracket() {
        use std::sync::Mutex;
        let events: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&events);
        let engine = BoolE::new(BooleParams::small()).with_phase_callback(Arc::new(move |e| {
            let tag = match e {
                PhaseEvent::Started(p) => format!("start:{p}"),
                PhaseEvent::Finished { phase, .. } => format!("end:{phase}"),
                PhaseEvent::Iteration { ruleset, index, .. } => format!("iter:{ruleset}:{index}"),
            };
            sink.lock().unwrap().push(tag);
        }));
        engine.try_run(&csa_multiplier(3)).unwrap();
        let seen = events.lock().unwrap().clone();
        let start = seen.iter().position(|t| t == "start:saturate").unwrap();
        let end = seen.iter().position(|t| t == "end:saturate").unwrap();
        let iters: Vec<usize> = seen
            .iter()
            .enumerate()
            .filter(|(_, t)| t.starts_with("iter:"))
            .map(|(i, _)| i)
            .collect();
        assert!(!iters.is_empty(), "saturation must report iterations");
        assert!(
            iters.iter().all(|&i| start < i && i < end),
            "iteration events must nest inside the saturate bracket: {seen:?}"
        );
        assert!(
            seen.iter().any(|t| t.starts_with("iter:r1:")),
            "r1 iterations expected: {seen:?}"
        );
    }

    #[test]
    fn try_run_aborts_on_pre_cancelled_token() {
        let params = BooleParams::small();
        params.cancel_token().cancel();
        let err = BoolE::new(params)
            .try_run(&csa_multiplier(3))
            .expect_err("must cancel");
        assert_eq!(err.phase, Phase::Convert);
    }

    #[test]
    fn run_completes_despite_cancelled_params_token() {
        // `run` ignores cancellation: saturation stops early but the
        // pipeline still yields a (possibly weaker) valid result.
        let params = BooleParams::small();
        params.cancel_token().cancel();
        let aig = csa_multiplier(3);
        let result = BoolE::new(params).run(&aig);
        assert!(result.saturation.was_cancelled());
        assert!(random_equiv_check(&aig, &result.reconstructed, 8, 0xEB));
    }

    #[test]
    fn lightweight_params_work() {
        let aig = csa_multiplier(3);
        let params = BooleParams {
            saturate: SaturateParams {
                lightweight: true,
                ..SaturateParams::small()
            },
        };
        let result = BoolE::new(params).run(&aig);
        assert_eq!(result.exact_fa_count(), csa_fa_upper_bound(3));
    }
}
