//! The end-to-end BoolE pipeline (Figure 2): parse → e-graph →
//! two-phase saturation → FA pairing → DAG extraction → AIG
//! reconstruction.

use std::time::{Duration, Instant};

use aig::Aig;

use crate::convert::aig_to_egraph;
use crate::extract::extract_dag;
use crate::pair::{pair_full_adders, PairStats};
pub use crate::reconstruct::RecoveredFa;
use crate::reconstruct::reconstruct_aig;
use crate::saturate::{saturate, SaturateParams, SaturationStats};

/// Configuration of a [`BoolE`] run.
#[derive(Debug, Clone, Default)]
pub struct BooleParams {
    /// Saturation configuration (iterations, limits, pruning).
    pub saturate: SaturateParams,
}

impl BooleParams {
    /// Parameters tuned for large benchmarks: lightweight `R1` and a
    /// tighter node budget (the paper's scalability configuration).
    pub fn lightweight() -> Self {
        BooleParams {
            saturate: SaturateParams {
                lightweight: true,
                ..SaturateParams::default()
            },
        }
    }

    /// A small configuration for unit tests and tiny netlists.
    pub fn small() -> Self {
        BooleParams {
            saturate: SaturateParams::small(),
        }
    }
}

/// The result of a BoolE run.
#[derive(Debug)]
pub struct BooleResult {
    /// The reconstructed netlist with explicit adder-tree structure.
    pub reconstructed: Aig,
    /// The recovered full adders (exact by construction: each pairs an
    /// XOR3 and MAJ over the same e-class signals), as literals of the
    /// *reconstructed* netlist.
    pub fas: Vec<RecoveredFa>,
    /// Recovered full adders whose five signals all exist in the
    /// *input* netlist, expressed as its literals — the form
    /// verification backends consume (they rewrite the original
    /// netlist, with BoolE's blocks eliminating the vanishing
    /// monomials).
    pub original_fas: Vec<RecoveredFa>,
    /// Saturation statistics.
    pub saturation: SaturationStats,
    /// FA pairing statistics.
    pub pairing: PairStats,
    /// End-to-end wall-clock time.
    pub runtime: Duration,
}

impl BooleResult {
    /// Number of exact FAs recovered (distinct `fa` nodes extracted).
    pub fn exact_fa_count(&self) -> usize {
        self.fas.len()
    }
}

/// The BoolE exact symbolic reasoning engine.
///
/// ```
/// use boole::{BoolE, BooleParams};
/// let aig = aig::gen::csa_multiplier(3);
/// let result = BoolE::new(BooleParams::default()).run(&aig);
/// // Pre-mapping, the full adder tree is recovered completely.
/// assert_eq!(result.exact_fa_count(), aig::gen::csa_fa_upper_bound(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BoolE {
    params: BooleParams,
}

impl BoolE {
    /// Creates an engine with the given parameters.
    pub fn new(params: BooleParams) -> Self {
        Self { params }
    }

    /// Runs the full pipeline on a netlist.
    pub fn run(&self, netlist: &Aig) -> BooleResult {
        let start = Instant::now();
        let net = aig_to_egraph(netlist);
        let (mut net, saturation) = saturate(net, &self.params.saturate);
        let pairing = pair_full_adders(&mut net.egraph);
        let extraction = extract_dag(&net.egraph);
        let original_fas = map_fas_to_original(&net);
        let (reconstructed, fas) =
            reconstruct_aig(&net.egraph, &extraction, netlist.num_inputs(), &net.outputs);
        BooleResult {
            reconstructed,
            fas,
            original_fas,
            saturation,
            pairing,
            runtime: start.elapsed(),
        }
    }
}

/// Maps every paired FA whose input/sum/carry e-classes correspond to
/// signals of the original netlist back onto original literals.
///
/// Soundness: e-class membership proves the original literal computes
/// exactly the FA signal, so each returned block satisfies
/// `sum = a⊕b⊕c`, `carry = maj(a,b,c)` over real netlist wires.
fn map_fas_to_original(net: &crate::convert::NetlistEGraph) -> Vec<RecoveredFa> {
    use crate::BoolLang;
    use std::collections::HashMap;

    let egraph = &net.egraph;
    // Reverse map: canonical e-class -> original literal (first /
    // topologically earliest wins; complements via explicit Not
    // lookups).
    let mut rm: HashMap<egraph::Id, aig::Lit> = HashMap::new();
    for (var_idx, &class) in net.vmap.iter().enumerate() {
        let lit = aig::Var(var_idx as u32).lit();
        let canon = egraph.find(class);
        rm.entry(canon).or_insert(lit);
        if let Some(neg) = egraph.lookup(&BoolLang::Not(canon)) {
            rm.entry(egraph.find(neg)).or_insert(!lit);
        }
    }

    let mut out = Vec::new();
    for fa_class in crate::pair::fa_classes(egraph) {
        let Some(BoolLang::Fa([a, b, c])) = egraph
            .eclass(fa_class)
            .iter()
            .find(|n| matches!(n, BoolLang::Fa(_)))
            .cloned()
        else {
            continue;
        };
        let sum_class = egraph.lookup(&BoolLang::Snd(fa_class));
        let carry_class = egraph.lookup(&BoolLang::Fst(fa_class));
        let signals = [
            rm.get(&egraph.find(a)).copied(),
            rm.get(&egraph.find(b)).copied(),
            rm.get(&egraph.find(c)).copied(),
            sum_class.and_then(|s| rm.get(&egraph.find(s)).copied()),
            carry_class.and_then(|s| rm.get(&egraph.find(s)).copied()),
        ];
        if let [Some(la), Some(lb), Some(lc), Some(sum), Some(carry)] = signals {
            out.push(RecoveredFa {
                inputs: [la, lb, lc],
                sum,
                carry,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::gen::{csa_fa_upper_bound, csa_multiplier};
    use aig::sim::random_equiv_check;

    #[test]
    fn recovers_all_fas_pre_mapping() {
        for n in [3usize, 4] {
            let aig = csa_multiplier(n);
            let result = BoolE::new(BooleParams::small()).run(&aig);
            assert_eq!(
                result.exact_fa_count(),
                csa_fa_upper_bound(n),
                "pre-mapping exact FAs for n={n}"
            );
            assert!(
                random_equiv_check(&aig, &result.reconstructed, 8, 0xE9),
                "reconstruction must preserve function (n={n})"
            );
        }
    }

    #[test]
    fn recovers_fas_post_mapping() {
        let aig = csa_multiplier(3);
        let mapped = aig::map::map_round_trip(&aig);
        let result = BoolE::new(BooleParams::small()).run(&mapped);
        assert!(
            result.exact_fa_count() >= 1,
            "post-mapping recovery, got {}",
            result.exact_fa_count()
        );
        assert!(random_equiv_check(&mapped, &result.reconstructed, 8, 0xEA));
    }

    #[test]
    fn lightweight_params_work() {
        let aig = csa_multiplier(3);
        let params = BooleParams {
            saturate: SaturateParams {
                lightweight: true,
                ..SaturateParams::small()
            },
        };
        let result = BoolE::new(params).run(&aig);
        assert_eq!(result.exact_fa_count(), csa_fa_upper_bound(3));
    }
}
