//! AIG ↔ e-graph conversion (Algorithm 1 of the paper).

use aig::{Aig, Lit, Node};
use egraph::{Analysis, EGraph, Id};

use crate::BoolLang;

/// An e-graph built from a netlist, remembering the netlist interface.
#[derive(Debug)]
pub struct NetlistEGraph<N: Analysis<BoolLang> = ()> {
    /// The e-graph holding the netlist logic.
    pub egraph: EGraph<BoolLang, N>,
    /// E-class of each primary input, in input order.
    pub inputs: Vec<Id>,
    /// Named output e-classes.
    pub outputs: Vec<(String, Id)>,
    /// E-class of each original AIG variable (`vmap` of Algorithm 1),
    /// used to map reasoning results back onto original netlist
    /// signals.
    pub vmap: Vec<Id>,
}

/// The canonical name of AIG input `ordinal` inside the e-graph.
pub fn input_name(ordinal: usize) -> String {
    format!("i{ordinal}")
}

/// Converts an AIG into an e-graph (Algorithm 1): nodes are inserted
/// leaf-to-root in topological order, with a `vmap` carrying each
/// variable's e-class; complemented fanin edges become `!` nodes.
pub fn aig_to_egraph<N: Analysis<BoolLang> + Default>(aig: &Aig) -> NetlistEGraph<N> {
    let mut egraph: EGraph<BoolLang, N> = EGraph::new(N::default());
    // vmap: AIG variable index -> e-class id.
    let mut vmap: Vec<Id> = vec![Id::from_index(0); aig.num_nodes()];
    let mut inputs = Vec::with_capacity(aig.num_inputs());
    for (i, node) in aig.nodes().iter().enumerate() {
        vmap[i] = match *node {
            Node::Const => egraph.add(BoolLang::Const(false)),
            Node::Input(ordinal) => {
                let id = egraph.add(BoolLang::var(input_name(ordinal as usize)));
                inputs.push(id);
                id
            }
            Node::And(a, b) => {
                let ia = lit_id(&mut egraph, &vmap, a);
                let ib = lit_id(&mut egraph, &vmap, b);
                egraph.add(BoolLang::And([ia, ib]))
            }
        };
    }
    let outputs = aig
        .outputs()
        .iter()
        .map(|(name, lit)| (name.clone(), lit_id(&mut egraph, &vmap, *lit)))
        .collect();
    egraph.rebuild();
    NetlistEGraph {
        egraph,
        inputs,
        outputs,
        vmap,
    }
}

fn lit_id<N: Analysis<BoolLang>>(egraph: &mut EGraph<BoolLang, N>, vmap: &[Id], lit: Lit) -> Id {
    let id = vmap[lit.var().index()];
    if lit.is_complemented() {
        egraph.add(BoolLang::Not(id))
    } else {
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph::RecExpr;

    #[test]
    fn converts_simple_gate() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let y = aig.and(a, !b);
        aig.add_output("y", y);
        let net: NetlistEGraph = aig_to_egraph(&aig);
        let expr: RecExpr<BoolLang> = "(& i0 (! i1))".parse().unwrap();
        let found = net.egraph.lookup_expr(&expr).expect("expression present");
        assert_eq!(net.egraph.find(found), net.egraph.find(net.outputs[0].1));
    }

    #[test]
    fn shares_structure() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.xor(a, b);
        aig.add_output("x", x);
        let net: NetlistEGraph = aig_to_egraph(&aig);
        // xor = (a|b) & !(a&b): the constant class, 2 inputs, their
        // negations, and(a,b) and its negation, and(!a,!b) and its
        // negation (the or), plus the top and — 10 classes, with the
        // and(a,b) class shared.
        assert!(net.egraph.num_classes() <= 10);
        assert_eq!(net.inputs.len(), 2);
    }

    #[test]
    fn complemented_output() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let y = aig.and(a, b);
        aig.add_output("nand", !y);
        let net: NetlistEGraph = aig_to_egraph(&aig);
        let expr: RecExpr<BoolLang> = "(! (& i0 i1))".parse().unwrap();
        assert_eq!(
            net.egraph.lookup_expr(&expr).map(|i| net.egraph.find(i)),
            Some(net.egraph.find(net.outputs[0].1))
        );
    }
}
