//! Multi-output full-adder pairing (Section IV-B, Figure 3).
//!
//! After saturation, XOR3 and MAJ e-nodes with the exact same inputs
//! are paired: an `fa` node over the shared inputs is inserted, and the
//! pseudo-operations `fst`/`snd` project its carry and sum, which are
//! unified with the MAJ and XOR3 e-classes respectively. Extraction
//! then treats `fa`/`fst`/`snd` atomically.

use std::collections::HashMap;

use egraph::{EGraph, Id};

use crate::BoolLang;

/// Statistics from FA pairing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairStats {
    /// Number of `fa` nodes inserted (distinct input triples that had
    /// both an XOR3 and a MAJ signal).
    pub fa_inserted: usize,
    /// XOR3-bearing input triples found.
    pub xor3_triples: usize,
    /// MAJ-bearing input triples found.
    pub maj_triples: usize,
}

/// Pairs XOR3/MAJ e-nodes with identical input triples into `fa`
/// nodes. Returns pairing statistics.
///
/// Triples with repeated inputs are skipped (degenerate adders).
pub fn pair_full_adders(egraph: &mut EGraph<BoolLang>) -> PairStats {
    // sorted child triple -> classes containing xor3 / maj over it
    let mut xors: HashMap<[Id; 3], Vec<Id>> = HashMap::new();
    let mut majs: HashMap<[Id; 3], Vec<Id>> = HashMap::new();
    for class in egraph.classes() {
        for node in class.iter() {
            let (map, children) = match node {
                BoolLang::Xor3(c) => (&mut xors, c),
                BoolLang::Maj(c) => (&mut majs, c),
                _ => continue,
            };
            let mut key = [
                egraph.find(children[0]),
                egraph.find(children[1]),
                egraph.find(children[2]),
            ];
            key.sort_unstable();
            if key[0] == key[1] || key[1] == key[2] {
                continue; // degenerate
            }
            let classes = map.entry(key).or_default();
            if !classes.contains(&class.id) {
                classes.push(class.id);
            }
        }
    }
    let stats = PairStats {
        fa_inserted: 0,
        xor3_triples: xors.len(),
        maj_triples: majs.len(),
    };
    let mut stats = stats;
    let mut pairs: Vec<([Id; 3], Vec<Id>, Vec<Id>)> = xors
        .iter()
        .filter_map(|(key, xc)| majs.get(key).map(|mc| (*key, xc.clone(), mc.clone())))
        .collect();
    pairs.sort_by_key(|(key, ..)| *key);
    // De Morgan mirror dedup: (a, b, c) and (!a, !b, !c) describe the
    // same physical full adder (the mirrored XOR3/MAJ are the
    // complements of the originals); keep only the lexicographically
    // smaller triple, otherwise the FA-maximizing extraction would
    // materialize and count both.
    let pairable: std::collections::HashSet<[Id; 3]> = pairs.iter().map(|(key, ..)| *key).collect();
    pairs.retain(|(key, ..)| {
        let negated: Option<Vec<Id>> = key
            .iter()
            .map(|&c| egraph.lookup(&BoolLang::Not(c)))
            .collect();
        match negated {
            Some(neg) => {
                let mut neg_key = [neg[0], neg[1], neg[2]];
                neg_key.sort_unstable();
                !(pairable.contains(&neg_key) && neg_key < *key)
            }
            None => true,
        }
    });
    for (key, xor_classes, maj_classes) in pairs {
        let fa = egraph.add(BoolLang::Fa(key));
        let fst = egraph.add(BoolLang::Fst(fa));
        let snd = egraph.add(BoolLang::Snd(fa));
        // XOR3 and MAJ are symmetric, so any classes holding them over
        // the same input multiset are functionally equal; unifying them
        // through the projections is sound.
        for xc in &xor_classes {
            egraph.union(snd, *xc);
        }
        for mc in &maj_classes {
            egraph.union(fst, *mc);
        }
        stats.fa_inserted += 1;
    }
    egraph.rebuild();
    stats
}

/// Returns the canonical ids of all `fa` tuple classes in the e-graph.
pub fn fa_classes(egraph: &EGraph<BoolLang>) -> Vec<Id> {
    let mut out = Vec::new();
    for class in egraph.classes() {
        if class.iter().any(|n| matches!(n, BoolLang::Fa(_))) {
            out.push(class.id);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph::RecExpr;

    #[test]
    fn pairs_matching_xor_maj() {
        let mut eg: EGraph<BoolLang> = EGraph::default();
        let x: RecExpr<BoolLang> = "(^3 p q r)".parse().unwrap();
        let m: RecExpr<BoolLang> = "(maj p q r)".parse().unwrap();
        let xid = eg.add_expr(&x);
        let mid = eg.add_expr(&m);
        eg.rebuild();
        let stats = pair_full_adders(&mut eg);
        assert_eq!(stats.fa_inserted, 1);
        // fst(fa) == maj class; snd(fa) == xor class.
        let fa_expr: RecExpr<BoolLang> = "(fa p q r)".parse().unwrap();
        let fa = eg.lookup_expr(&fa_expr).expect("fa node inserted");
        let fst = eg.lookup(&BoolLang::Fst(fa)).unwrap();
        let snd = eg.lookup(&BoolLang::Snd(fa)).unwrap();
        assert_eq!(eg.find(fst), eg.find(mid));
        assert_eq!(eg.find(snd), eg.find(xid));
        assert_eq!(fa_classes(&eg).len(), 1);
    }

    #[test]
    fn no_pair_without_matching_inputs() {
        let mut eg: EGraph<BoolLang> = EGraph::default();
        eg.add_expr(&"(^3 p q r)".parse().unwrap());
        eg.add_expr(&"(maj p q s)".parse().unwrap());
        eg.rebuild();
        let stats = pair_full_adders(&mut eg);
        assert_eq!(stats.fa_inserted, 0);
        assert_eq!(stats.xor3_triples, 1);
        assert_eq!(stats.maj_triples, 1);
    }

    #[test]
    fn commuted_operands_still_pair() {
        let mut eg: EGraph<BoolLang> = EGraph::default();
        eg.add_expr(&"(^3 p q r)".parse().unwrap());
        eg.add_expr(&"(maj r q p)".parse().unwrap());
        eg.rebuild();
        let stats = pair_full_adders(&mut eg);
        assert_eq!(stats.fa_inserted, 1);
    }

    #[test]
    fn degenerate_triples_skipped() {
        let mut eg: EGraph<BoolLang> = EGraph::default();
        eg.add_expr(&"(^3 p p r)".parse().unwrap());
        eg.add_expr(&"(maj p p r)".parse().unwrap());
        eg.rebuild();
        let stats = pair_full_adders(&mut eg);
        assert_eq!(stats.fa_inserted, 0);
    }
}
