//! Conversion of an extracted e-graph DAG back into an AIG
//! (part 4 of Figure 2).

use std::collections::HashMap;

use aig::{Aig, Lit};
use egraph::{EGraph, Id, Language, Symbol};

use crate::extract::DagExtraction;
use crate::BoolLang;

/// A full adder recovered in the reconstructed netlist, described by
/// literals of the *output* AIG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredFa {
    /// The three input literals.
    pub inputs: [Lit; 3],
    /// The sum literal (`inputs[0] ^ inputs[1] ^ inputs[2]`).
    pub sum: Lit,
    /// The carry literal (`maj(inputs)`).
    pub carry: Lit,
}

/// Rebuilds an AIG from a DAG extraction.
///
/// `num_inputs` fixes the input count/order: variable `i{k}` maps to
/// input `k` (see [`crate::convert::input_name`]). Recovered FA blocks
/// are emitted with the canonical full-adder shape and reported.
///
/// # Panics
///
/// Panics if a root has no extraction choice or a variable is not of
/// the `i{k}` form with `k < num_inputs`.
pub fn reconstruct_aig(
    egraph: &EGraph<BoolLang>,
    extraction: &DagExtraction,
    num_inputs: usize,
    outputs: &[(String, Id)],
) -> (Aig, Vec<RecoveredFa>) {
    let mut aig = Aig::new();
    let inputs = aig.add_inputs(num_inputs);
    let mut builder = Builder {
        egraph,
        extraction,
        inputs,
        aig,
        memo: HashMap::new(),
        fa_memo: HashMap::new(),
        fas: Vec::new(),
        downgraded: std::collections::HashSet::new(),
    };
    let mut named: Vec<(String, Lit)> = Vec::new();
    for (name, root) in outputs {
        let lit = builder.build(egraph.find(*root));
        named.push((name.clone(), lit));
    }
    let mut aig = builder.aig;
    for (name, lit) in named {
        aig.add_output(name, lit);
    }
    (aig, builder.fas)
}

struct Builder<'a> {
    egraph: &'a EGraph<BoolLang>,
    extraction: &'a DagExtraction,
    inputs: Vec<Lit>,
    aig: Aig,
    memo: HashMap<Id, Lit>,
    /// FA tuple class -> (sum, carry) literals.
    fa_memo: HashMap<Id, (Lit, Lit)>,
    fas: Vec<RecoveredFa>,
    /// Classes switched to the safe selection after a cycle was
    /// detected through their optimal choice.
    downgraded: std::collections::HashSet<Id>,
}

/// Work items of the iterative (stack-overflow-free) builder.
enum Task {
    Visit(Id),
    Emit(Id),
    VisitFa(Id),
    EmitFa(Id),
}

impl Builder<'_> {
    /// The effective choice for a class: the optimal selection unless
    /// it was downgraded after a cycle detection.
    fn effective_choice(&self, class: Id) -> &crate::extract::DagChoice {
        if self.downgraded.contains(&class) {
            self.extraction
                .safe_choice(class)
                .unwrap_or_else(|| panic!("no safe extraction choice for e-class {class}"))
        } else {
            self.extraction
                .choice(class)
                .unwrap_or_else(|| panic!("no extraction choice for e-class {class}"))
        }
    }

    /// Builds the literal of `root`, iteratively (extraction DAGs of
    /// saturated e-graphs can be very deep).
    ///
    /// If a cyclic selection is detected (possible in the optimal
    /// selection's rare stale-cost corner cases), the offending class
    /// is downgraded to the guaranteed-acyclic safe selection and the
    /// walk restarts; completed work is memoized, so this terminates.
    fn build(&mut self, root: Id) -> Lit {
        let root = self.egraph.find(root);
        loop {
            match self.try_build(root) {
                Ok(lit) => return lit,
                Err((reentered, on_path)) => {
                    // Downgrade one class on the cycle to its safe
                    // choice. Prefer the re-entered class; if it is
                    // already safe, the cycle must pass through some
                    // other optimal choice (the safe selection alone is
                    // acyclic), so pick the smallest such class.
                    let victim = if !self.downgraded.contains(&reentered)
                        && self.extraction.safe_choice(reentered).is_some()
                    {
                        Some(reentered)
                    } else {
                        let mut candidates: Vec<Id> = on_path
                            .into_iter()
                            .filter(|c| {
                                !self.downgraded.contains(c)
                                    && self.extraction.safe_choice(*c).is_some()
                            })
                            .collect();
                        candidates.sort_unstable();
                        candidates.first().copied()
                    };
                    let victim = victim.unwrap_or_else(|| {
                        panic!("cannot break extraction cycle at e-class {reentered}")
                    });
                    self.downgraded.insert(victim);
                }
            }
        }
    }

    fn try_build(&mut self, root: Id) -> Result<Lit, (Id, Vec<Id>)> {
        let mut stack = vec![Task::Visit(root)];
        let mut visiting: std::collections::HashSet<Id> = std::collections::HashSet::new();
        while let Some(task) = stack.pop() {
            match task {
                Task::Visit(class) => {
                    let class = self.egraph.find(class);
                    if self.memo.contains_key(&class) {
                        continue;
                    }
                    if !visiting.insert(class) {
                        let path: Vec<Id> = visiting.iter().copied().collect();
                        return Err((class, path));
                    }
                    let choice = self.effective_choice(class);
                    stack.push(Task::Emit(class));
                    match &choice.node {
                        BoolLang::Fst(fa) | BoolLang::Snd(fa) => {
                            stack.push(Task::VisitFa(self.egraph.find(*fa)));
                        }
                        node => {
                            for &c in node.children() {
                                stack.push(Task::Visit(c));
                            }
                        }
                    }
                }
                Task::Emit(class) => {
                    let class = self.egraph.find(class);
                    visiting.remove(&class);
                    if self.memo.contains_key(&class) {
                        continue;
                    }
                    let choice = self.effective_choice(class).clone();
                    let get = |b: &Self, id: Id| -> Lit { b.memo[&b.egraph.find(id)] };
                    let lit = match &choice.node {
                        BoolLang::Const(b) => {
                            if *b {
                                Lit::TRUE
                            } else {
                                Lit::FALSE
                            }
                        }
                        BoolLang::Var(sym) => self.input_lit(*sym),
                        BoolLang::Not(c) => !get(self, *c),
                        BoolLang::And([a, b]) => {
                            let (la, lb) = (get(self, *a), get(self, *b));
                            self.aig.and(la, lb)
                        }
                        BoolLang::Or([a, b]) => {
                            let (la, lb) = (get(self, *a), get(self, *b));
                            self.aig.or(la, lb)
                        }
                        BoolLang::Xor([a, b]) => {
                            let (la, lb) = (get(self, *a), get(self, *b));
                            self.aig.xor(la, lb)
                        }
                        BoolLang::Xor3([a, b, c]) => {
                            let (la, lb, lc) = (get(self, *a), get(self, *b), get(self, *c));
                            self.aig.xor3(la, lb, lc)
                        }
                        BoolLang::Maj([a, b, c]) => {
                            let (la, lb, lc) = (get(self, *a), get(self, *b), get(self, *c));
                            self.aig.maj(la, lb, lc)
                        }
                        BoolLang::Fst(fa) => self.fa_memo[&self.egraph.find(*fa)].1,
                        BoolLang::Snd(fa) => self.fa_memo[&self.egraph.find(*fa)].0,
                        BoolLang::Fa(_) => {
                            panic!("fa tuple class must be consumed through fst/snd")
                        }
                    };
                    self.memo.insert(class, lit);
                }
                Task::VisitFa(fa_class) => {
                    let fa_class = self.egraph.find(fa_class);
                    if self.fa_memo.contains_key(&fa_class) {
                        continue;
                    }
                    let choice = self.effective_choice(fa_class);
                    let BoolLang::Fa([a, b, c]) = choice.node else {
                        panic!("fa class must select the fa node, got {:?}", choice.node)
                    };
                    stack.push(Task::EmitFa(fa_class));
                    stack.push(Task::Visit(a));
                    stack.push(Task::Visit(b));
                    stack.push(Task::Visit(c));
                }
                Task::EmitFa(fa_class) => {
                    let fa_class = self.egraph.find(fa_class);
                    if self.fa_memo.contains_key(&fa_class) {
                        continue;
                    }
                    let choice = self.effective_choice(fa_class).clone();
                    let BoolLang::Fa([a, b, c]) = choice.node else {
                        unreachable!("checked at VisitFa")
                    };
                    let la = self.memo[&self.egraph.find(a)];
                    let lb = self.memo[&self.egraph.find(b)];
                    let lc = self.memo[&self.egraph.find(c)];
                    let (sum, carry) = aig::gen::full_adder(&mut self.aig, la, lb, lc);
                    self.fa_memo.insert(fa_class, (sum, carry));
                    self.fas.push(RecoveredFa {
                        inputs: [la, lb, lc],
                        sum,
                        carry,
                    });
                }
            }
        }
        Ok(self.memo[&root])
    }

    fn input_lit(&self, sym: Symbol) -> Lit {
        let name = sym.as_str();
        let ordinal: usize = name
            .strip_prefix('i')
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("variable {name} is not an input of the form iN"));
        assert!(
            ordinal < self.inputs.len(),
            "input {name} out of range ({} inputs)",
            self.inputs.len()
        );
        self.inputs[ordinal]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_dag;
    use crate::pair::pair_full_adders;
    use egraph::RecExpr;

    #[test]
    fn reconstructs_fa_once() {
        let mut eg: egraph::EGraph<BoolLang> = egraph::EGraph::default();
        let sum = eg.add_expr(&"(^3 i0 i1 i2)".parse::<RecExpr<BoolLang>>().unwrap());
        let carry = eg.add_expr(&"(maj i0 i1 i2)".parse::<RecExpr<BoolLang>>().unwrap());
        eg.rebuild();
        pair_full_adders(&mut eg);
        let ex = extract_dag(&eg);
        let outputs = vec![("s".to_owned(), sum), ("c".to_owned(), carry)];
        let (aig, fas) = reconstruct_aig(&eg, &ex, 3, &outputs);
        assert_eq!(fas.len(), 1);
        assert_eq!(aig.num_outputs(), 2);
        // Function check against a reference FA.
        let mut reference = Aig::new();
        let a = reference.add_input();
        let b = reference.add_input();
        let c = reference.add_input();
        let (s, co) = aig::gen::full_adder(&mut reference, a, b, c);
        reference.add_output("s", s);
        reference.add_output("c", co);
        assert!(aig::sim::exhaustive_equiv_check(&reference, &aig));
    }

    #[test]
    fn reconstructs_plain_logic() {
        let mut eg: egraph::EGraph<BoolLang> = egraph::EGraph::default();
        let root = eg.add_expr(&"(| (& i0 i1) (! i2))".parse::<RecExpr<BoolLang>>().unwrap());
        eg.rebuild();
        let ex = extract_dag(&eg);
        let (aig, fas) = reconstruct_aig(&eg, &ex, 3, &[("y".to_owned(), root)]);
        assert!(fas.is_empty());
        let mut reference = Aig::new();
        let a = reference.add_input();
        let b = reference.add_input();
        let c = reference.add_input();
        let ab = reference.and(a, b);
        let y = reference.or(ab, !c);
        reference.add_output("y", y);
        assert!(aig::sim::exhaustive_equiv_check(&reference, &aig));
    }
}
