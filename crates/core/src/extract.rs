//! DAG-based exact extraction (Section IV-B, Algorithm 2).
//!
//! The cost function maximizes the number of *distinct* full adders in
//! the extracted DAG — each shared FA is counted once — with a
//! weighted-depth tie-breaker. Per e-class we maintain a cost set (the
//! set of FA tuple-class ids reachable through the chosen sub-DAG);
//! `fst`, `snd`, and `fa` are selected atomically because the
//! projections' only child is the FA tuple class itself.
//!
//! Two selections are computed:
//!
//! * the **optimal** selection — an improving worklist fixpoint
//!   (Algorithm 2). Its cost map can, in rare corner cases, become
//!   mutually stale and cyclic (a child switching to a different,
//!   larger FA set whose union with siblings shrinks).
//! * a **safe** selection — rank-constrained (children must be
//!   selected strictly earlier), acyclic by construction.
//!
//! The reconstructor follows the optimal selection and downgrades an
//! e-class to its safe choice only when it actually detects a cycle,
//! so the quality of the optimal selection is kept wherever possible.
//!
//! Following the paper's memory optimization, cost sets store FA ids
//! as `u16` when the e-graph has fewer than 65 536 classes and `u32`
//! otherwise.

use std::collections::{HashMap, HashSet};

use egraph::{EGraph, Id, Language};

use crate::BoolLang;

/// A compact sorted set of FA identifiers with adaptive width
/// (the paper's u16/u32 cost-map key optimization).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaSet {
    /// 16-bit ids (e-graphs below 65 536 classes).
    Small(Vec<u16>),
    /// 32-bit ids.
    Large(Vec<u32>),
}

impl FaSet {
    fn empty(small: bool) -> FaSet {
        if small {
            FaSet::Small(Vec::new())
        } else {
            FaSet::Large(Vec::new())
        }
    }

    fn singleton(id: usize, small: bool) -> FaSet {
        if small {
            FaSet::Small(vec![id as u16])
        } else {
            FaSet::Large(vec![id as u32])
        }
    }

    /// Number of FAs in the set.
    pub fn len(&self) -> usize {
        match self {
            FaSet::Small(v) => v.len(),
            FaSet::Large(v) => v.len(),
        }
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the ids as `usize`.
    pub fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match self {
            FaSet::Small(v) => Box::new(v.iter().map(|&x| x as usize)),
            FaSet::Large(v) => Box::new(v.iter().map(|&x| x as usize)),
        }
    }

    fn merge(&mut self, other: &FaSet) {
        match (self, other) {
            (FaSet::Small(a), FaSet::Small(b)) => merge_sorted(a, b),
            (FaSet::Large(a), FaSet::Large(b)) => merge_sorted(a, b),
            _ => panic!("mixed FaSet widths"),
        }
    }
}

fn merge_sorted<T: Ord + Copy>(a: &mut Vec<T>, b: &[T]) {
    if b.is_empty() {
        return;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    *a = out;
}

/// The chosen e-node and cost for one e-class.
#[derive(Debug, Clone)]
pub struct DagChoice {
    /// The selected e-node (children are canonical class ids).
    pub node: BoolLang,
    /// FA tuple classes reachable through the selection.
    pub fas: FaSet,
    /// Weighted-depth tie-breaker (max-plus over children; cannot
    /// saturate, unlike tree size).
    pub size: u64,
}

/// The result of DAG extraction: one choice per reachable e-class in
/// each of the optimal and safe selections.
#[derive(Debug)]
pub struct DagExtraction {
    choices: HashMap<Id, DagChoice>,
    safe: HashMap<Id, DagChoice>,
    /// FA-id → e-class mapping used by the cost sets.
    fa_index: Vec<Id>,
}

impl DagExtraction {
    /// The optimal choice for `class`, if it was extractable.
    pub fn choice(&self, class: Id) -> Option<&DagChoice> {
        self.choices.get(&class)
    }

    /// The guaranteed-acyclic fallback choice for `class`.
    pub fn safe_choice(&self, class: Id) -> Option<&DagChoice> {
        self.safe.get(&class)
    }

    /// The distinct FA tuple classes used by the optimal extraction of
    /// `roots` (each counted once — the paper's exact-FA count; the
    /// reconstructor reports the realized count, which matches except
    /// when cycle downgrades occurred).
    pub fn selected_fas(&self, egraph: &EGraph<BoolLang>, roots: &[Id]) -> Vec<Id> {
        let mut merged: Vec<usize> = Vec::new();
        for &root in roots {
            if let Some(choice) = self.choices.get(&egraph.find(root)) {
                let ids: Vec<usize> = choice.fas.iter().collect();
                merge_sorted(&mut merged, &ids);
            }
        }
        merged.into_iter().map(|i| self.fa_index[i]).collect()
    }

    /// Number of e-classes with an optimal choice.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Returns `true` if nothing was extractable.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

/// Approximate AIG cost of materializing one operator. Strictly
/// positive for every operator with children so that depth strictly
/// increases along selection edges.
fn node_size(node: &BoolLang) -> u64 {
    match node {
        BoolLang::Const(_) | BoolLang::Var(_) => 0,
        BoolLang::Not(_) | BoolLang::Fst(_) | BoolLang::Snd(_) => 1,
        BoolLang::And(_) | BoolLang::Or(_) => 2,
        BoolLang::Xor(_) => 4,
        BoolLang::Xor3(_) => 7,
        BoolLang::Maj(_) => 6,
        // The FA pair shares its XOR/MAJ structure across both outputs.
        BoolLang::Fa(_) => 9,
    }
}

/// Runs the fixed-point DAG extraction over the whole e-graph
/// (Algorithm 2). Classes unreachable from any leaf remain without a
/// choice.
///
/// # Panics
///
/// Panics if the e-graph is not clean.
pub fn extract_dag(egraph: &EGraph<BoolLang>) -> DagExtraction {
    assert!(egraph.is_clean(), "extraction requires a clean e-graph");
    // Index FA tuple classes for compact cost sets.
    let fa_index: Vec<Id> = crate::pair::fa_classes(egraph);
    let fa_pos: HashMap<Id, usize> = fa_index
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i))
        .collect();
    let small = fa_index.len() < u16::MAX as usize && egraph.num_classes() < u16::MAX as usize;

    // Parent index: which classes reference a class as a child
    // (Algorithm 2's `node.parents()`).
    let mut parents: HashMap<Id, Vec<Id>> = HashMap::new();
    for class in egraph.classes() {
        for node in class.iter() {
            for &c in node.children() {
                let entry = parents.entry(egraph.find(c)).or_default();
                if entry.last() != Some(&class.id) {
                    entry.push(class.id);
                }
            }
        }
    }
    let seed: Vec<Id> = egraph
        .classes()
        .filter(|class| class.iter().any(|n| n.is_leaf()))
        .map(|class| class.id)
        .collect();

    // Optimal (unconstrained) fixpoint.
    let mut choices: HashMap<Id, DagChoice> = HashMap::new();
    drain(
        egraph,
        &parents,
        &fa_pos,
        small,
        &mut choices,
        None,
        seed.clone(),
    );

    // Safe (rank-constrained, acyclic) selection.
    let mut safe: HashMap<Id, DagChoice> = HashMap::new();
    let mut ranks: HashMap<Id, u32> = HashMap::new();
    drain(
        egraph,
        &parents,
        &fa_pos,
        small,
        &mut safe,
        Some(&mut ranks),
        seed,
    );

    DagExtraction {
        choices,
        safe,
        fa_index,
    }
}

/// One improving-worklist drain. With `ranks`, selections are
/// rank-constrained (children strictly earlier), which guarantees
/// acyclicity at the cost of occasionally missing an adoption.
fn drain(
    egraph: &EGraph<BoolLang>,
    parents: &HashMap<Id, Vec<Id>>,
    fa_pos: &HashMap<Id, usize>,
    small: bool,
    choices: &mut HashMap<Id, DagChoice>,
    mut ranks: Option<&mut HashMap<Id, u32>>,
    seed: Vec<Id>,
) {
    let mut next_rank: u32 = 0;
    let mut queue: std::collections::VecDeque<Id> = seed.into();
    let mut queued: HashSet<Id> = queue.iter().copied().collect();
    while let Some(class_id) = queue.pop_front() {
        queued.remove(&class_id);
        let class = egraph.eclass(class_id);
        let my_rank = ranks
            .as_ref()
            .map(|r| r.get(&class_id).copied().unwrap_or(u32::MAX));
        let mut best: Option<DagChoice> = choices.get(&class_id).cloned();
        let mut improved = false;
        for node in class.iter() {
            // All children must be selected already (and, in ranked
            // mode, strictly earlier).
            let eligible = node.children().iter().all(|&c| {
                let c = egraph.find(c);
                if c == class_id || !choices.contains_key(&c) {
                    return false;
                }
                match (&ranks, my_rank) {
                    (Some(r), Some(mine)) => r.get(&c).copied().unwrap_or(u32::MAX) < mine,
                    _ => true,
                }
            });
            if !eligible {
                continue;
            }
            let mut fas = FaSet::empty(small);
            let mut size = node_size(node);
            for &c in node.children() {
                let child = &choices[&egraph.find(c)];
                fas.merge(&child.fas);
                size = size.max(node_size(node) + child.size);
            }
            if let BoolLang::Fa(_) = node {
                let pos = fa_pos[&egraph.find(class_id)];
                fas.merge(&FaSet::singleton(pos, small));
            }
            let better = match &best {
                None => true,
                Some(b) => fas.len() > b.fas.len() || (fas.len() == b.fas.len() && size < b.size),
            };
            if better {
                best = Some(DagChoice {
                    node: node.clone(),
                    fas,
                    size,
                });
                improved = true;
            }
        }
        if improved {
            if let Some(r) = ranks.as_mut() {
                r.entry(class_id).or_insert_with(|| {
                    let v = next_rank;
                    next_rank += 1;
                    v
                });
            }
            choices.insert(class_id, best.expect("improved implies chosen"));
            // Cost map update: re-enqueue the parents (Algorithm 2
            // line 16). FA tuple classes are processed first: they only
            // need their three inputs, so in ranked mode they are
            // ranked before the XOR3/MAJ consumer classes that adopt
            // their fst/snd projections.
            if let Some(ps) = parents.get(&class_id) {
                for &p in ps {
                    if queued.insert(p) {
                        if fa_pos.contains_key(&p) {
                            queue.push_front(p);
                        } else {
                            queue.push_back(p);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::pair_full_adders;
    use egraph::RecExpr;

    #[test]
    fn fa_set_merge_dedups() {
        let mut a = FaSet::Small(vec![1, 3, 5]);
        a.merge(&FaSet::Small(vec![2, 3, 6]));
        assert_eq!(a, FaSet::Small(vec![1, 2, 3, 5, 6]));
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn extraction_prefers_fa_projections() {
        let mut eg: EGraph<BoolLang> = EGraph::default();
        let sum = eg.add_expr(&"(^3 p q r)".parse::<RecExpr<BoolLang>>().unwrap());
        let carry = eg.add_expr(&"(maj p q r)".parse::<RecExpr<BoolLang>>().unwrap());
        eg.rebuild();
        pair_full_adders(&mut eg);
        let ex = extract_dag(&eg);
        let sum_choice = ex.choice(eg.find(sum)).unwrap();
        let carry_choice = ex.choice(eg.find(carry)).unwrap();
        assert!(matches!(sum_choice.node, BoolLang::Snd(_)));
        assert!(matches!(carry_choice.node, BoolLang::Fst(_)));
        let fas = ex.selected_fas(&eg, &[sum, carry]);
        assert_eq!(fas.len(), 1, "shared FA counted once");
        // The safe selection also adopts the FA here.
        assert!(matches!(
            ex.safe_choice(eg.find(sum)).unwrap().node,
            BoolLang::Snd(_)
        ));
    }

    #[test]
    fn shared_fa_counted_once_across_roots() {
        let mut eg: EGraph<BoolLang> = EGraph::default();
        let sum = eg.add_expr(&"(^3 p q r)".parse::<RecExpr<BoolLang>>().unwrap());
        let carry = eg.add_expr(&"(maj p q r)".parse::<RecExpr<BoolLang>>().unwrap());
        // Two downstream users of the same FA outputs.
        let u1 = eg.add(BoolLang::And([sum, carry]));
        let u2 = eg.add(BoolLang::Or([sum, carry]));
        eg.rebuild();
        pair_full_adders(&mut eg);
        let ex = extract_dag(&eg);
        assert_eq!(ex.selected_fas(&eg, &[u1, u2]).len(), 1);
    }

    #[test]
    fn unpaired_classes_extract_normally() {
        let mut eg: EGraph<BoolLang> = EGraph::default();
        let root = eg.add_expr(&"(& (| p q) r)".parse::<RecExpr<BoolLang>>().unwrap());
        eg.rebuild();
        let ex = extract_dag(&eg);
        let choice = ex.choice(eg.find(root)).unwrap();
        assert!(choice.fas.is_empty());
        assert!(matches!(choice.node, BoolLang::And(_)));
    }

    #[test]
    fn chained_fas_all_counted() {
        // carry of one FA feeds another FA.
        let mut eg: EGraph<BoolLang> = EGraph::default();
        let c1 = eg.add_expr(&"(maj p q r)".parse::<RecExpr<BoolLang>>().unwrap());
        eg.add_expr(&"(^3 p q r)".parse::<RecExpr<BoolLang>>().unwrap());
        let s = eg.add(BoolLang::var("s"));
        let t = eg.add(BoolLang::var("t"));
        let sum2 = eg.add(BoolLang::Xor3([c1, s, t]));
        let carry2 = eg.add(BoolLang::Maj([c1, s, t]));
        eg.rebuild();
        let stats = pair_full_adders(&mut eg);
        assert_eq!(stats.fa_inserted, 2);
        let ex = extract_dag(&eg);
        assert_eq!(ex.selected_fas(&eg, &[sum2, carry2]).len(), 2);
    }
}
